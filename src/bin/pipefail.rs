//! `pipefail` — command-line interface for the generate → rank → evaluate
//! workflow on CSV asset registers.
//!
//! ```text
//! pipefail generate --scale 0.1 --seed 7 --out data/        # synthesize CSVs
//! pipefail rank     --data data/region_a --model dpmhbp     # rank CWM pipes
//! pipefail evaluate --data data/region_a                    # compare models
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set minimal.

use pipefail::core::model::FailureModel;
use pipefail::eval::report::format_auc_table;
use pipefail::eval::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail::network::csvio::{read_dataset, write_dataset};
use pipefail::network::Dataset;
use pipefail::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, options)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&options),
        "rank" => cmd_rank(&options),
        "evaluate" => cmd_evaluate(&options),
        "snapshot" => cmd_snapshot(&options),
        "serve" => cmd_serve(&options),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pipefail — water pipe failure prediction

USAGE:
  pipefail generate [--scale F] [--seed N] [--out DIR]
      Generate the calibrated synthetic metropolis and export each region
      as CSV under DIR (default data/).
  pipefail rank --data DIR [--model NAME] [--seed N] [--top N] [--out FILE]
      Fit a model on a CSV dataset (train 1998-2008) and rank the critical
      mains by 2009 risk. Models: dpmhbp (default), hbp, cox, weibull, svm.
  pipefail evaluate --data DIR [--seed N] [--full]
      Fit all five compared models and print the AUC table (--full uses the
      full MCMC schedules).
  pipefail snapshot --data DIR --out FILE [--model NAME] [--seed N] [--full]
                    [--format v1|v2]
      Fit a model and freeze its posterior summary plus the full risk
      ranking into a versioned snapshot file (see docs/SNAPSHOT_FORMAT.md).
      --format picks the encoding: v2 (default) is the aligned columnar
      layout the server memory-maps for O(ms) loads; v1 is the legacy
      heap-parsed layout. Per-pipe attributes (length, material, laid year)
      are embedded so the server can answer POST /aggregate pipelines (see
      docs/AGGREGATE.md).
  pipefail serve (--snapshot FILE [--snapshot FILE ...] | --snapshot-dir DIR
                  | --backend KEY=HOST:PORT [--backend KEY=HOST:PORT ...])
                 [--addr HOST:PORT] [--data DIR] [--max-requests N]
      Serve snapshots over HTTP with keep-alive connections: /health /top
      /pipe /model /batch /aggregate /metrics (and /riskmap.svg when --data
      is given with a single snapshot). POST /aggregate runs a declarative
      group-by/aggregate pipeline over the fleet (docs/AGGREGATE.md). One --snapshot is the classic single-region
      server; repeated --snapshot flags or --snapshot-dir (every *.pfsnap
      in DIR) serve one shard per region behind one endpoint: /top?region=R
      routes to one shard, region-less /top scatter-gathers the global
      top-K. Honors PIPEFAIL_HTTP_WORKERS, PIPEFAIL_HTTP_TIMEOUT_SECS,
      PIPEFAIL_HTTP_IDLE_SECS, PIPEFAIL_HTTP_KEEPALIVE_REQS, and
      PIPEFAIL_HTTP_RELOAD_SECS (N > 0 polls every watched snapshot file
      every N seconds and hot-swaps shards independently); see
      docs/SERVING.md. Connection-core knobs: PIPEFAIL_HTTP_CORE
      (epoll|threads; the epoll event loop is the Linux default),
      PIPEFAIL_HTTP_MAX_CONNS (open-connection cap, idle keep-alive
      connections are shed first, 0 = unlimited) and
      PIPEFAIL_HTTP_INFLIGHT (in-flight request cap answering 429 +
      Retry-After, 0 = unbounded).
      Repeated --backend flags start a *federation front-end* instead: no
      snapshots are loaded; region-tagged queries relay to the named
      backend serve processes over keep-alive TCP with health checks,
      timeouts, retries, and hedged requests; region-less /top and
      POST /aggregate scatter-gather across the live fleet. Honors the
      PIPEFAIL_FED_* knobs (TIMEOUT_SECS, RETRIES, BACKOFF_MS,
      BACKOFF_CAP_MS, HEDGE_MS, PROBE_SECS, FAIL_THRESHOLD); see the
      Federation section of docs/SERVING.md.
  pipefail help";

/// Parsed CLI options: every `--key` keeps all its values in order, so
/// repeatable flags (`--snapshot A --snapshot B`) accumulate while
/// single-valued flags read the last occurrence.
type Options = HashMap<String, Vec<String>>;

fn parse(args: &[String]) -> Option<(String, Options)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut options: Options = HashMap::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = if key == "full" {
            "1".to_string()
        } else {
            it.next()?.clone()
        };
        options.entry(key.to_string()).or_default().push(value);
    }
    Some((command, options))
}

/// Last value of a single-valued option (the usual "last flag wins").
fn opt<'a>(options: &'a Options, key: &str) -> Option<&'a String> {
    options.get(key).and_then(|v| v.last())
}

fn opt_f64(options: &Options, key: &str, default: f64) -> Result<f64, String> {
    opt(options, key)
        .map_or(Ok(default), |v| v.parse().map_err(|_| format!("bad --{key}: {v:?}")))
}

fn opt_u64(options: &Options, key: &str, default: u64) -> Result<u64, String> {
    opt(options, key)
        .map_or(Ok(default), |v| v.parse().map_err(|_| format!("bad --{key}: {v:?}")))
}

fn load(options: &Options) -> Result<Dataset, String> {
    let dir = opt(options, "data")
        .ok_or("missing --data DIR (a directory written by `pipefail generate`)")?;
    read_dataset(Path::new(dir)).map_err(|e| format!("loading {dir}: {e}"))
}

fn cmd_generate(options: &Options) -> Result<(), String> {
    let scale = opt_f64(options, "scale", 0.05)?;
    let seed = opt_u64(options, "seed", 7)?;
    let out = PathBuf::from(opt(options, "out").map_or("data", String::as_str));
    let world = WorldConfig::paper().scaled(scale).build(seed);
    for ds in world.regions() {
        let dir = out.join(ds.name().to_lowercase().replace(' ', "_"));
        write_dataset(ds, &dir).map_err(|e| e.to_string())?;
        println!(
            "{}: {} pipes, {} segments, {} failures -> {}",
            ds.name(),
            ds.pipes().len(),
            ds.segments().len(),
            ds.failures().len(),
            dir.display()
        );
    }
    Ok(())
}

/// Construct a model by CLI name. `full` selects the paper MCMC schedules;
/// otherwise the shortened `fast()` schedules are used where they exist.
fn make_model(name: &str, full: bool) -> Result<Box<dyn FailureModel>, String> {
    Ok(match name {
        "dpmhbp" if full => Box::new(Dpmhbp::new(DpmhbpConfig::default())),
        "dpmhbp" => Box::new(Dpmhbp::new(DpmhbpConfig::fast())),
        "hbp" if full => Box::new(Hbp::new(HbpConfig::default())),
        "hbp" => Box::new(Hbp::new(HbpConfig::fast())),
        "cox" => Box::new(pipefail::baselines::cox::CoxModel::default_config()),
        "weibull" => Box::new(pipefail::baselines::weibull_nhpp::WeibullNhpp::default_config()),
        "svm" => Box::new(RankSvm::new(RankSvmConfig::default())),
        other => return Err(format!("unknown model {other:?} (dpmhbp|hbp|cox|weibull|svm)")),
    })
}

fn cmd_rank(options: &Options) -> Result<(), String> {
    let ds = load(options)?;
    let seed = opt_u64(options, "seed", 7)?;
    let top = opt_u64(options, "top", 20)? as usize;
    let name = opt(options, "model").map_or("dpmhbp", String::as_str);
    let mut model = make_model(name, true)?;
    let split = TrainTestSplit::paper_protocol();
    let ranking = model
        .fit_rank(&ds, &split, seed)
        .map_err(|e| e.to_string())?;
    println!("{} ranked {} critical mains; top {top}:", model.name(), ranking.len());
    println!("{:<14} {:>12} {:>8} {:>6} {:>6} {:>9}", "pipe", "score", "dia_mm", "mat", "laid", "length_m");
    for s in ranking.scores().iter().take(top) {
        let p = ds.pipe(s.pipe);
        println!(
            "{:<14} {:>12.6} {:>8.0} {:>6} {:>6} {:>9.0}",
            format!("{}", s.pipe),
            s.score,
            p.diameter_mm,
            p.material.code(),
            p.laid_year,
            ds.pipe_length_m(s.pipe)
        );
    }
    if let Some(path) = opt(options, "out") {
        let mut csv = String::from("pipe_id,score\n");
        for s in ranking.scores() {
            csv.push_str(&format!("{},{}\n", s.pipe.0, s.score));
        }
        std::fs::write(path, csv).map_err(|e| e.to_string())?;
        println!("wrote full ranking to {path}");
    }
    Ok(())
}

fn cmd_evaluate(options: &Options) -> Result<(), String> {
    let ds = load(options)?;
    let seed = opt_u64(options, "seed", 7)?;
    let fast = !options.contains_key("full");
    let split = TrainTestSplit::paper_protocol();
    let config = RunConfig {
        fast,
        ..RunConfig::default()
    };
    let result = evaluate_region(&ds, &split, &ModelKind::paper_five(), config, seed)
        .map_err(|e| e.to_string())?;
    println!("{}", format_auc_table(std::slice::from_ref(&result)));
    Ok(())
}

fn cmd_snapshot(options: &Options) -> Result<(), String> {
    let ds = load(options)?;
    let seed = opt_u64(options, "seed", 7)?;
    let out = opt(options, "out")
        .ok_or("missing --out FILE (where to write the snapshot)")?;
    let name = opt(options, "model").map_or("dpmhbp", String::as_str);
    let mut model = make_model(name, options.contains_key("full"))?;
    let split = TrainTestSplit::paper_protocol();
    let ranking = model
        .fit_rank(&ds, &split, seed)
        .map_err(|e| e.to_string())?;
    let mut snap = Snapshot::from_fit(model.as_ref(), ds.name(), seed, &ranking);
    // Per-pipe attributes ride along in score order so the serving layer
    // can answer declarative POST /aggregate pipelines (docs/AGGREGATE.md).
    let scores = ranking.scores();
    snap.push_section(pipefail::core::snapshot::attributes_section(
        scores.iter().map(|s| ds.pipe_length_m(s.pipe)).collect(),
        scores
            .iter()
            .map(|s| {
                let material = ds.pipe(s.pipe).material;
                Material::ALL
                    .iter()
                    .position(|m| *m == material)
                    .unwrap_or(0) as f64
            })
            .collect(),
        scores
            .iter()
            .map(|s| f64::from(ds.pipe(s.pipe).laid_year))
            .collect(),
    ));
    let format = match opt(options, "format") {
        None => SnapshotFormat::V2,
        Some(label) => SnapshotFormat::parse(label)
            .ok_or_else(|| format!("unknown --format {label:?} (expected v1 or v2)"))?,
    };
    let path = PathBuf::from(out);
    snap.save_as(&path, format).map_err(|e| e.to_string())?;
    println!(
        "{}: froze {} ranked pipes + {} posterior sections ({format}) -> {}",
        snap.model,
        snap.scores.len(),
        snap.sections.len(),
        path.display()
    );
    Ok(())
}

/// Federation mode: `--backend KEY=HOST:PORT` flags build a front-end that
/// holds no snapshots, only routes. Mutually exclusive with the snapshot
/// flags — a process is either a shard owner or a router, never both.
fn cmd_serve_federated(options: &Options, backends: &[String]) -> Result<(), String> {
    for flag in ["snapshot", "snapshot-dir", "data"] {
        if options.contains_key(flag) {
            return Err(format!("--backend starts a federation front-end; --{flag} is for snapshot-serving processes"));
        }
    }
    let mut targets = Vec::with_capacity(backends.len());
    for spec in backends {
        let Some((key, addr)) = spec.split_once('=') else {
            return Err(format!("bad --backend {spec:?}: expected KEY=HOST:PORT"));
        };
        targets.push((key.to_string(), addr.to_string()));
    }
    let fed = std::sync::Arc::new(
        pipefail::serve::Federation::new(targets, pipefail::serve::FedConfig::from_env())
            .map_err(|e| e.to_string())?,
    );
    for key in fed.keys() {
        println!("federating region {key}");
    }
    let mut config = ServerConfig::from_env();
    if let Some(addr) = opt(options, "addr") {
        config = config.with_addr(addr);
    }
    let handle =
        pipefail::serve::serve_federated(fed, &config).map_err(|e| e.to_string())?;
    println!("federation front-end on http://{} (Ctrl-C to stop)", handle.addr());
    let max_requests = opt_u64(options, "max-requests", 0)?;
    if max_requests > 0 {
        while handle.metrics().total() < max_requests {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        handle.shutdown();
        println!("served {max_requests} requests; shut down");
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    Ok(())
}

fn cmd_serve(options: &Options) -> Result<(), String> {
    if let Some(backends) = options.get("backend") {
        return cmd_serve_federated(options, backends);
    }
    let snapshots: &[String] = options.get("snapshot").map_or(&[], Vec::as_slice);
    let dir = opt(options, "snapshot-dir");
    let pool = pipefail::par::TaskPool::from_env();
    // Three shapes: --snapshot-dir DIR (one shard per *.pfsnap), repeated
    // --snapshot (one shard each), or a single --snapshot (the classic
    // single-region server). Snapshots load and strict-validate in
    // parallel on the task pool either way.
    let ctx = match (dir, snapshots) {
        (Some(_), [_, ..]) => {
            return Err("pass either --snapshot-dir or --snapshot, not both".into());
        }
        (Some(dir), []) => ServeContext::sharded(
            ShardSet::load_dir(Path::new(dir), &pool).map_err(|e| e.to_string())?,
        ),
        (None, []) => {
            return Err(
                "missing --snapshot FILE or --snapshot-dir DIR (written by `pipefail snapshot`)"
                    .into(),
            );
        }
        (None, [path]) => {
            let scorer =
                Scorer::load(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))?;
            ServeContext::new(scorer)
        }
        (None, many) => {
            let paths: Vec<PathBuf> = many.iter().map(PathBuf::from).collect();
            ServeContext::sharded(ShardSet::load_paths(&paths, &pool).map_err(|e| e.to_string())?)
        }
    };
    let mut ctx = ctx;
    for shard in ctx.shards().shards() {
        let s = shard.last_good();
        println!(
            "loaded {} snapshot of {} ({} pipes, {} via {}){}",
            s.model(),
            s.region(),
            s.len(),
            s.format(),
            s.loader(),
            if ctx.shards().is_single() {
                String::new()
            } else {
                format!(" [region={}]", shard.key())
            }
        );
    }
    if options.contains_key("data") {
        if !ctx.shards().is_single() {
            return Err("--data (risk maps) only works with a single --snapshot".into());
        }
        // Optional geometry: enables the /riskmap.svg endpoint.
        ctx = ctx.with_dataset(load(options)?);
    }
    // Wire the snapshot files into the config so PIPEFAIL_HTTP_RELOAD_SECS
    // can arm the hot-reload watcher on the same files we just loaded:
    // sharded sets carry their own per-shard paths, single-snapshot mode
    // watches the one file.
    let mut config = ServerConfig::from_env();
    if let (true, [path]) = (ctx.shards().is_single(), snapshots) {
        config = config.with_snapshot_path(Path::new(path));
    }
    if let Some(addr) = opt(options, "addr") {
        config = config.with_addr(addr);
    }
    if config.reload_poll_secs > 0.0 {
        let watched = ctx
            .shards()
            .shards()
            .iter()
            .filter(|s| s.path().is_some())
            .count()
            .max(usize::from(config.snapshot_path.is_some()));
        println!(
            "hot-reload armed: polling {watched} snapshot file(s) every {}s",
            config.reload_poll_secs
        );
    }
    let max_requests = opt_u64(options, "max-requests", 0)?;
    let handle =
        pipefail::serve::serve(std::sync::Arc::new(ctx), &config).map_err(|e| e.to_string())?;
    println!("serving on http://{} (Ctrl-C to stop)", handle.addr());
    if max_requests > 0 {
        // Bounded mode (used by tests/CI): answer N requests, then exit.
        while handle.metrics().total() < max_requests {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        handle.shutdown();
        println!("served {max_requests} requests; shut down");
    } else {
        // Run until killed; the OS reclaims the socket on exit.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    Ok(())
}
