//! # pipefail
//!
//! Facade crate: one import for the whole water-pipe failure-prediction
//! stack. Re-exports the public API of every workspace crate.
//!
//! ## Quickstart
//!
//! ```
//! use pipefail::prelude::*;
//!
//! // Generate a small synthetic utility network, train the DPMHBP model on
//! // 1998–2008 failures and rank pipes by 2009 failure risk.
//! let world = WorldConfig::demo().build(7);
//! let region = &world.regions()[0];
//! let split = TrainTestSplit::paper_protocol();
//! let mut model = Dpmhbp::new(DpmhbpConfig::fast());
//! let ranking = model.fit_rank(region, &split, 7).unwrap();
//! assert_eq!(ranking.len(), region.pipes_of_class(PipeClass::Critical).count());
//! ```

pub use pipefail_baselines as baselines;
pub use pipefail_core as core;
pub use pipefail_eval as eval;
pub use pipefail_mcmc as mcmc;
pub use pipefail_network as network;
pub use pipefail_par as par;
pub use pipefail_serve as serve;
pub use pipefail_stats as stats;
pub use pipefail_synth as synth;

/// Convenience re-exports covering the common workflow: generate (or load)
/// a network, split it temporally, fit models, evaluate rankings.
pub mod prelude {
    pub use pipefail_baselines::{
        cox::CoxModel, time_models::TimeModel, weibull_nhpp::WeibullNhpp,
    };
    pub use pipefail_core::{
        dpmhbp::{Dpmhbp, DpmhbpConfig},
        hbp::{GroupingScheme, Hbp, HbpConfig},
        model::{FailureModel, RiskRanking},
        ranking::{RankSvm, RankSvmConfig},
        snapshot::{Snapshot, SnapshotFormat},
    };
    pub use pipefail_eval::{
        detection::DetectionCurve,
        metrics::{auc_at_fraction, full_auc},
    };
    pub use pipefail_network::{
        Dataset, FailureKind, Material, PipeClass, PipeId, SegmentId, TrainTestSplit,
    };
    pub use pipefail_serve::{Scorer, ServeContext, ServerConfig, ShardSet};
    pub use pipefail_synth::{RegionTemplate, WorldConfig};
}
