//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use.
//!
//! The build environment has no crates.io access. This crate keeps the
//! bench binaries compiling and runnable: each `bench_function` runs a
//! short warm-up, then a fixed-iteration timed loop, and prints a
//! median-of-batches nanoseconds-per-iteration estimate. It is a
//! smoke-measure, not a statistics engine — treat results as indicative.

use std::hint;
use std::sync::Mutex;
use std::time::Instant;

/// Opaque value barrier (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One completed benchmark measurement (an extension over upstream
/// criterion: the stand-in exposes its raw results so harnesses can emit a
/// machine-readable perf trajectory).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// `group/bench` identifier as printed.
    pub id: String,
    /// Median-free fixed-budget estimate, nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations behind the estimate.
    pub iters: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(id: String, ns_per_iter: f64, iters: u64) {
    let mut r = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    r.push(BenchRecord {
        id,
        ns_per_iter,
        iters,
    });
}

/// Drain every measurement recorded so far (in execution order). Call once
/// from a custom `main` after the groups ran.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *RECORDS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// True when `PIPEFAIL_BENCH_SMOKE=1`: each bench runs a single timed
/// iteration — enough to prove the harness end-to-end (and produce a
/// trajectory entry) without CI-scale wall-clock.
pub fn smoke_mode() -> bool {
    std::env::var("PIPEFAIL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Identifier for parameterised benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Per-bench timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `f` over a fixed iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (skipped in smoke mode, where only the plumbing matters).
        if !smoke_mode() {
            for _ in 0..3 {
                black_box(f());
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.nanos_per_iter = total / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the per-bench iteration budget (smoke mode pins it to 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.iters = if smoke_mode() {
            1
        } else {
            (n as u64).clamp(1, 1_000)
        };
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, b.nanos_per_iter, b.iters
        );
        record(format!("{}/{}", self.name, id), b.nanos_per_iter, b.iters);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<N: std::fmt::Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, b.nanos_per_iter, b.iters
        );
        record(format!("{}/{}", self.name, id), b.nanos_per_iter, b.iters);
        self
    }

    /// End the group (upstream-compatible no-op).
    pub fn finish(&mut self) {}
}

/// The bench context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            iters: if smoke_mode() { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("bench {}: {:.1} ns/iter ({} iters)", id, b.nanos_per_iter, b.iters);
        record(id.to_string(), b.nanos_per_iter, b.iters);
        self
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
