//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use.
//!
//! The build environment has no crates.io access. This crate keeps the
//! bench binaries compiling and runnable: each `bench_function` runs a
//! short warm-up, then a fixed-iteration timed loop, and prints a
//! median-of-batches nanoseconds-per-iteration estimate. It is a
//! smoke-measure, not a statistics engine — treat results as indicative.

use std::hint;
use std::time::Instant;

/// Opaque value barrier (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for parameterised benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Per-bench timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `f` over a fixed iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.nanos_per_iter = total / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the per-bench iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.iters = (n as u64).clamp(1, 1_000);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, b.nanos_per_iter, b.iters
        );
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<N: std::fmt::Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, b.nanos_per_iter, b.iters
        );
        self
    }

    /// End the group (upstream-compatible no-op).
    pub fn finish(&mut self) {}
}

/// The bench context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("bench {}: {:.1} ns/iter ({} iters)", id, b.nanos_per_iter, b.iters);
        self
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
