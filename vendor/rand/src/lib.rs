//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small surface it needs: the [`Rng`] trait (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is **not** the upstream ChaCha12 generator: it is
//! xoshiro256++ seeded through SplitMix64. Streams are therefore not
//! bit-compatible with upstream `rand`, but every consumer in this
//! workspace only relies on determinism-given-seed and statistical
//! quality, both of which xoshiro256++ provides. Unlike upstream, the
//! generator exposes its raw state ([`rngs::StdRng::to_raw_state`] /
//! [`rngs::StdRng::from_raw_state`]) so long MCMC fits can checkpoint and
//! resume mid-stream byte-identically.

use std::ops::Range;

/// Types samplable uniformly from the generator's "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, full-range integers, fair bools.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Lemire's unbiased bounded generation (widening multiply).
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                (self.start as i128 + (m >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                if start == end {
                    return start;
                }
                if let Some(end_excl) = end.checked_add(1) {
                    return (start..end_excl).sample_single(rng);
                }
                // Full-width inclusive range: rejection-free direct draw.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The random-number-generator trait: one required method, everything else
/// derived from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// seeded via SplitMix64. Deterministic, `Clone`, and with raw-state
    /// access for checkpoint/resume of long-running samplers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit state (for checkpointing).
        pub fn to_raw_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`Self::to_raw_state`] output. The
        /// stream continues exactly where the checkpointed one stopped.
        pub fn from_raw_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "StdRng state must not be all zero"
            );
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_interval_and_moments() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn raw_state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_raw_state(a.to_raw_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
