//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic random-sampling property harness with the same spelling
//! as upstream proptest: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, range/tuple strategies, `collection::vec`,
//! `sample::select` and `option::of`.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports its case index and the harness seed is fixed per test name, so
//! failures replay exactly), and the default case count is 64.

use std::ops::Range;

/// Per-test deterministic generator (SplitMix64 over a seed derived from
/// the test name and case index).
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            x: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator: the sampling core of a proptest strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty strategy range");
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A constant strategy (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over fixed collections.

    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among `items`.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Choose uniformly from a non-empty vector.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty vector");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (see [`of`]).
    pub struct OptionStrategy<S: Strategy> {
        inner: S,
    }

    /// `Some` of a value from `inner` or `None`, each with probability
    /// one half (upstream weights 3:1 toward `Some`; an even split keeps
    /// the stub simple and exercises both arms just as well).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(2) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Assert inside a property; failure reports the case instead of
/// unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
}

/// Reject the current case (counts as skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test harness macro. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}",
                            stringify!($name), __case, __config.cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! The upstream-compatible glob import.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 3usize..9) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(-1.0f64..1.0, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn select_picks_members(x in crate::sample::select(vec![2u32, 5, 7])) {
            prop_assert!(x == 2 || x == 5 || x == 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(pair in (0u32..4, -2i32..2)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((-2..2).contains(&pair.1));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
