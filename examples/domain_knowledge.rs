//! The paper's headline claim (Fig 18.1): machine learning with domain
//! knowledge beats machine learning that only "learns from what it sees".
//!
//! Fits the same ranker twice — once with the expert-contributed
//! environmental features (soil layers, traffic distance), once with bare
//! asset attributes — and measures the gap.
//!
//! ```text
//! cargo run --release --example domain_knowledge
//! ```

use pipefail::core::ranking::{RankSvm, RankSvmConfig};
use pipefail::network::features::FeatureMask;
use pipefail::prelude::*;

fn main() {
    let world = WorldConfig::paper().scaled(0.06).only_region("Region A").build(21);
    let region = &world.regions()[0];
    let split = TrainTestSplit::paper_protocol();

    let auc_with_mask = |mask: FeatureMask, seed: u64| -> f64 {
        let mut model = RankSvm::new(RankSvmConfig {
            features: mask,
            ..RankSvmConfig::default()
        });
        let ranking = model.fit_rank(region, &split, seed).expect("fit failed");
        full_auc(&DetectionCurve::by_count(&ranking, region, split.test))
    };

    // Average over a few seeds: single-year test outcomes are noisy.
    let seeds = [1u64, 2, 3, 4, 5];
    let with: f64 = seeds.iter().map(|&s| auc_with_mask(FeatureMask::water_mains(), s)).sum::<f64>()
        / seeds.len() as f64;
    let without: f64 = seeds
        .iter()
        .map(|&s| auc_with_mask(FeatureMask::without_domain_knowledge(), s))
        .sum::<f64>()
        / seeds.len() as f64;

    println!("Ranking model on {}:", region.name());
    println!("  with domain knowledge (soil + traffic):   AUC {:.2}%", with * 100.0);
    println!("  without (asset attributes only):          AUC {:.2}%", without * 100.0);
    println!("  value of domain knowledge:                {:+.2} points", (with - without) * 100.0);
}
