//! Quickstart: generate a synthetic utility region, train the DPMHBP model
//! on eleven years of failure records, and rank the critical water mains by
//! next-year failure risk.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipefail::prelude::*;

fn main() {
    // A small three-region world (~3% of the paper's metropolis). Every
    // generator in the workspace is deterministic in the seed.
    let world = WorldConfig::demo().build(42);
    let region = world.region_named("Region A").expect("region exists");
    println!(
        "{}: {} pipes ({} critical water mains), {} failure records 1998-2009",
        region.name(),
        region.pipes().len(),
        region.pipes_of_class(PipeClass::Critical).count(),
        region.failures().len()
    );

    // The paper's protocol: train on 1998-2008, predict 2009.
    let split = TrainTestSplit::paper_protocol();

    // Fit the proposed model (fast schedule for the example).
    let mut model = Dpmhbp::new(DpmhbpConfig::fast());
    let ranking = model.fit_rank(region, &split, 42).expect("fit failed");
    println!(
        "\nDPMHBP discovered ~{:.1} failure-behaviour clusters (posterior mean)",
        model.mean_cluster_count().unwrap_or(f64::NAN)
    );

    println!("\nTop 10 highest-risk critical mains for 2009 (posterior mean ± sd):");
    let sd_of = |pipe| {
        model
            .risk_posterior()
            .iter()
            .find(|rp| rp.pipe == pipe)
            .map_or(0.0, |rp| rp.sd)
    };
    for (i, s) in ranking.scores().iter().take(10).enumerate() {
        let pipe = region.pipe(s.pipe);
        println!(
            "  {:>2}. {}  P(fail) = {:.4} ± {:.4}  [{} mm {} laid {}, {:.0} m]",
            i + 1,
            s.pipe,
            s.score,
            sd_of(s.pipe),
            pipe.diameter_mm,
            pipe.material.code(),
            pipe.laid_year,
            region.pipe_length_m(s.pipe),
        );
    }

    // Score the ranking against what actually failed in 2009.
    let curve = DetectionCurve::by_count(&ranking, region, split.test);
    println!(
        "\nAUC(100%) = {:.2}%  |  failures found in the top 10% of the ranking: {:.0}%",
        full_auc(&curve) * 100.0,
        curve.y_at(0.10) * 100.0
    );
}
