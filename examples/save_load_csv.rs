//! Asset-register interchange: export a generated region to the CSV layout
//! a utility would supply (pipes / segments / failures / meta), read it
//! back, and fit a model on the loaded copy.
//!
//! ```text
//! cargo run --release --example save_load_csv
//! ```

use pipefail::network::csvio::{read_dataset, write_dataset};
use pipefail::prelude::*;

fn main() {
    let world = WorldConfig::demo().build(3);
    let region = &world.regions()[0];

    let dir = std::env::temp_dir().join("pipefail_csv_example");
    write_dataset(region, &dir).expect("export failed");
    println!("exported {} to {}", region.name(), dir.display());
    for file in ["meta.csv", "pipes.csv", "segments.csv", "failures.csv"] {
        let len = std::fs::metadata(dir.join(file)).expect("file exists").len();
        println!("  {file:<13} {len:>9} bytes");
    }

    let loaded = read_dataset(&dir).expect("import failed");
    assert_eq!(loaded.pipes(), region.pipes());
    assert_eq!(loaded.failures(), region.failures());
    println!("\nround-trip verified: {} pipes, {} segments, {} failures",
        loaded.pipes().len(), loaded.segments().len(), loaded.failures().len());

    let split = TrainTestSplit::paper_protocol();
    let mut model = Hbp::new(HbpConfig::fast());
    let ranking = model.fit_rank(&loaded, &split, 3).expect("fit failed");
    println!(
        "HBP fitted on the loaded copy: {} pipes ranked, top score {:.4}",
        ranking.len(),
        ranking.scores().first().map_or(0.0, |s| s.score)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
