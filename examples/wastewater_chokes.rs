//! Waste-water scenario: the domain-knowledge features of §18.4.2.
//!
//! Generates a sewer catchment whose chokes are driven by tree-root
//! intrusion, reproduces the canopy/moisture relationships of Figs 18.5 and
//! 18.6, and ranks sewer pipes with the DPMHBP using the vegetation
//! features.
//!
//! ```text
//! cargo run --release --example wastewater_chokes
//! ```

use pipefail::core::dpmhbp::{Dpmhbp, DpmhbpConfig};
use pipefail::core::model::FailureModel;
use pipefail::eval::report::binned_rates;
use pipefail::network::features::FeatureMask;
use pipefail::prelude::*;
use pipefail::stats::descriptive::spearman;
use pipefail::stats::rng::seeded_rng;
use pipefail::synth::wastewater::{self, WastewaterConfig};

fn main() {
    let mut rng = seeded_rng(11);
    let config = WastewaterConfig::default_catchment().scaled(0.25);
    let ds = wastewater::generate(&config, &mut rng);
    println!(
        "{}: {} sewer pipes, {} chokes 1998-2009",
        ds.name(),
        ds.pipes().len(),
        ds.failures().len()
    );

    // Figs 18.5/18.6: choke rate rises with canopy and moisture.
    let stats = ds.segment_stats(ds.observation());
    let (mut canopy, mut moisture, mut events, mut exposure) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for seg in ds.segments() {
        let st = stats[seg.id.index()];
        canopy.push(seg.tree_canopy);
        moisture.push(seg.soil_moisture);
        events.push(st.failure_years as f64);
        exposure.push(st.exposure_years as f64);
    }
    println!("\nChoke rate by tree-canopy decile (Fig 18.5):");
    for (x, y) in binned_rates(&canopy, &events, &exposure, 10) {
        let bar = "#".repeat((y * 2000.0) as usize);
        println!("  canopy {:>4.2}: {:.4} {bar}", x, y);
    }
    let rate: Vec<f64> = events
        .iter()
        .zip(&exposure)
        .map(|(e, x)| if *x > 0.0 { e / x } else { 0.0 })
        .collect();
    println!(
        "\nSpearman correlations: canopy {:.3}, moisture {:.3}",
        spearman(&canopy, &rate).unwrap_or(f64::NAN),
        spearman(&moisture, &rate).unwrap_or(f64::NAN),
    );

    // Rank sewer pipes (all are reticulation-class) with vegetation features.
    let split = TrainTestSplit::paper_protocol();
    let mut model = Dpmhbp::new(DpmhbpConfig {
        covariates: Some(FeatureMask::all()),
        ..DpmhbpConfig::fast()
    });
    let ranking = model
        .fit_rank_class(&ds, &split, PipeClass::Reticulation, 11)
        .expect("fit failed");
    let curve = DetectionCurve::by_count(&ranking, &ds, split.test);
    println!(
        "\nDPMHBP on sewer chokes: AUC(100%) = {:.2}%, top-10% budget finds {:.0}% of 2009 chokes",
        full_auc(&curve) * 100.0,
        curve.y_at(0.10) * 100.0
    );
}
