//! Renewal-planning scenario: compare all five models from the paper on one
//! region and print the Table 18.3-style summary plus the 1%-budget
//! detection shares that drive real inspection planning.
//!
//! ```text
//! cargo run --release --example prioritize_network -- "Region B" 0.05
//! ```
//!
//! Arguments (optional): region name, world scale.

use pipefail::eval::report::format_auc_table;
use pipefail::eval::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let region_name = args.get(1).map(String::as_str).unwrap_or("Region A");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let world = WorldConfig::paper()
        .scaled(scale)
        .only_region(region_name)
        .build(7);
    let region = world
        .region_named(region_name)
        .unwrap_or_else(|| panic!("unknown region {region_name:?} (use \"Region A\"/\"B\"/\"C\")"));
    let split = TrainTestSplit::paper_protocol();
    println!(
        "{}: {} CWM pipes, {} test-year failures",
        region.name(),
        region.pipes_of_class(PipeClass::Critical).count(),
        region
            .failures_in(split.test, Some(PipeClass::Critical), None)
            .count()
    );

    let result = evaluate_region(
        region,
        &split,
        &ModelKind::paper_five(),
        RunConfig::fast(),
        7,
    )
    .expect("evaluation failed");

    println!("\n{}", format_auc_table(std::slice::from_ref(&result)));
    println!("Failures detected within a 1%-of-length inspection budget:");
    for m in &result.models {
        println!("  {:<16} {:>5.1}%", m.model, m.curve_length.y_at(0.01) * 100.0);
    }
}
