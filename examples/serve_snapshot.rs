//! The full serving pipeline in one program: fit a DPMHBP model, freeze it
//! to a snapshot file, start the HTTP scoring server on an ephemeral port,
//! query it over ONE keep-alive connection as a production client would,
//! hot-swap the snapshot on disk while the server is live, and shut down
//! gracefully.
//!
//! ```text
//! cargo run --release --example serve_snapshot
//! ```
//!
//! In production the fit and the serve run on different machines — the
//! snapshot file is the only thing that crosses the boundary, and the
//! hot-reload watcher is how a nightly re-fit goes live with zero downtime
//! (see docs/SERVING.md).

use pipefail::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A keep-alive client: one TCP connection, many requests. Responses are
/// split on their `Content-Length` framing — the same contract the
/// server's own test battery enforces byte-for-byte.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to server");
        Self { stream, buf: Vec::new() }
    }

    fn get(&mut self, path: &str) -> String {
        write!(
            self.stream,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n\r\n"
        )
        .expect("send request");
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed the kept-alive connection");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let content_length: usize = head
            .split("\r\n")
            .find_map(|l| l.split_once(':').filter(|(k, _)| k.eq_ignore_ascii_case("content-length")))
            .map(|(_, v)| v.trim().parse().expect("integer Content-Length"))
            .expect("Content-Length header");
        let total = head_end + 4 + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[head_end + 4..total]).into_owned();
        self.buf.drain(..total);
        body
    }
}

fn main() {
    // 1. Fit: train DPMHBP on 1998-2008 failures of a small synthetic region.
    let world = WorldConfig::paper().scaled(0.03).only_region("Region A").build(7);
    let region = &world.regions()[0];
    let split = TrainTestSplit::paper_protocol();
    let mut model = Dpmhbp::new(DpmhbpConfig::fast());
    let ranking = model.fit_rank(region, &split, 7).expect("fit");
    println!("fitted {} on {} ({} ranked pipes)", model.name(), region.name(), ranking.len());

    // 2. Freeze: export the posterior summary + ranking to a snapshot file.
    let path = std::env::temp_dir().join("pipefail_example.pfsnap");
    let snap = Snapshot::from_fit(&model, region.name(), 7, &ranking);
    snap.save(&path).expect("save snapshot");
    println!("snapshot: {} bytes -> {}", snap.to_bytes().len(), path.display());

    // 3. Serve: load the snapshot into a scorer, bind an ephemeral port,
    //    and arm the hot-reload watcher on the snapshot file.
    let scorer = Scorer::load(&path).expect("load snapshot");
    let ctx = Arc::new(ServeContext::new(scorer).with_dataset(region.clone()));
    let config = ServerConfig::default().with_snapshot_path(&path);
    let config = ServerConfig { reload_poll_secs: 0.1, ..config };
    let handle = pipefail::serve::serve(ctx, &config).expect("start server");
    let addr = handle.addr();
    println!("serving on http://{addr} (hot-reload polling every {}s)", config.reload_poll_secs);

    // 4. Query: every endpoint down ONE reused connection — no TCP setup
    //    cost after the first request.
    let mut client = KeepAliveClient::connect(addr);
    println!("\nGET /top?k=5\n{}", client.get("/top?k=5"));
    println!("\nGET /model\n{}", client.get("/model"));
    let svg = client.get("/riskmap.svg");
    println!("\nGET /riskmap.svg -> {} bytes of SVG", svg.len());
    println!(
        "\n{} requests on one connection, {} keep-alive reuses",
        handle.metrics().total(),
        handle.metrics().keepalive_reuses()
    );

    // 5. Hot-swap: re-fit with a different seed and overwrite the snapshot
    //    file; the watcher validates and swaps it in with zero downtime.
    let mut refit = Dpmhbp::new(DpmhbpConfig::fast());
    let reranking = refit.fit_rank(region, &split, 8).expect("refit");
    Snapshot::from_fit(&refit, region.name(), 8, &reranking).save(&path).expect("overwrite");
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().reloads_total() == 0 {
        assert!(Instant::now() < deadline, "hot reload never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The same kept-alive connection now answers from the new model
    // (seed 8 in the metadata) without ever having been dropped.
    println!("\nafter hot reload, GET /model\n{}", client.get("/model"));
    println!("\nGET /metrics\n{}", client.get("/metrics"));

    // 6. Shut down: joins the accept thread, watcher, and every worker.
    handle.shutdown();
    println!("server stopped");
    std::fs::remove_file(&path).ok();
}
