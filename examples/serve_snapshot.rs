//! The full serving pipeline in one program: fit a DPMHBP model, freeze it
//! to a snapshot file, start the HTTP scoring server on an ephemeral port,
//! query it as a client would, and shut down gracefully.
//!
//! ```text
//! cargo run --release --example serve_snapshot
//! ```
//!
//! In production the fit and the serve run on different machines — the
//! snapshot file is the only thing that crosses the boundary (see
//! docs/SERVING.md).

use pipefail::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(raw)
}

fn main() {
    // 1. Fit: train DPMHBP on 1998-2008 failures of a small synthetic region.
    let world = WorldConfig::paper().scaled(0.03).only_region("Region A").build(7);
    let region = &world.regions()[0];
    let split = TrainTestSplit::paper_protocol();
    let mut model = Dpmhbp::new(DpmhbpConfig::fast());
    let ranking = model.fit_rank(region, &split, 7).expect("fit");
    println!("fitted {} on {} ({} ranked pipes)", model.name(), region.name(), ranking.len());

    // 2. Freeze: export the posterior summary + ranking to a snapshot file.
    let path = std::env::temp_dir().join("pipefail_example.pfsnap");
    let snap = Snapshot::from_fit(&model, region.name(), 7, &ranking);
    snap.save(&path).expect("save snapshot");
    println!("snapshot: {} bytes -> {}", snap.to_bytes().len(), path.display());

    // 3. Serve: load the snapshot into a scorer and bind an ephemeral port.
    let scorer = Scorer::load(&path).expect("load snapshot");
    let ctx = Arc::new(ServeContext::new(scorer).with_dataset(region.clone()));
    let handle = pipefail::serve::serve(ctx, &ServerConfig::default()).expect("start server");
    let addr = handle.addr();
    println!("serving on http://{addr}");

    // 4. Query: hit the live endpoints exactly as curl would.
    println!("\nGET /top?k=5\n{}", http_get(addr, "/top?k=5"));
    println!("\nGET /model\n{}", http_get(addr, "/model"));
    let svg = http_get(addr, "/riskmap.svg");
    println!("\nGET /riskmap.svg -> {} bytes of SVG", svg.len());
    println!("\nGET /metrics\n{}", http_get(addr, "/metrics"));

    // 5. Shut down: joins the accept thread and every worker.
    handle.shutdown();
    println!("server stopped");
    std::fs::remove_file(&path).ok();
}
