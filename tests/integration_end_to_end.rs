//! Cross-crate integration: world generation → model fitting → evaluation,
//! exercising the same path as the paper's comparison experiments.

use pipefail::eval::metrics::mann_whitney_auc;
use pipefail::eval::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail::prelude::*;

fn region_with_test_failures(scale: f64, base_seed: u64) -> pipefail::network::Dataset {
    // Tiny worlds sometimes have no test-year CWM failures; scan seeds.
    let split = TrainTestSplit::paper_protocol();
    for offset in 0..20 {
        let world = WorldConfig::paper()
            .scaled(scale)
            .only_region("Region A")
            .build(base_seed + offset);
        let ds = world.regions()[0].clone();
        if ds
            .failures_in(split.test, Some(PipeClass::Critical), None)
            .count()
            >= 2
        {
            return ds;
        }
    }
    panic!("no seed produced test-year failures at scale {scale}");
}

#[test]
fn all_models_rank_the_same_pipe_set() {
    let ds = region_with_test_failures(0.03, 100);
    let split = TrainTestSplit::paper_protocol();
    let result = evaluate_region(
        &ds,
        &split,
        &[
            ModelKind::Dpmhbp,
            ModelKind::Hbp(pipefail::core::hbp::GroupingScheme::Material),
            ModelKind::Cox,
            ModelKind::Weibull,
            ModelKind::RankSvm,
            ModelKind::TimeExp,
            ModelKind::TimePow,
            ModelKind::TimeLin,
        ],
        RunConfig::fast(),
        9,
    )
    .unwrap();
    let n = ds.pipes_of_class(PipeClass::Critical).count();
    for m in &result.models {
        assert_eq!(m.curve_count.len(), n, "{} ranked a different set", m.model);
        assert!(m.auc_full.is_finite());
    }
}

#[test]
fn dpmhbp_beats_chance_on_average() {
    // Averaged over replicate worlds, the proposed model must rank 2009
    // failures well above chance (MW-AUC 0.5). Single worlds are noisy, so
    // average over several.
    let split = TrainTestSplit::paper_protocol();
    let mut aucs = Vec::new();
    for seed in [201u64, 202, 203, 204, 205] {
        let world = WorldConfig::paper()
            .scaled(0.04)
            .only_region("Region A")
            .build(seed);
        let ds = &world.regions()[0];
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        let ranking = model.fit_rank(ds, &split, seed).unwrap();
        if let Some(a) = mann_whitney_auc(&ranking, ds, split.test) {
            aucs.push(a);
        }
    }
    assert!(aucs.len() >= 3, "too few informative replicates");
    let mean: f64 = aucs.iter().sum::<f64>() / aucs.len() as f64;
    assert!(mean > 0.55, "mean MW-AUC {mean} not above chance: {aucs:?}");
}

#[test]
fn informed_models_beat_age_only_models_on_average() {
    // The paper's qualitative shape: multivariate/nonparametric models beat
    // the early time-only models. Checked on averaged MW-AUC across seeds.
    let split = TrainTestSplit::paper_protocol();
    let mut dpm = Vec::new();
    let mut tim = Vec::new();
    for seed in [301u64, 302, 303, 304] {
        let world = WorldConfig::paper()
            .scaled(0.04)
            .only_region("Region C")
            .build(seed);
        let ds = &world.regions()[0];
        let mut a = Dpmhbp::new(DpmhbpConfig::fast());
        let mut b = pipefail::baselines::time_models::TimeModel::new(
            pipefail::baselines::time_models::TimeModelKind::Linear,
        );
        let ra = a.fit_rank(ds, &split, seed).unwrap();
        let rb = pipefail::core::model::FailureModel::fit_rank(&mut b, ds, &split, seed).unwrap();
        if let (Some(x), Some(y)) = (
            mann_whitney_auc(&ra, ds, split.test),
            mann_whitney_auc(&rb, ds, split.test),
        ) {
            dpm.push(x);
            tim.push(y);
        }
    }
    assert!(!dpm.is_empty());
    let mean_dpm: f64 = dpm.iter().sum::<f64>() / dpm.len() as f64;
    let mean_tim: f64 = tim.iter().sum::<f64>() / tim.len() as f64;
    assert!(
        mean_dpm + 0.02 > mean_tim,
        "DPMHBP {mean_dpm} should not trail TimeLin {mean_tim} badly"
    );
}

#[test]
fn rankings_are_reproducible_across_processes() {
    // Same world + same seed ⇒ byte-identical ranking (the whole stack is
    // deterministic in the seed).
    let world = WorldConfig::paper().scaled(0.02).only_region("Region B").build(77);
    let ds = &world.regions()[0];
    let split = TrainTestSplit::paper_protocol();
    let r1 = Dpmhbp::new(DpmhbpConfig::fast()).fit_rank(ds, &split, 5).unwrap();
    let r2 = Dpmhbp::new(DpmhbpConfig::fast()).fit_rank(ds, &split, 5).unwrap();
    assert_eq!(r1, r2);
}
