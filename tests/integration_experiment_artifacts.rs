//! Integration: the figure/table artefact producers generate well-formed
//! outputs on a miniature world (the experiment binaries drive the same
//! code at larger scale).

use pipefail::eval::report::{binned_rates, detection_curves_csv, format_auc_table};
use pipefail::eval::riskmap::risk_map;
use pipefail::eval::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail::eval::svg::network_map;
use pipefail::network::summary::{format_table, summarize};
use pipefail::prelude::*;

fn demo() -> pipefail::network::Dataset {
    WorldConfig::paper()
        .scaled(0.04)
        .only_region("Region A")
        .build(5)
        .regions()[0]
        .clone()
}

#[test]
fn table18_1_shape() {
    let ds = demo();
    let rows = summarize(&ds);
    assert_eq!(rows.len(), 2);
    let text = format_table(&rows);
    assert!(text.contains("Region A"));
    assert!(text.contains("CWM"));
    assert!(text.contains("1998-2009"));
}

#[test]
fn fig18_2_svg_is_wellformed() {
    let ds = demo();
    let svg = network_map(&ds, 400.0, 400.0);
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("#cc2222") && svg.contains("#2244cc"));
    assert!(svg.trim_end().ends_with("</svg>"));
}

#[test]
fn fig18_7_and_table18_3_artifacts() {
    let ds = demo();
    let split = TrainTestSplit::paper_protocol();
    let result = evaluate_region(
        &ds,
        &split,
        &[ModelKind::Dpmhbp, ModelKind::Cox],
        RunConfig::fast(),
        5,
    )
    .unwrap();
    let csv = detection_curves_csv(&result, 50);
    assert_eq!(csv.lines().count(), 51);
    assert!(csv.starts_with("budget,DPMHBP,Cox"));
    let table = format_auc_table(std::slice::from_ref(&result));
    assert!(table.contains("DPMHBP") && table.contains("Cox"));
}

#[test]
fn fig18_9_riskmap_renders() {
    let ds = demo();
    let split = TrainTestSplit::paper_protocol();
    let mut model = Hbp::new(HbpConfig::fast());
    let ranking = model.fit_rank(&ds, &split, 5).unwrap();
    let svg = risk_map(&ds, &ranking, split.test, 500.0, 500.0);
    assert!(svg.contains("<polyline"));
    assert!(svg.contains("#d73027"), "top decile colour present");
}

#[test]
fn fig18_5_6_binned_relationship_is_positive() {
    use pipefail::stats::rng::seeded_rng;
    use pipefail::synth::wastewater::{self, WastewaterConfig};
    let mut rng = seeded_rng(19);
    let ds = wastewater::generate(&WastewaterConfig::default_catchment().scaled(0.1), &mut rng);
    let stats = ds.segment_stats(ds.observation());
    let (mut canopy, mut ev, mut ex) = (Vec::new(), Vec::new(), Vec::new());
    for seg in ds.segments() {
        canopy.push(seg.tree_canopy);
        ev.push(stats[seg.id.index()].failure_years as f64);
        ex.push(stats[seg.id.index()].exposure_years as f64);
    }
    let bins = binned_rates(&canopy, &ev, &ex, 5);
    assert!(bins.len() >= 3);
    // First-to-last trend must be rising (the paper's Fig 18.5 shape).
    assert!(
        bins.last().unwrap().1 > bins.first().unwrap().1,
        "choke rate must rise with canopy: {bins:?}"
    );
}
