//! Property-based tests on cross-crate invariants (proptest).

use pipefail::core::hier::{quantize_multiplier, ObsPattern, PatternTable};
use pipefail::core::model::{RiskRanking, RiskScore};
use pipefail::eval::detection::DetectionCurve;
use pipefail::network::dataset::test_helpers::three_pipe_dataset;
use pipefail::network::geometry::{point_segment_distance, Point, Polyline};
use pipefail::network::ids::PipeId;
use pipefail::network::split::ObservationWindow;
use proptest::prelude::*;

proptest! {
    /// Rankings are always sorted descending regardless of input order.
    #[test]
    fn ranking_always_sorted(scores in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let ranking = RiskRanking::new(
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| RiskScore { pipe: PipeId(i as u32), score: s })
                .collect(),
        );
        for w in ranking.scores().windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        prop_assert_eq!(ranking.len(), scores.len());
    }

    /// Detection curves are monotone in both axes and their area respects
    /// the budget bound, for any permutation of the three-pipe fixture.
    #[test]
    fn detection_curve_monotone(perm in proptest::sample::select(vec![
        [0u32,1,2],[0,2,1],[1,0,2],[1,2,0],[2,0,1],[2,1,0]
    ]), budget in 0.0f64..1.0) {
        let ds = three_pipe_dataset();
        let ranking = RiskRanking::new(
            perm.iter()
                .enumerate()
                .map(|(i, &p)| RiskScore { pipe: PipeId(p), score: (3 - i) as f64 })
                .collect(),
        );
        let curve = DetectionCurve::by_count(&ranking, &ds, ObservationWindow::new(2009, 2009));
        for w in curve.ys().windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        for w in curve.xs().windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        let area = curve.area(budget);
        prop_assert!(area >= -1e-12 && area <= budget + 1e-12);
        prop_assert!(curve.y_at(budget) >= 0.0 && curve.y_at(budget) <= 1.0);
    }

    /// Beta–Bernoulli posterior means always lie strictly inside (0, 1) and
    /// between the prior mean and the empirical rate.
    #[test]
    fn posterior_mean_bounded(
        s in 0u32..12,
        f in 0u32..12,
        q in 0.001f64..0.999,
        c in 0.01f64..1e4,
    ) {
        let pat = ObsPattern { s: s as f64, f: f as f64 };
        let m = pat.posterior_mean(q, c);
        prop_assert!(m > 0.0 && m < 1.0);
        if s + f > 0 {
            let empirical = s as f64 / (s + f) as f64;
            let (lo, hi) = if q <= empirical { (q, empirical) } else { (empirical, q) };
            prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12, "m={m} not in [{lo},{hi}]");
        }
    }

    /// Marginal log-likelihoods are finite and ≤ 0 (they are probabilities
    /// of binary sequences).
    #[test]
    fn log_marginal_is_log_probability(
        s in 0u32..12,
        f in 0u32..12,
        q in 0.001f64..0.999,
        c in 0.01f64..1e4,
    ) {
        let pat = ObsPattern { s: s as f64, f: f as f64 };
        let lm = pat.log_marginal(q, c);
        prop_assert!(lm.is_finite());
        prop_assert!(lm <= 1e-10, "log marginal {lm} must be <= 0");
    }

    /// Multiplier quantisation is idempotent, bounded, and order-preserving.
    #[test]
    fn quantization_properties(a in 1e-6f64..1e6, b in 1e-6f64..1e6) {
        let qa = quantize_multiplier(a);
        let qb = quantize_multiplier(b);
        prop_assert!((quantize_multiplier(qa) - qa).abs() < 1e-12);
        if a <= b {
            prop_assert!(qa <= qb + 1e-12);
        }
    }

    /// Pattern tables preserve unit count and pattern indices are valid.
    #[test]
    fn pattern_table_consistency(
        units in proptest::collection::vec((0u32..5, 0u32..12, 0.1f64..10.0), 1..200)
    ) {
        let table = PatternTable::build(
            units.iter().map(|&(s, f, e)| (s as f64, f as f64, e)),
        );
        prop_assert_eq!(table.units(), units.len());
        prop_assert!(table.len() <= units.len());
        for i in 0..table.units() {
            prop_assert!(table.pattern_of(i) < table.len());
        }
    }

    /// Point-to-segment distance is symmetric in the segment's endpoints and
    /// never exceeds the distance to either endpoint.
    #[test]
    fn segment_distance_properties(
        px in -1e3f64..1e3, py in -1e3f64..1e3,
        ax in -1e3f64..1e3, ay in -1e3f64..1e3,
        bx in -1e3f64..1e3, by in -1e3f64..1e3,
    ) {
        let p = Point::new(px, py);
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let d1 = point_segment_distance(p, a, b);
        let d2 = point_segment_distance(p, b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 <= p.distance(&a) + 1e-9);
        prop_assert!(d1 <= p.distance(&b) + 1e-9);
    }

    /// Polyline arc-length interpolation stays on the line's bounding box
    /// and point_at(0)/point_at(1) hit the endpoints.
    #[test]
    fn polyline_interpolation(
        pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..8),
        t in 0.0f64..1.0,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let pl = Polyline::new(points.clone()).expect(">=2 points");
        let p = pl.point_at(t);
        let b = pl.bounds();
        prop_assert!(b.contains(Point::new(
            p.x.clamp(b.min.x, b.max.x),
            p.y.clamp(b.min.y, b.max.y)
        )));
        let start = pl.point_at(0.0);
        prop_assert!((start.x - points[0].x).abs() < 1e-9);
        let end = pl.point_at(1.0);
        let last = points.last().unwrap();
        prop_assert!((end.x - last.x).abs() < 1e-9 && (end.y - last.y).abs() < 1e-9);
    }
}
