//! Integration: generated worlds survive the CSV interchange format and
//! models fit identically on the loaded copy.

use pipefail::network::csvio::{read_dataset, write_dataset};
use pipefail::prelude::*;

#[test]
fn generated_region_roundtrips_through_csv() {
    let world = WorldConfig::paper().scaled(0.015).build(13);
    for region in world.regions() {
        let dir = std::env::temp_dir().join(format!(
            "pipefail_it_csv_{}_{}",
            std::process::id(),
            region.region().0
        ));
        write_dataset(region, &dir).unwrap();
        let loaded = read_dataset(&dir).unwrap();
        assert_eq!(loaded.name(), region.name());
        assert_eq!(loaded.pipes(), region.pipes());
        assert_eq!(loaded.segments(), region.segments());
        assert_eq!(loaded.failures(), region.failures());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn model_fit_is_identical_on_loaded_copy() {
    let world = WorldConfig::paper().scaled(0.02).only_region("Region A").build(29);
    let region = &world.regions()[0];
    let dir = std::env::temp_dir().join(format!("pipefail_it_fit_{}", std::process::id()));
    write_dataset(region, &dir).unwrap();
    let loaded = read_dataset(&dir).unwrap();
    let split = TrainTestSplit::paper_protocol();
    let a = Hbp::new(HbpConfig::fast()).fit_rank(region, &split, 8).unwrap();
    let b = Hbp::new(HbpConfig::fast()).fit_rank(&loaded, &split, 8).unwrap();
    assert_eq!(a, b, "fit must not depend on in-memory vs loaded data");
    let _ = std::fs::remove_dir_all(&dir);
}
