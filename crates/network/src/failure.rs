//! Failure records: work orders matched to pipe segments.

use crate::ids::{PipeId, SegmentId};


/// What failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Drinking-water main break (burst/leak work order).
    Break,
    /// Waste-water pipe blockage ("choke"), typically tree-root intrusion.
    Choke,
}

impl FailureKind {
    /// Short code used in CSV files.
    pub fn code(&self) -> &'static str {
        match self {
            FailureKind::Break => "BREAK",
            FailureKind::Choke => "CHOKE",
        }
    }

    /// Parse a CSV code.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "BREAK" => Some(FailureKind::Break),
            "CHOKE" => Some(FailureKind::Choke),
            _ => None,
        }
    }
}

/// One failure event, located to a segment and dated to a calendar year.
///
/// The paper's failure data carries dates and coordinates; after matching to
/// segments (which the synthetic generator does exactly), the models only
/// consume `(segment, year)`, so that is what we keep, plus the redundant
/// pipe id for O(1) pipe-level aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// The failed segment.
    pub segment: SegmentId,
    /// The pipe the segment belongs to.
    pub pipe: PipeId,
    /// Calendar year of the work order.
    pub year: i32,
    /// Break or choke.
    pub kind: FailureKind,
}

impl FailureRecord {
    /// Construct a record.
    pub fn new(segment: SegmentId, pipe: PipeId, year: i32, kind: FailureKind) -> Self {
        Self {
            segment,
            pipe,
            year,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        assert_eq!(FailureKind::from_code("BREAK"), Some(FailureKind::Break));
        assert_eq!(FailureKind::from_code("CHOKE"), Some(FailureKind::Choke));
        assert_eq!(FailureKind::from_code("?"), None);
        assert_eq!(FailureKind::Break.code(), "BREAK");
    }

    #[test]
    fn record_construction() {
        let r = FailureRecord::new(SegmentId(5), PipeId(2), 2003, FailureKind::Break);
        assert_eq!(r.segment, SegmentId(5));
        assert_eq!(r.pipe, PipeId(2));
        assert_eq!(r.year, 2003);
    }
}
