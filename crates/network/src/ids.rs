//! Strongly-typed identifiers.
//!
//! Pipes, segments and regions are referenced by dense indices everywhere in
//! the workspace; newtypes prevent the classic bug of indexing the segment
//! table with a pipe id (both are plain integers in utility asset registers).



macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a pipe (a series of segments).
    PipeId,
    u32
);
id_type!(
    /// Identifier of a pipe segment.
    SegmentId,
    u32
);
id_type!(
    /// Identifier of a region (local government area).
    RegionId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_index() {
        let p = PipeId(3);
        let s = SegmentId(3);
        assert_eq!(p.index(), 3);
        assert_eq!(s.index(), 3);
        assert_eq!(format!("{p}"), "PipeId(3)");
        assert_eq!(format!("{s}"), "SegmentId(3)");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(PipeId(1) < PipeId(2));
        assert_eq!(RegionId::from(7u16), RegionId(7));
    }
}
