//! Environmental soil factors (Table 18.2, lower half).
//!
//! Four categorical soil layers, each partitioning the region plane into
//! zones; every segment inherits the zone values at its midpoint. The
//! variants follow the paper's descriptions: corrosiveness (linear
//! polarisation resistance classes), expansiveness (shrink–swell classes),
//! geology (rock types) and soil map (landscape classes).



/// Risk of pipe pitting from electrochemical corrosion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SoilCorrosiveness {
    /// Negligible corrosion risk.
    Low,
    /// Moderate corrosion risk.
    Moderate,
    /// High corrosion risk.
    High,
    /// Severe corrosion risk (saline/acid-sulfate soils).
    Severe,
}

/// Shrink–swell reactivity of expansive clays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SoilExpansiveness {
    /// Stable soils.
    Low,
    /// Moderately reactive.
    Moderate,
    /// Highly reactive clays.
    High,
}

/// Underlying rock type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoilGeology {
    /// Sandstone.
    Sandstone,
    /// Shale.
    Shale,
    /// Alluvium.
    Alluvium,
    /// Granite.
    Granite,
}

/// Landscape class from the soil map layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoilLandscape {
    /// River-deposited.
    Fluvial,
    /// Slope-deposited.
    Colluvial,
    /// Actively eroding.
    Erosional,
    /// In-place weathered.
    Residual,
}

macro_rules! soil_codes {
    ($ty:ident, $( $variant:ident => $code:literal ),+ $(,)?) => {
        impl $ty {
            /// All variants, for encoders and generators.
            pub const ALL: &'static [$ty] = &[$($ty::$variant),+];

            /// Short code used in CSV files.
            pub fn code(&self) -> &'static str {
                match self { $( $ty::$variant => $code ),+ }
            }

            /// Parse a CSV code.
            pub fn from_code(code: &str) -> Option<Self> {
                match code { $( $code => Some($ty::$variant), )+ _ => None }
            }
        }
    };
}

soil_codes!(SoilCorrosiveness, Low => "LOW", Moderate => "MOD", High => "HIGH", Severe => "SEV");
soil_codes!(SoilExpansiveness, Low => "LOW", Moderate => "MOD", High => "HIGH");
soil_codes!(SoilGeology, Sandstone => "SAND", Shale => "SHALE", Alluvium => "ALLUV", Granite => "GRAN");
soil_codes!(SoilLandscape, Fluvial => "FLUV", Colluvial => "COLL", Erosional => "EROS", Residual => "RESID");

/// The complete soil description at a segment location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoilProfile {
    /// Corrosion-risk class.
    pub corrosiveness: SoilCorrosiveness,
    /// Shrink–swell class.
    pub expansiveness: SoilExpansiveness,
    /// Rock type.
    pub geology: SoilGeology,
    /// Landscape class.
    pub landscape: SoilLandscape,
}

impl SoilProfile {
    /// A benign default profile (stable sandstone residual soils).
    pub fn benign() -> Self {
        Self {
            corrosiveness: SoilCorrosiveness::Low,
            expansiveness: SoilExpansiveness::Low,
            geology: SoilGeology::Sandstone,
            landscape: SoilLandscape::Residual,
        }
    }

    /// Ordinal corrosiveness score in [0, 1] (Low→0, Severe→1), used by the
    /// synthetic hazard and by simple numeric encoders.
    pub fn corrosiveness_score(&self) -> f64 {
        match self.corrosiveness {
            SoilCorrosiveness::Low => 0.0,
            SoilCorrosiveness::Moderate => 1.0 / 3.0,
            SoilCorrosiveness::High => 2.0 / 3.0,
            SoilCorrosiveness::Severe => 1.0,
        }
    }

    /// Ordinal expansiveness score in [0, 1].
    pub fn expansiveness_score(&self) -> f64 {
        match self.expansiveness {
            SoilExpansiveness::Low => 0.0,
            SoilExpansiveness::Moderate => 0.5,
            SoilExpansiveness::High => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_all_layers() {
        for &c in SoilCorrosiveness::ALL {
            assert_eq!(SoilCorrosiveness::from_code(c.code()), Some(c));
        }
        for &e in SoilExpansiveness::ALL {
            assert_eq!(SoilExpansiveness::from_code(e.code()), Some(e));
        }
        for &g in SoilGeology::ALL {
            assert_eq!(SoilGeology::from_code(g.code()), Some(g));
        }
        for &l in SoilLandscape::ALL {
            assert_eq!(SoilLandscape::from_code(l.code()), Some(l));
        }
    }

    #[test]
    fn corrosiveness_is_ordered() {
        assert!(SoilCorrosiveness::Low < SoilCorrosiveness::Severe);
        assert!(SoilCorrosiveness::Moderate < SoilCorrosiveness::High);
    }

    #[test]
    fn scores_are_monotone() {
        let mut profile = SoilProfile::benign();
        assert_eq!(profile.corrosiveness_score(), 0.0);
        profile.corrosiveness = SoilCorrosiveness::Severe;
        assert_eq!(profile.corrosiveness_score(), 1.0);
        profile.expansiveness = SoilExpansiveness::High;
        assert_eq!(profile.expansiveness_score(), 1.0);
    }
}
