//! Uniform-grid spatial index for nearest-point queries.
//!
//! Computing every segment's distance to its closest traffic intersection is
//! an all-pairs nearest-neighbour problem (10⁵ segments × 10³ intersections
//! per region). A uniform grid with ring-expansion search makes each query
//! O(points per cell) in the common case, which the `datagen` bench measures.

use crate::geometry::{Bounds, Point};

/// A grid index over a fixed set of points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    cell: f64,
    cols: usize,
    rows: usize,
    origin: Point,
    buckets: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Build an index. `cell_size` must be positive; a good choice is the
    /// expected nearest-neighbour spacing. An empty point set is allowed
    /// (queries then return `None`).
    pub fn new(points: Vec<Point>, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut bounds = Bounds::empty();
        for p in &points {
            bounds.expand(*p);
        }
        if points.is_empty() {
            return Self {
                points,
                cell: cell_size,
                cols: 0,
                rows: 0,
                origin: Point::new(0.0, 0.0),
                buckets: Vec::new(),
            };
        }
        let cols = (bounds.width() / cell_size).ceil() as usize + 1;
        let rows = (bounds.height() / cell_size).ceil() as usize + 1;
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = cell_of(*p, bounds.min, cell_size, cols, rows);
            buckets[cy * cols + cx].push(i as u32);
        }
        Self {
            points,
            cell: cell_size,
            cols,
            rows,
            origin: bounds.min,
            buckets,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest indexed point to `q`: returns `(index, distance)`.
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let (qx, qy) = cell_of(q, self.origin, self.cell, self.cols, self.rows);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is found, ring r can only improve the answer
            // while (r−1)·cell < best distance.
            if let Some((_, d)) = best {
                if (ring as f64 - 1.0) * self.cell > d {
                    break;
                }
            }
            let mut any_cell = false;
            for (cx, cy) in ring_cells(qx, qy, ring, self.cols, self.rows) {
                any_cell = true;
                for &i in &self.buckets[cy * self.cols + cx] {
                    let d = q.distance(&self.points[i as usize]);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i as usize, d));
                    }
                }
            }
            if !any_cell && best.is_some() {
                break;
            }
        }
        best
    }

    /// Brute-force nearest (for validation and small inputs).
    pub fn nearest_brute(&self, q: Point) -> Option<(usize, f64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, q.distance(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }
}

fn cell_of(p: Point, origin: Point, cell: f64, cols: usize, rows: usize) -> (usize, usize) {
    let cx = ((p.x - origin.x) / cell).floor().max(0.0) as usize;
    let cy = ((p.y - origin.y) / cell).floor().max(0.0) as usize;
    (cx.min(cols.saturating_sub(1)), cy.min(rows.saturating_sub(1)))
}

/// Cells at Chebyshev distance exactly `ring` from `(cx, cy)`, clipped to the
/// grid.
fn ring_cells(
    cx: usize,
    cy: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let r = ring as i64;
    let (cx, cy) = (cx as i64, cy as i64);
    let (cols, rows) = (cols as i64, rows as i64);
    ((-r)..=r)
        .flat_map(move |dy| ((-r)..=r).map(move |dx| (dx, dy)))
        .filter(move |&(dx, dy)| dx.abs().max(dy.abs()) == r)
        .filter_map(move |(dx, dy)| {
            let x = cx + dx;
            let y = cy + dy;
            (x >= 0 && y >= 0 && x < cols && y < rows).then_some((x as usize, y as usize))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn empty_index() {
        let g = GridIndex::new(vec![], 10.0);
        assert!(g.is_empty());
        assert_eq!(g.nearest(Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn single_point() {
        let g = GridIndex::new(vec![Point::new(5.0, 5.0)], 10.0);
        let (i, d) = g.nearest(Point::new(8.0, 9.0)).unwrap();
        assert_eq!(i, 0);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = seeded_rng(70);
        let points: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
            .collect();
        let g = GridIndex::new(points, 50.0);
        for _ in 0..300 {
            let q = Point::new(rng.gen::<f64>() * 1200.0 - 100.0, rng.gen::<f64>() * 1200.0 - 100.0);
            let (bi, bd) = g.nearest_brute(q).unwrap();
            let (gi, gd) = g.nearest(q).unwrap();
            assert!(
                (bd - gd).abs() < 1e-9,
                "grid {gi}@{gd} vs brute {bi}@{bd} at {q:?}"
            );
        }
    }

    #[test]
    fn query_far_outside_bounds() {
        let points = vec![Point::new(0.0, 0.0), Point::new(100.0, 100.0)];
        let g = GridIndex::new(points, 25.0);
        let (i, d) = g.nearest(Point::new(-500.0, -500.0)).unwrap();
        assert_eq!(i, 0);
        assert!((d - (500.0_f64 * 500.0 * 2.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn coincident_points() {
        let points = vec![Point::new(1.0, 1.0); 5];
        let g = GridIndex::new(points, 1.0);
        let (_, d) = g.nearest(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_zero_cell() {
        let _ = GridIndex::new(vec![Point::new(0.0, 0.0)], 0.0);
    }
}
