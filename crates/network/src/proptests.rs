//! Property-based tests: randomly generated miniature datasets must
//! validate, round-trip through CSV byte-identically, and keep their
//! aggregate invariants.

#![cfg(test)]

use crate::attributes::{Coating, Material};
use crate::csvio::{read_dataset, write_dataset};
use crate::dataset::{Dataset, Pipe, Segment};
use crate::failure::{FailureKind, FailureRecord};
use crate::geometry::{Point, Polyline};
use crate::ids::{PipeId, RegionId, SegmentId};
use crate::soil::{
    SoilCorrosiveness, SoilExpansiveness, SoilGeology, SoilLandscape, SoilProfile,
};
use crate::split::ObservationWindow;
use proptest::prelude::*;

/// Blueprint for one random pipe: (material idx, coating idx, diameter,
/// laid year, segment lengths).
type PipeSpec = (usize, usize, f64, i32, Vec<f64>);

fn pipe_spec() -> impl Strategy<Value = PipeSpec> {
    (
        0..Material::ALL.len(),
        0..Coating::ALL.len(),
        80.0f64..800.0,
        1900..1998i32,
        proptest::collection::vec(20.0f64..300.0, 1..4),
    )
}

fn soil_profile(seed: usize) -> SoilProfile {
    SoilProfile {
        corrosiveness: SoilCorrosiveness::ALL[seed % SoilCorrosiveness::ALL.len()],
        expansiveness: SoilExpansiveness::ALL[(seed / 3) % SoilExpansiveness::ALL.len()],
        geology: SoilGeology::ALL[(seed / 7) % SoilGeology::ALL.len()],
        landscape: SoilLandscape::ALL[(seed / 11) % SoilLandscape::ALL.len()],
    }
}

/// Assemble a valid dataset from pipe specs plus failure picks
/// (segment-index, year-offset) modulo the real ranges.
fn build_dataset(specs: Vec<PipeSpec>, failure_picks: Vec<(usize, usize)>) -> Dataset {
    let window = ObservationWindow::new(1998, 2009);
    let mut pipes = Vec::new();
    let mut segments = Vec::new();
    for (pi, (mi, ci, diameter, laid, seg_lens)) in specs.into_iter().enumerate() {
        let mut seg_ids = Vec::new();
        let mut x0 = 0.0;
        for len in seg_lens {
            let sid = SegmentId(segments.len() as u32);
            segments.push(Segment {
                id: sid,
                pipe: PipeId(pi as u32),
                geometry: Polyline::line(
                    Point::new(x0, pi as f64 * 10.0),
                    Point::new(x0 + len, pi as f64 * 10.0),
                ),
                soil: soil_profile(segments.len()),
                dist_to_intersection_m: 10.0 + (segments.len() as f64 * 37.0) % 900.0,
                tree_canopy: (segments.len() as f64 * 0.13) % 1.0,
                soil_moisture: (segments.len() as f64 * 0.29) % 1.0,
            });
            seg_ids.push(sid);
            x0 += len;
        }
        pipes.push(Pipe {
            id: PipeId(pi as u32),
            region: RegionId(0),
            material: Material::ALL[mi],
            coating: Coating::ALL[ci],
            diameter_mm: diameter,
            laid_year: laid,
            segments: seg_ids,
        });
    }
    let failures: Vec<FailureRecord> = failure_picks
        .into_iter()
        .map(|(si, yo)| {
            let seg = &segments[si % segments.len()];
            FailureRecord::new(
                seg.id,
                seg.pipe,
                window.start + (yo % window.years() as usize) as i32,
                if yo % 2 == 0 { FailureKind::Break } else { FailureKind::Choke },
            )
        })
        .collect();
    Dataset::new("proptest", RegionId(0), window, pipes, segments, failures)
        .expect("constructed dataset is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every randomly assembled dataset survives the CSV round trip
    /// exactly.
    #[test]
    fn csv_roundtrip_random_datasets(
        specs in proptest::collection::vec(pipe_spec(), 1..6),
        picks in proptest::collection::vec((0usize..100, 0usize..100), 0..8),
        tag in 0u32..1_000_000,
    ) {
        let ds = build_dataset(specs, picks);
        let dir = std::env::temp_dir().join(format!(
            "pipefail_prop_{}_{}",
            std::process::id(),
            tag
        ));
        write_dataset(&ds, &dir).expect("write");
        let back = read_dataset(&dir).expect("read");
        prop_assert_eq!(back.pipes(), ds.pipes());
        prop_assert_eq!(back.segments(), ds.segments());
        prop_assert_eq!(back.failures(), ds.failures());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Segment statistics conserve totals: failure-years never exceed
    /// exposure, and exposure never exceeds the window length.
    #[test]
    fn segment_stats_invariants(
        specs in proptest::collection::vec(pipe_spec(), 1..6),
        picks in proptest::collection::vec((0usize..100, 0usize..100), 0..12),
    ) {
        let ds = build_dataset(specs, picks);
        let w = ds.observation();
        for st in ds.segment_stats(w) {
            prop_assert!(st.failure_years <= st.exposure_years);
            prop_assert!(st.exposure_years <= w.years().max(st.failure_years));
            prop_assert_eq!(st.clean_years(), st.exposure_years - st.failure_years);
        }
    }

    /// Total length equals the sum over classes, and per-pipe lengths sum
    /// to the total.
    #[test]
    fn length_accounting(
        specs in proptest::collection::vec(pipe_spec(), 1..6),
    ) {
        let ds = build_dataset(specs, vec![]);
        let total = ds.total_length_m(None);
        let by_class = ds.total_length_m(Some(crate::attributes::PipeClass::Critical))
            + ds.total_length_m(Some(crate::attributes::PipeClass::Reticulation));
        prop_assert!((total - by_class).abs() < 1e-6);
        let by_pipe: f64 = ds.pipes().iter().map(|p| ds.pipe_length_m(p.id)).sum();
        prop_assert!((total - by_pipe).abs() < 1e-6);
    }

    /// Pipe failure counts over the full window equal the record count.
    #[test]
    fn failure_count_conservation(
        specs in proptest::collection::vec(pipe_spec(), 1..6),
        picks in proptest::collection::vec((0usize..100, 0usize..100), 0..12),
    ) {
        let ds = build_dataset(specs, picks);
        let counts = ds.pipe_failure_counts(ds.observation());
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(total as usize, ds.failures().len());
    }
}
