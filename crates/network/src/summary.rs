//! Dataset summaries in the shape of the paper's Table 18.1.

use crate::attributes::PipeClass;
use crate::dataset::Dataset;
use crate::split::ObservationWindow;
use std::fmt::Write as _;

/// One row of Table 18.1: counts for either all pipes or one class.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Region/dataset label.
    pub dataset: String,
    /// "All" or a class code.
    pub scope: String,
    /// Number of pipes in scope.
    pub pipes: usize,
    /// Number of failure records in scope within the observation window.
    pub failures: usize,
    /// Earliest and latest laid year in scope.
    pub laid_years: Option<(i32, i32)>,
    /// The observation window.
    pub observation: ObservationWindow,
}

/// Compute the "All" and "CWM" rows for one dataset (the structure of
/// Table 18.1).
pub fn summarize(ds: &Dataset) -> Vec<SummaryRow> {
    let w = ds.observation();
    let all = SummaryRow {
        dataset: ds.name().to_string(),
        scope: "All".to_string(),
        pipes: ds.pipes().len(),
        failures: ds.failures_in(w, None, None).count(),
        laid_years: ds.laid_year_range(None),
        observation: w,
    };
    let cwm = SummaryRow {
        dataset: ds.name().to_string(),
        scope: PipeClass::Critical.code().to_string(),
        pipes: ds.pipes_of_class(PipeClass::Critical).count(),
        failures: ds.failures_in(w, Some(PipeClass::Critical), None).count(),
        laid_years: ds.laid_year_range(Some(PipeClass::Critical)),
        observation: w,
    };
    vec![all, cwm]
}

/// Render rows as the aligned text table the `table18_1` experiment prints.
pub fn format_table(rows: &[SummaryRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>5} {:>8} {:>10} {:>12} {:>12}",
        "Dataset", "Scope", "#Pipes", "#Failures", "Laid years", "Observed"
    );
    for r in rows {
        let laid = r
            .laid_years
            .map(|(a, b)| format!("{a}-{b}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            s,
            "{:<12} {:>5} {:>8} {:>10} {:>12} {:>12}",
            r.dataset,
            r.scope,
            r.pipes,
            r.failures,
            laid,
            format!("{}-{}", r.observation.start, r.observation.end)
        );
    }
    s
}

/// Fraction helpers the paper quotes under Table 18.1 (share of CWM pipes
/// and of CWM failures).
pub fn cwm_shares(ds: &Dataset) -> (f64, f64) {
    let w = ds.observation();
    let pipes_all = ds.pipes().len().max(1);
    let pipes_cwm = ds.pipes_of_class(PipeClass::Critical).count();
    let fail_all = ds.failures_in(w, None, None).count().max(1);
    let fail_cwm = ds.failures_in(w, Some(PipeClass::Critical), None).count();
    (
        pipes_cwm as f64 / pipes_all as f64,
        fail_cwm as f64 / fail_all as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;

    #[test]
    fn rows_match_fixture() {
        let ds = tiny_dataset();
        let rows = summarize(&ds);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scope, "All");
        assert_eq!(rows[0].pipes, 2);
        assert_eq!(rows[0].failures, 4);
        assert_eq!(rows[1].scope, "CWM");
        assert_eq!(rows[1].pipes, 1);
        assert_eq!(rows[1].failures, 3);
        assert_eq!(rows[1].laid_years, Some((1950, 1950)));
    }

    #[test]
    fn table_formats_all_rows() {
        let ds = tiny_dataset();
        let text = format_table(&summarize(&ds));
        assert!(text.contains("Tiny"));
        assert!(text.contains("CWM"));
        assert!(text.contains("1950-1950"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn shares() {
        let ds = tiny_dataset();
        let (pipe_share, fail_share) = cwm_shares(&ds);
        assert!((pipe_share - 0.5).abs() < 1e-12);
        assert!((fail_share - 0.75).abs() < 1e-12);
    }
}
