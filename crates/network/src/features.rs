//! Feature encoding with domain-knowledge masks.
//!
//! Table 18.2's feature inventory, as code: pipe attributes (coating,
//! diameter, length, laid date, material) and environmental factors (four
//! soil layers, distance to traffic intersection, plus the wastewater layers
//! tree canopy and soil moisture). The encoder produces dense `f64` vectors
//! for the covariate-driven models (Cox, Weibull, RankSVM, and the
//! multiplicative adjustment of HBP/DPMHBP).
//!
//! The paper's central claim — domain knowledge matters — is exercised by
//! [`FeatureMask`]: `without_domain_knowledge` drops every environmental
//! factor the domain experts contributed, leaving only the basic asset
//! attributes a naive model would see.

use crate::attributes::{Coating, Material};
use crate::dataset::{Dataset, Pipe, Segment};
use crate::soil::{SoilCorrosiveness, SoilExpansiveness, SoilGeology, SoilLandscape};

/// Which feature groups the encoder includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    /// Asset attributes: material, coating, diameter, length, age.
    pub pipe_attributes: bool,
    /// The four soil layers.
    pub soil: bool,
    /// Distance to the closest traffic intersection.
    pub traffic: bool,
    /// Tree canopy + soil moisture (wastewater layers).
    pub vegetation: bool,
}

impl FeatureMask {
    /// Everything (the paper's full model).
    pub fn all() -> Self {
        Self {
            pipe_attributes: true,
            soil: true,
            traffic: true,
            vegetation: true,
        }
    }

    /// Only what a model "sees" without domain experts: asset attributes.
    pub fn without_domain_knowledge() -> Self {
        Self {
            pipe_attributes: true,
            soil: false,
            traffic: false,
            vegetation: false,
        }
    }

    /// Drinking-water configuration (no vegetation layers, per Table 18.2).
    pub fn water_mains() -> Self {
        Self {
            pipe_attributes: true,
            soil: true,
            traffic: true,
            vegetation: false,
        }
    }
}

/// One feature's description, for Table 18.2-style inventories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureInfo {
    /// Column name.
    pub name: String,
    /// Feature group ("pipe attribute" or "environmental factor").
    pub group: &'static str,
    /// Categorical (one-hot column) or continuous.
    pub categorical: bool,
}

/// Encodes segments (and pipe aggregates) into standardised feature vectors.
///
/// Continuous columns are z-scored with moments fitted on the dataset it was
/// constructed from; categorical columns are one-hot with the first level
/// dropped (to avoid collinearity in the linear models).
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    mask: FeatureMask,
    schema: Vec<FeatureInfo>,
    means: Vec<f64>,
    stds: Vec<f64>,
    reference_year: i32,
}

impl FeatureEncoder {
    /// Fit an encoder on `dataset`; `reference_year` anchors the age feature
    /// (use the test year so "age" means age at prediction time).
    pub fn fit(dataset: &Dataset, mask: FeatureMask, reference_year: i32) -> Self {
        let mut enc = Self {
            mask,
            schema: Self::build_schema(mask),
            means: Vec::new(),
            stds: Vec::new(),
            reference_year,
        };
        // Fit standardisation moments over all segments.
        let dim = enc.schema.len();
        let mut sums = vec![0.0; dim];
        let mut sqs = vec![0.0; dim];
        let mut n = 0.0;
        for seg in dataset.segments() {
            let raw = enc.raw_segment(dataset, seg);
            for (i, v) in raw.iter().enumerate() {
                sums[i] += v;
                sqs[i] += v * v;
            }
            n += 1.0;
        }
        enc.means = sums.iter().map(|s| if n > 0.0 { s / n } else { 0.0 }).collect();
        enc.stds = sqs
            .iter()
            .zip(&enc.means)
            .map(|(sq, m)| {
                let var = if n > 1.0 { (sq - n * m * m) / (n - 1.0) } else { 0.0 };
                let sd = var.max(0.0).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        // Categorical (0/1) columns are left unscaled.
        for (i, info) in enc.schema.iter().enumerate() {
            if info.categorical {
                enc.means[i] = 0.0;
                enc.stds[i] = 1.0;
            }
        }
        enc
    }

    fn build_schema(mask: FeatureMask) -> Vec<FeatureInfo> {
        let mut schema = Vec::new();
        let cont = |name: &str, group: &'static str, schema: &mut Vec<FeatureInfo>| {
            schema.push(FeatureInfo {
                name: name.to_string(),
                group,
                categorical: false,
            })
        };
        if mask.pipe_attributes {
            cont("diameter_mm", "pipe attribute", &mut schema);
            cont("ln_length_m", "pipe attribute", &mut schema);
            cont("age_years", "pipe attribute", &mut schema);
            for m in Material::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("material={}", m.code()),
                    group: "pipe attribute",
                    categorical: true,
                });
            }
            for c in Coating::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("coating={}", c.code()),
                    group: "pipe attribute",
                    categorical: true,
                });
            }
        }
        if mask.soil {
            for s in SoilCorrosiveness::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("soil_corrosiveness={}", s.code()),
                    group: "environmental factor",
                    categorical: true,
                });
            }
            for s in SoilExpansiveness::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("soil_expansiveness={}", s.code()),
                    group: "environmental factor",
                    categorical: true,
                });
            }
            for s in SoilGeology::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("soil_geology={}", s.code()),
                    group: "environmental factor",
                    categorical: true,
                });
            }
            for s in SoilLandscape::ALL.iter().skip(1) {
                schema.push(FeatureInfo {
                    name: format!("soil_map={}", s.code()),
                    group: "environmental factor",
                    categorical: true,
                });
            }
        }
        if mask.traffic {
            cont("dist_to_intersection_m", "environmental factor", &mut schema);
        }
        if mask.vegetation {
            cont("tree_canopy", "environmental factor", &mut schema);
            cont("soil_moisture", "environmental factor", &mut schema);
        }
        schema
    }

    /// Number of encoded columns.
    pub fn dim(&self) -> usize {
        self.schema.len()
    }

    /// Column descriptions.
    pub fn schema(&self) -> &[FeatureInfo] {
        &self.schema
    }

    /// The mask this encoder was built with.
    pub fn mask(&self) -> FeatureMask {
        self.mask
    }

    fn raw_segment(&self, ds: &Dataset, seg: &Segment) -> Vec<f64> {
        let pipe = ds.pipe(seg.pipe);
        let mut out = Vec::with_capacity(self.schema.len());
        if self.mask.pipe_attributes {
            out.push(pipe.diameter_mm);
            out.push(seg.length_m().max(1e-9).ln());
            out.push(pipe.age_in(self.reference_year));
            for m in Material::ALL.iter().skip(1) {
                out.push(f64::from(pipe.material == *m));
            }
            for c in Coating::ALL.iter().skip(1) {
                out.push(f64::from(pipe.coating == *c));
            }
        }
        if self.mask.soil {
            for s in SoilCorrosiveness::ALL.iter().skip(1) {
                out.push(f64::from(seg.soil.corrosiveness == *s));
            }
            for s in SoilExpansiveness::ALL.iter().skip(1) {
                out.push(f64::from(seg.soil.expansiveness == *s));
            }
            for s in SoilGeology::ALL.iter().skip(1) {
                out.push(f64::from(seg.soil.geology == *s));
            }
            for s in SoilLandscape::ALL.iter().skip(1) {
                out.push(f64::from(seg.soil.landscape == *s));
            }
        }
        if self.mask.traffic {
            out.push(seg.dist_to_intersection_m);
        }
        if self.mask.vegetation {
            out.push(seg.tree_canopy);
            out.push(seg.soil_moisture);
        }
        out
    }

    /// Standardised feature vector for one segment.
    pub fn encode_segment(&self, ds: &Dataset, seg: &Segment) -> Vec<f64> {
        let mut raw = self.raw_segment(ds, seg);
        for (i, v) in raw.iter_mut().enumerate() {
            *v = (*v - self.means[i]) / self.stds[i];
        }
        raw
    }

    /// Standardised feature vector for a pipe: the length-weighted mean of
    /// its segments' vectors (so pipe-level models see the same covariates).
    pub fn encode_pipe(&self, ds: &Dataset, pipe: &Pipe) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim()];
        let mut total_len = 0.0;
        for &sid in &pipe.segments {
            let seg = ds.segment(sid);
            let w = seg.length_m();
            let v = self.encode_segment(ds, seg);
            for (a, x) in acc.iter_mut().zip(v) {
                *a += w * x;
            }
            total_len += w;
        }
        if total_len > 0.0 {
            for a in &mut acc {
                *a /= total_len;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;

    #[test]
    fn schema_respects_masks() {
        let ds = tiny_dataset();
        let full = FeatureEncoder::fit(&ds, FeatureMask::all(), 2009);
        let bare = FeatureEncoder::fit(&ds, FeatureMask::without_domain_knowledge(), 2009);
        let water = FeatureEncoder::fit(&ds, FeatureMask::water_mains(), 2009);
        assert!(full.dim() > water.dim());
        assert!(water.dim() > bare.dim());
        assert!(bare
            .schema()
            .iter()
            .all(|f| f.group == "pipe attribute"));
        assert!(full
            .schema()
            .iter()
            .any(|f| f.group == "environmental factor"));
    }

    #[test]
    fn encoding_dimension_matches_schema() {
        let ds = tiny_dataset();
        let enc = FeatureEncoder::fit(&ds, FeatureMask::all(), 2009);
        for seg in ds.segments() {
            assert_eq!(enc.encode_segment(&ds, seg).len(), enc.dim());
        }
        for pipe in ds.pipes() {
            assert_eq!(enc.encode_pipe(&ds, pipe).len(), enc.dim());
        }
    }

    #[test]
    fn continuous_columns_are_standardised() {
        let ds = tiny_dataset();
        let enc = FeatureEncoder::fit(&ds, FeatureMask::all(), 2009);
        // Mean of each continuous column over segments should be ~0.
        let dim = enc.dim();
        let mut sums = vec![0.0; dim];
        for seg in ds.segments() {
            for (i, v) in enc.encode_segment(&ds, seg).iter().enumerate() {
                sums[i] += v;
            }
        }
        for (i, info) in enc.schema().iter().enumerate() {
            if !info.categorical {
                let m = sums[i] / ds.segments().len() as f64;
                assert!(m.abs() < 1e-9, "column {} mean {m}", info.name);
            }
        }
    }

    #[test]
    fn one_hot_values_are_binary() {
        let ds = tiny_dataset();
        let enc = FeatureEncoder::fit(&ds, FeatureMask::all(), 2009);
        for seg in ds.segments() {
            for (i, v) in enc.encode_segment(&ds, seg).iter().enumerate() {
                if enc.schema()[i].categorical {
                    assert!(*v == 0.0 || *v == 1.0);
                }
            }
        }
    }

    #[test]
    fn pipe_encoding_is_length_weighted() {
        let ds = tiny_dataset();
        let enc = FeatureEncoder::fit(&ds, FeatureMask::all(), 2009);
        let pipe = &ds.pipes()[0];
        let v = enc.encode_pipe(&ds, pipe);
        // Pipe 0 has two segments with identical categorical attributes; the
        // weighted mean of identical one-hots is the one-hot itself.
        let s0 = enc.encode_segment(&ds, ds.segment(pipe.segments[0]));
        for (i, info) in enc.schema().iter().enumerate() {
            if info.categorical {
                assert!((v[i] - s0[i]).abs() < 1e-12);
            }
        }
    }
}
