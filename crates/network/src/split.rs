//! Temporal observation windows and the train/test protocol.
//!
//! The paper trains on failure records from 1998–2008 and tests on 2009
//! ("the first 11 years' failure records as training data and the last
//! year's failure records as testing data"). [`TrainTestSplit::paper_protocol`]
//! encodes exactly that split; everything else in the workspace takes the
//! split as a value so ablations can move the boundary.



/// An inclusive range of calendar years.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservationWindow {
    /// First year (inclusive).
    pub start: i32,
    /// Last year (inclusive).
    pub end: i32,
}

impl ObservationWindow {
    /// Create a window; panics if `end < start`.
    pub fn new(start: i32, end: i32) -> Self {
        assert!(end >= start, "window end {end} before start {start}");
        Self { start, end }
    }

    /// Number of years covered.
    pub fn years(&self) -> u32 {
        (self.end - self.start + 1) as u32
    }

    /// True when `year` falls inside the window.
    pub fn contains(&self, year: i32) -> bool {
        year >= self.start && year <= self.end
    }

    /// Iterate the years.
    pub fn iter(&self) -> impl Iterator<Item = i32> {
        self.start..=self.end
    }
}

/// A train/test split by calendar year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Years whose failures are visible to the models.
    pub train: ObservationWindow,
    /// Years whose failures are the prediction target.
    pub test: ObservationWindow,
}

impl TrainTestSplit {
    /// Create a split; panics if the windows overlap or test precedes train.
    pub fn new(train: ObservationWindow, test: ObservationWindow) -> Self {
        assert!(
            test.start > train.end,
            "test window must start after the training window ends"
        );
        Self { train, test }
    }

    /// The paper's protocol: train on 1998–2008, test on 2009.
    pub fn paper_protocol() -> Self {
        Self::new(ObservationWindow::new(1998, 2008), ObservationWindow::new(2009, 2009))
    }

    /// The full observation period (train start to test end).
    pub fn full_window(&self) -> ObservationWindow {
        ObservationWindow::new(self.train.start, self.test.end)
    }

    /// The year for which predictions are scored (= test start; the paper's
    /// test window is a single year).
    pub fn prediction_year(&self) -> i32 {
        self.test.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_basics() {
        let w = ObservationWindow::new(1998, 2009);
        assert_eq!(w.years(), 12);
        assert!(w.contains(1998));
        assert!(w.contains(2009));
        assert!(!w.contains(2010));
        assert_eq!(w.iter().count(), 12);
    }

    #[test]
    #[should_panic(expected = "window end")]
    fn rejects_inverted_window() {
        let _ = ObservationWindow::new(2009, 1998);
    }

    #[test]
    fn paper_protocol_matches_chapter() {
        let s = TrainTestSplit::paper_protocol();
        assert_eq!(s.train.years(), 11);
        assert_eq!(s.test.years(), 1);
        assert_eq!(s.prediction_year(), 2009);
        assert_eq!(s.full_window().years(), 12);
    }

    #[test]
    #[should_panic(expected = "test window must start after")]
    fn rejects_overlapping_split() {
        let _ = TrainTestSplit::new(
            ObservationWindow::new(1998, 2008),
            ObservationWindow::new(2008, 2009),
        );
    }
}
