//! # pipefail-network
//!
//! The pipe-network data model: the substrate every model and experiment in
//! the workspace runs on.
//!
//! A water utility's asset register is, for modelling purposes, four linked
//! tables — pipes, pipe segments (pipes are segments connected in series),
//! failure work-orders matched to segments, and environmental layers sampled
//! at segment locations. This crate provides exactly that, with:
//!
//! * strongly-typed identifiers ([`ids`]) so pipe/segment indices can't be
//!   confused,
//! * planar geometry ([`geometry`]) for polyline lengths and distances,
//! * asset attributes and environmental factors ([`attributes`], [`soil`]) —
//!   the features of Table 18.2,
//! * failure records with per-segment, per-year granularity ([`failure`]),
//! * the assembled [`dataset::Dataset`] with validation and indexing,
//! * temporal train/test splitting ([`split`]) matching the paper's
//!   1998–2008-train / 2009-test protocol,
//! * a uniform-grid spatial index ([`spatial`]) for distance-to-intersection
//!   features,
//! * feature-vector encoding with domain-knowledge masks ([`features`]),
//! * CSV import/export ([`csvio`]) and Table 18.1-style summaries
//!   ([`summary`]).

pub mod attributes;
pub mod csvio;
pub mod dataset;
pub mod failure;
pub mod features;
pub mod geometry;
pub mod ids;
#[cfg(test)]
mod proptests;
pub mod soil;
pub mod spatial;
pub mod split;
pub mod summary;

pub use attributes::{Coating, Material, PipeClass};
pub use dataset::{Dataset, Pipe, Segment};
pub use failure::{FailureKind, FailureRecord};
pub use ids::{PipeId, RegionId, SegmentId};
pub use soil::SoilProfile;
pub use split::{ObservationWindow, TrainTestSplit};

/// Errors raised by the data model.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A record referenced an id that does not exist in the dataset.
    DanglingReference(String),
    /// A structural invariant was violated (duplicate ids, empty pipe, …).
    Invalid(String),
    /// CSV parsing failed.
    Parse(String),
    /// I/O failure while reading or writing files.
    Io(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::DanglingReference(s) => write!(f, "dangling reference: {s}"),
            NetworkError::Invalid(s) => write!(f, "invalid dataset: {s}"),
            NetworkError::Parse(s) => write!(f, "parse error: {s}"),
            NetworkError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<std::io::Error> for NetworkError {
    fn from(e: std::io::Error) -> Self {
        NetworkError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetworkError>;
