//! Planar geometry for pipe layouts.
//!
//! Utility GIS data is projected into metres; a flat 2-D plane is exact
//! enough at local-government-area scale. Pipes are polylines; the geometry
//! here supports lengths, midpoints, point-to-segment distances (for the
//! distance-to-traffic-intersection feature) and bounding boxes (for the SVG
//! map renderers).



/// A point in projected metre coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Easting (m).
    pub x: f64,
    /// Northing (m).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint of the segment from `self` to `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Bounds {
    /// The empty bounds (inverted; grows on the first `expand`).
    pub fn empty() -> Self {
        Self {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Grow to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width (0 if empty).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (0 if empty).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// True when no point has been added.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// True when `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// A polyline: an ordered sequence of at least two points.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Build from points; requires at least two.
    pub fn new(points: Vec<Point>) -> Option<Self> {
        if points.len() < 2 {
            None
        } else {
            Some(Self { points })
        }
    }

    /// A two-point line.
    pub fn line(a: Point, b: Point) -> Self {
        Self { points: vec![a, b] }
    }

    /// The vertices.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First vertex.
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point {
        *self.points.last().expect(">= 2 points")
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum()
    }

    /// Point at arc-length fraction `t ∈ [0, 1]` along the polyline.
    pub fn point_at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        let target = t * self.length();
        let mut walked = 0.0;
        for w in self.points.windows(2) {
            let seg = w[0].distance(&w[1]);
            if walked + seg >= target && seg > 0.0 {
                let f = (target - walked) / seg;
                return Point::new(
                    w[0].x + f * (w[1].x - w[0].x),
                    w[0].y + f * (w[1].y - w[0].y),
                );
            }
            walked += seg;
        }
        self.end()
    }

    /// Midpoint by arc length.
    pub fn midpoint(&self) -> Point {
        self.point_at(0.5)
    }

    /// Minimum distance from `p` to any point on the polyline.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.points
            .windows(2)
            .map(|w| point_segment_distance(p, w[0], w[1]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Bounding box of the vertices.
    pub fn bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for &p in &self.points {
            b.expand(p);
        }
        b
    }
}

/// Distance from point `p` to the closed segment `ab`.
pub fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    if len2 == 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0);
    let proj = Point::new(a.x + t * abx, a.y + t * aby);
    p.distance(&proj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(1.5, 2.0));
    }

    #[test]
    fn polyline_requires_two_points() {
        assert!(Polyline::new(vec![]).is_none());
        assert!(Polyline::new(vec![Point::new(0.0, 0.0)]).is_none());
        assert!(Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).is_some());
    }

    #[test]
    fn length_and_point_at() {
        // L-shaped line: (0,0) → (10,0) → (10,10); length 20
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
        .unwrap();
        assert!((pl.length() - 20.0).abs() < 1e-12);
        assert_eq!(pl.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at(1.0), Point::new(10.0, 10.0));
        // Midpoint at arc length 10 is the corner.
        assert_eq!(pl.midpoint(), Point::new(10.0, 0.0));
        // Quarter point at arc length 5.
        assert_eq!(pl.point_at(0.25), Point::new(5.0, 0.0));
    }

    #[test]
    fn segment_distance_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // perpendicular foot inside the segment
        assert!((point_segment_distance(Point::new(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        // beyond the ends: distance to the endpoint
        assert!((point_segment_distance(Point::new(-4.0, 3.0), a, b) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(Point::new(13.0, 4.0), a, b) - 5.0).abs() < 1e-12);
        // degenerate segment
        assert!((point_segment_distance(Point::new(1.0, 1.0), a, a) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn polyline_distance_to_point() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
        .unwrap();
        assert!((pl.distance_to_point(Point::new(12.0, 5.0)) - 2.0).abs() < 1e-12);
        assert!((pl.distance_to_point(Point::new(5.0, -1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_expand_and_contain() {
        let mut b = Bounds::empty();
        assert!(b.is_empty());
        b.expand(Point::new(1.0, 2.0));
        b.expand(Point::new(-1.0, 5.0));
        assert!(!b.is_empty());
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 3.0);
        assert!(b.contains(Point::new(0.0, 3.0)));
        assert!(!b.contains(Point::new(2.0, 3.0)));
    }
}
