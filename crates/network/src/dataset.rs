//! The assembled dataset: pipes, segments, failures and the observation
//! window, with validation and the aggregate views the models consume.

use crate::attributes::{Coating, Material, PipeClass};
use crate::failure::{FailureKind, FailureRecord};
use crate::geometry::{Bounds, Polyline};
use crate::ids::{PipeId, RegionId, SegmentId};
use crate::soil::SoilProfile;
use crate::split::ObservationWindow;
use crate::{NetworkError, Result};


/// A pipe: an asset-register row owning a series of segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipe {
    /// Dense identifier (index into [`Dataset::pipes`]).
    pub id: PipeId,
    /// Region the pipe belongs to.
    pub region: RegionId,
    /// Pipe material.
    pub material: Material,
    /// Protective coating.
    pub coating: Coating,
    /// Nominal diameter in millimetres.
    pub diameter_mm: f64,
    /// Year the pipe was laid.
    pub laid_year: i32,
    /// The segments composing the pipe, in series order.
    pub segments: Vec<SegmentId>,
}

impl Pipe {
    /// CWM/RWM classification by diameter.
    pub fn class(&self) -> PipeClass {
        PipeClass::from_diameter(self.diameter_mm)
    }

    /// Age in years at the start of `year` (clamped at 0 for not-yet-laid).
    pub fn age_in(&self, year: i32) -> f64 {
        (year - self.laid_year).max(0) as f64
    }
}

/// A pipe segment: the unit at which failures are recorded and at which the
/// DPMHBP models failure probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Dense identifier (index into [`Dataset::segments`]).
    pub id: SegmentId,
    /// Owning pipe.
    pub pipe: PipeId,
    /// Planar geometry.
    pub geometry: Polyline,
    /// Soil layers sampled at the segment midpoint.
    pub soil: SoilProfile,
    /// Distance to the closest traffic intersection (metres).
    pub dist_to_intersection_m: f64,
    /// Tree-canopy cover fraction over the segment, in [0, 1]
    /// (wastewater-relevant; 0 where the layer is not available).
    pub tree_canopy: f64,
    /// Soil-moisture index in [0, 1] (wastewater-relevant).
    pub soil_moisture: f64,
}

impl Segment {
    /// Segment length in metres.
    pub fn length_m(&self) -> f64 {
        self.geometry.length()
    }
}

/// Per-segment sufficient statistics over an observation window.
///
/// The failure matrices of Fig. 18.3 are extremely sparse, so inference never
/// materialises them; a segment's Bernoulli-process likelihood over a window
/// depends only on (failure-years, exposure-years).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Number of years in the window with at least one recorded failure.
    pub failure_years: u32,
    /// Number of years the segment was in service during the window.
    pub exposure_years: u32,
}

impl SegmentStats {
    /// Years without failure.
    pub fn clean_years(&self) -> u32 {
        self.exposure_years.saturating_sub(self.failure_years)
    }
}

/// A complete region dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    region: RegionId,
    observation: ObservationWindow,
    pipes: Vec<Pipe>,
    segments: Vec<Segment>,
    failures: Vec<FailureRecord>,
}

impl Dataset {
    /// Assemble and validate a dataset.
    ///
    /// Invariants enforced:
    /// * pipe and segment ids equal their indices (dense);
    /// * every segment's owning pipe exists and lists it;
    /// * every pipe owns at least one segment, all existing;
    /// * every failure references an existing segment and its correct pipe;
    /// * failure years fall within the observation window.
    pub fn new(
        name: impl Into<String>,
        region: RegionId,
        observation: ObservationWindow,
        pipes: Vec<Pipe>,
        segments: Vec<Segment>,
        failures: Vec<FailureRecord>,
    ) -> Result<Self> {
        let ds = Self {
            name: name.into(),
            region,
            observation,
            pipes,
            segments,
            failures,
        };
        ds.validate()?;
        Ok(ds)
    }

    fn validate(&self) -> Result<()> {
        for (i, p) in self.pipes.iter().enumerate() {
            if p.id.index() != i {
                return Err(NetworkError::Invalid(format!(
                    "pipe at index {i} has id {}",
                    p.id
                )));
            }
            if p.segments.is_empty() {
                return Err(NetworkError::Invalid(format!("pipe {} has no segments", p.id)));
            }
            for &sid in &p.segments {
                let seg = self
                    .segments
                    .get(sid.index())
                    .ok_or_else(|| NetworkError::DanglingReference(format!(
                        "pipe {} lists missing segment {sid}",
                        p.id
                    )))?;
                if seg.pipe != p.id {
                    return Err(NetworkError::Invalid(format!(
                        "segment {sid} owned by {} but listed by pipe {}",
                        seg.pipe, p.id
                    )));
                }
            }
        }
        for (i, s) in self.segments.iter().enumerate() {
            if s.id.index() != i {
                return Err(NetworkError::Invalid(format!(
                    "segment at index {i} has id {}",
                    s.id
                )));
            }
            let pipe = self
                .pipes
                .get(s.pipe.index())
                .ok_or_else(|| NetworkError::DanglingReference(format!(
                    "segment {} references missing pipe {}",
                    s.id, s.pipe
                )))?;
            if !pipe.segments.contains(&s.id) {
                return Err(NetworkError::Invalid(format!(
                    "segment {} not listed by its pipe {}",
                    s.id, s.pipe
                )));
            }
        }
        for f in &self.failures {
            let seg = self
                .segments
                .get(f.segment.index())
                .ok_or_else(|| NetworkError::DanglingReference(format!(
                    "failure references missing segment {}",
                    f.segment
                )))?;
            if seg.pipe != f.pipe {
                return Err(NetworkError::Invalid(format!(
                    "failure on segment {} names pipe {} but segment belongs to {}",
                    f.segment, f.pipe, seg.pipe
                )));
            }
            if !self.observation.contains(f.year) {
                return Err(NetworkError::Invalid(format!(
                    "failure year {} outside observation window {:?}",
                    f.year, self.observation
                )));
            }
        }
        Ok(())
    }

    /// Dataset display name (e.g. "Region A").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Region id.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The period failures were recorded over.
    pub fn observation(&self) -> ObservationWindow {
        self.observation
    }

    /// All pipes, indexed by `PipeId`.
    pub fn pipes(&self) -> &[Pipe] {
        &self.pipes
    }

    /// All segments, indexed by `SegmentId`.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All failure records.
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Pipe by id.
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[id.index()]
    }

    /// Segment by id.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// Pipes of one class.
    pub fn pipes_of_class(&self, class: PipeClass) -> impl Iterator<Item = &Pipe> {
        self.pipes.iter().filter(move |p| p.class() == class)
    }

    /// Failures of pipes of one class within a window (by kind if given).
    pub fn failures_in(
        &self,
        window: ObservationWindow,
        class: Option<PipeClass>,
        kind: Option<FailureKind>,
    ) -> impl Iterator<Item = &FailureRecord> {
        self.failures.iter().filter(move |f| {
            window.contains(f.year)
                && kind.is_none_or(|k| f.kind == k)
                && class.is_none_or(|c| self.pipe(f.pipe).class() == c)
        })
    }

    /// Total pipe length in metres (optionally restricted to one class).
    pub fn total_length_m(&self, class: Option<PipeClass>) -> f64 {
        self.pipes
            .iter()
            .filter(|p| class.is_none_or(|c| p.class() == c))
            .flat_map(|p| p.segments.iter())
            .map(|&sid| self.segment(sid).length_m())
            .sum()
    }

    /// Length of one pipe in metres.
    pub fn pipe_length_m(&self, id: PipeId) -> f64 {
        self.pipe(id)
            .segments
            .iter()
            .map(|&sid| self.segment(sid).length_m())
            .sum()
    }

    /// Per-segment sufficient statistics over `window`.
    ///
    /// Exposure starts the year after the pipe is laid (a pipe laid mid-1990
    /// is exposed from 1991); multiple failures of a segment within one year
    /// collapse to a single failure-year, matching the Bernoulli-process view
    /// ("it is very rare for a segment to fail twice in a year").
    pub fn segment_stats(&self, window: ObservationWindow) -> Vec<SegmentStats> {
        let mut stats = vec![SegmentStats::default(); self.segments.len()];
        for seg in &self.segments {
            let laid = self.pipe(seg.pipe).laid_year;
            let first = window.start.max(laid + 1);
            if first <= window.end {
                stats[seg.id.index()].exposure_years = (window.end - first + 1) as u32;
            }
        }
        // Collect distinct (segment, year) failure pairs.
        let mut pairs: Vec<(SegmentId, i32)> = self
            .failures
            .iter()
            .filter(|f| window.contains(f.year))
            .map(|f| (f.segment, f.year))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for (sid, _) in pairs {
            let st = &mut stats[sid.index()];
            // Defensive: a failure recorded before exposure begins still
            // counts as one observed year.
            st.failure_years += 1;
            if st.failure_years > st.exposure_years {
                st.exposure_years = st.failure_years;
            }
        }
        stats
    }

    /// Per-pipe boolean label: did the pipe fail in `window`?
    pub fn pipe_failed_in(&self, window: ObservationWindow) -> Vec<bool> {
        let mut out = vec![false; self.pipes.len()];
        for f in &self.failures {
            if window.contains(f.year) {
                out[f.pipe.index()] = true;
            }
        }
        out
    }

    /// Per-pipe failure counts in `window`.
    pub fn pipe_failure_counts(&self, window: ObservationWindow) -> Vec<u32> {
        let mut out = vec![0u32; self.pipes.len()];
        for f in &self.failures {
            if window.contains(f.year) {
                out[f.pipe.index()] += 1;
            }
        }
        out
    }

    /// Bounding box of all segment geometry.
    pub fn bounds(&self) -> Bounds {
        let mut b = Bounds::empty();
        for s in &self.segments {
            for &p in s.geometry.points() {
                b.expand(p);
            }
        }
        b
    }

    /// Earliest and latest laid years, optionally for one class.
    pub fn laid_year_range(&self, class: Option<PipeClass>) -> Option<(i32, i32)> {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for p in &self.pipes {
            if class.is_none_or(|c| p.class() == c) {
                lo = lo.min(p.laid_year);
                hi = hi.max(p.laid_year);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }
}

/// Tiny hand-built datasets for unit tests — public so downstream crates'
/// tests (metrics, detection curves, renderers) can share them instead of
/// generating worlds.
pub mod test_helpers {
    use super::*;
    use crate::attributes::{Coating, Material};
    use crate::geometry::{Point, Polyline};

    /// Three single-segment CWM pipes with lengths 100/200/300 m; pipe 0
    /// fails in 2009 (the test year) and pipe 2 fails in 2000 (training).
    pub fn three_pipe_dataset() -> Dataset {
        let mk_pipe = |id: u32| Pipe {
            id: PipeId(id),
            region: RegionId(0),
            material: Material::Cicl,
            coating: Coating::None,
            diameter_mm: 450.0,
            laid_year: 1950,
            segments: vec![SegmentId(id)],
        };
        let mk_seg = |id: u32, len: f64| Segment {
            id: SegmentId(id),
            pipe: PipeId(id),
            geometry: Polyline::line(
                Point::new(0.0, id as f64 * 50.0),
                Point::new(len, id as f64 * 50.0),
            ),
            soil: SoilProfile::benign(),
            dist_to_intersection_m: 100.0,
            tree_canopy: 0.0,
            soil_moisture: 0.2,
        };
        Dataset::new(
            "ThreePipes",
            RegionId(0),
            ObservationWindow::new(1998, 2009),
            vec![mk_pipe(0), mk_pipe(1), mk_pipe(2)],
            vec![mk_seg(0, 100.0), mk_seg(1, 200.0), mk_seg(2, 300.0)],
            vec![
                FailureRecord::new(SegmentId(0), PipeId(0), 2009, FailureKind::Break),
                FailureRecord::new(SegmentId(2), PipeId(2), 2000, FailureKind::Break),
            ],
        )
        .expect("fixture is valid")
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use crate::geometry::Point;

    /// A tiny two-pipe dataset used across the crate's unit tests.
    ///
    /// Pipe 0 (CWM, CICL, laid 1950): segments 0, 1 along y = 0.
    /// Pipe 1 (RWM, PVC, laid 1980): segment 2 along y = 100.
    /// Failures: segment 0 in 2000 and 2005 (+ a duplicate in 2005),
    ///           segment 2 in 2009.
    pub fn tiny_dataset() -> Dataset {
        let pipes = vec![
            Pipe {
                id: PipeId(0),
                region: RegionId(0),
                material: Material::Cicl,
                coating: Coating::None,
                diameter_mm: 450.0,
                laid_year: 1950,
                segments: vec![SegmentId(0), SegmentId(1)],
            },
            Pipe {
                id: PipeId(1),
                region: RegionId(0),
                material: Material::Pvc,
                coating: Coating::None,
                diameter_mm: 100.0,
                laid_year: 1980,
                segments: vec![SegmentId(2)],
            },
        ];
        let seg = |id: u32, pipe: u32, x0: f64, x1: f64, y: f64| Segment {
            id: SegmentId(id),
            pipe: PipeId(pipe),
            geometry: Polyline::line(Point::new(x0, y), Point::new(x1, y)),
            soil: SoilProfile::benign(),
            dist_to_intersection_m: 50.0,
            tree_canopy: 0.0,
            soil_moisture: 0.2,
        };
        let segments = vec![
            seg(0, 0, 0.0, 100.0, 0.0),
            seg(1, 0, 100.0, 250.0, 0.0),
            seg(2, 1, 0.0, 80.0, 100.0),
        ];
        let failures = vec![
            FailureRecord::new(SegmentId(0), PipeId(0), 2000, FailureKind::Break),
            FailureRecord::new(SegmentId(0), PipeId(0), 2005, FailureKind::Break),
            FailureRecord::new(SegmentId(0), PipeId(0), 2005, FailureKind::Break),
            FailureRecord::new(SegmentId(2), PipeId(1), 2009, FailureKind::Break),
        ];
        Dataset::new(
            "Tiny",
            RegionId(0),
            ObservationWindow::new(1998, 2009),
            pipes,
            segments,
            failures,
        )
        .expect("fixture is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny_dataset;
    use super::*;
    use crate::geometry::Point;

    #[test]
    fn fixture_validates_and_indexes() {
        let ds = tiny_dataset();
        assert_eq!(ds.pipes().len(), 2);
        assert_eq!(ds.segments().len(), 3);
        assert_eq!(ds.failures().len(), 4);
        assert_eq!(ds.pipe(PipeId(0)).class(), PipeClass::Critical);
        assert_eq!(ds.pipe(PipeId(1)).class(), PipeClass::Reticulation);
        assert_eq!(ds.pipes_of_class(PipeClass::Critical).count(), 1);
    }

    #[test]
    fn lengths() {
        let ds = tiny_dataset();
        assert!((ds.pipe_length_m(PipeId(0)) - 250.0).abs() < 1e-9);
        assert!((ds.total_length_m(None) - 330.0).abs() < 1e-9);
        assert!((ds.total_length_m(Some(PipeClass::Critical)) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn segment_stats_collapse_same_year_failures() {
        let ds = tiny_dataset();
        let stats = ds.segment_stats(ObservationWindow::new(1998, 2008));
        // Segment 0: failures in 2000 and 2005 (duplicate 2005 collapses) → 2.
        assert_eq!(stats[0].failure_years, 2);
        assert_eq!(stats[0].exposure_years, 11);
        assert_eq!(stats[0].clean_years(), 9);
        // Segment 2's failure is in 2009, outside the window.
        assert_eq!(stats[2].failure_years, 0);
        assert_eq!(stats[2].exposure_years, 11);
    }

    #[test]
    fn exposure_starts_after_laid_year() {
        let ds = tiny_dataset();
        // Window starting before pipe 1's laid year (1980).
        let stats = ds.segment_stats(ObservationWindow::new(1975, 1985));
        // Exposure 1981..=1985 → 5 years.
        assert_eq!(stats[2].exposure_years, 5);
    }

    #[test]
    fn pipe_labels_and_counts() {
        let ds = tiny_dataset();
        let test_w = ObservationWindow::new(2009, 2009);
        assert_eq!(ds.pipe_failed_in(test_w), vec![false, true]);
        let train_w = ObservationWindow::new(1998, 2008);
        assert_eq!(ds.pipe_failure_counts(train_w), vec![3, 0]);
    }

    #[test]
    fn failures_in_filters() {
        let ds = tiny_dataset();
        let w = ObservationWindow::new(1998, 2009);
        assert_eq!(ds.failures_in(w, None, None).count(), 4);
        assert_eq!(
            ds.failures_in(w, Some(PipeClass::Critical), None).count(),
            3
        );
        assert_eq!(
            ds.failures_in(w, None, Some(FailureKind::Choke)).count(),
            0
        );
    }

    #[test]
    fn bounds_cover_geometry() {
        let ds = tiny_dataset();
        let b = ds.bounds();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(250.0, 0.0)));
        assert!(b.contains(Point::new(80.0, 100.0)));
    }

    #[test]
    fn laid_year_range_by_class() {
        let ds = tiny_dataset();
        assert_eq!(ds.laid_year_range(None), Some((1950, 1980)));
        assert_eq!(ds.laid_year_range(Some(PipeClass::Critical)), Some((1950, 1950)));
    }

    #[test]
    fn rejects_dangling_failure() {
        let ds = tiny_dataset();
        let mut failures = ds.failures().to_vec();
        failures.push(FailureRecord::new(
            SegmentId(99),
            PipeId(0),
            2000,
            FailureKind::Break,
        ));
        let err = Dataset::new(
            "bad",
            RegionId(0),
            ds.observation(),
            ds.pipes().to_vec(),
            ds.segments().to_vec(),
            failures,
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::DanglingReference(_)));
    }

    #[test]
    fn rejects_wrong_pipe_on_failure() {
        let ds = tiny_dataset();
        let mut failures = ds.failures().to_vec();
        failures.push(FailureRecord::new(
            SegmentId(0),
            PipeId(1),
            2000,
            FailureKind::Break,
        ));
        let err = Dataset::new(
            "bad",
            RegionId(0),
            ds.observation(),
            ds.pipes().to_vec(),
            ds.segments().to_vec(),
            failures,
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::Invalid(_)));
    }

    #[test]
    fn rejects_failure_outside_window() {
        let ds = tiny_dataset();
        let mut failures = ds.failures().to_vec();
        failures.push(FailureRecord::new(
            SegmentId(0),
            PipeId(0),
            1990,
            FailureKind::Break,
        ));
        assert!(Dataset::new(
            "bad",
            RegionId(0),
            ds.observation(),
            ds.pipes().to_vec(),
            ds.segments().to_vec(),
            failures,
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_pipe() {
        let ds = tiny_dataset();
        let mut pipes = ds.pipes().to_vec();
        pipes[1].segments.clear();
        assert!(Dataset::new(
            "bad",
            RegionId(0),
            ds.observation(),
            pipes,
            ds.segments().to_vec(),
            vec![],
        )
        .is_err());
    }
}
