//! CSV import/export for datasets.
//!
//! Hand-rolled reader/writer: the format is simple (no quoting needed —
//! every field is numeric, a code, or a geometry string without commas),
//! and the allowed dependency list has no CSV crate. Files written:
//!
//! * `meta.csv` — name, region, observation window;
//! * `pipes.csv` — one row per pipe;
//! * `segments.csv` — one row per segment, geometry as `x y;x y;…`;
//! * `failures.csv` — one row per failure record.

use crate::attributes::{Coating, Material};
use crate::dataset::{Dataset, Pipe, Segment};
use crate::failure::{FailureKind, FailureRecord};
use crate::geometry::{Point, Polyline};
use crate::ids::{PipeId, RegionId, SegmentId};
use crate::soil::{
    SoilCorrosiveness, SoilExpansiveness, SoilGeology, SoilLandscape, SoilProfile,
};
use crate::split::ObservationWindow;
use crate::{NetworkError, Result};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Write `dataset` as four CSV files under `dir` (created if missing).
pub fn write_dataset(dataset: &Dataset, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("meta.csv"), meta_csv(dataset))?;
    fs::write(dir.join("pipes.csv"), pipes_csv(dataset))?;
    fs::write(dir.join("segments.csv"), segments_csv(dataset))?;
    fs::write(dir.join("failures.csv"), failures_csv(dataset))?;
    Ok(())
}

/// Read a dataset previously written by [`write_dataset`].
pub fn read_dataset(dir: &Path) -> Result<Dataset> {
    let meta = fs::read_to_string(dir.join("meta.csv"))?;
    let (name, region, window) = parse_meta(&meta)?;
    let pipes = parse_pipes(&fs::read_to_string(dir.join("pipes.csv"))?)?;
    let segments = parse_segments(&fs::read_to_string(dir.join("segments.csv"))?)?;
    let failures = parse_failures(&fs::read_to_string(dir.join("failures.csv"))?)?;
    Dataset::new(name, region, window, pipes, segments, failures)
}

fn meta_csv(ds: &Dataset) -> String {
    format!(
        "name,region,obs_start,obs_end\n{},{},{},{}\n",
        ds.name(),
        ds.region().0,
        ds.observation().start,
        ds.observation().end
    )
}

fn pipes_csv(ds: &Dataset) -> String {
    let mut s = String::from("pipe_id,region,material,coating,diameter_mm,laid_year,segments\n");
    for p in ds.pipes() {
        let segs: Vec<String> = p.segments.iter().map(|sid| sid.0.to_string()).collect();
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{}",
            p.id.0,
            p.region.0,
            p.material.code(),
            p.coating.code(),
            p.diameter_mm,
            p.laid_year,
            segs.join(";")
        );
    }
    s
}

fn segments_csv(ds: &Dataset) -> String {
    let mut s = String::from(
        "segment_id,pipe_id,corrosiveness,expansiveness,geology,landscape,dist_intersection_m,tree_canopy,soil_moisture,geometry\n",
    );
    for seg in ds.segments() {
        let geom: Vec<String> = seg
            .geometry
            .points()
            .iter()
            .map(|p| format!("{} {}", p.x, p.y))
            .collect();
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{}",
            seg.id.0,
            seg.pipe.0,
            seg.soil.corrosiveness.code(),
            seg.soil.expansiveness.code(),
            seg.soil.geology.code(),
            seg.soil.landscape.code(),
            seg.dist_to_intersection_m,
            seg.tree_canopy,
            seg.soil_moisture,
            geom.join(";")
        );
    }
    s
}

fn failures_csv(ds: &Dataset) -> String {
    let mut s = String::from("segment_id,pipe_id,year,kind\n");
    for f in ds.failures() {
        let _ = writeln!(s, "{},{},{},{}", f.segment.0, f.pipe.0, f.year, f.kind.code());
    }
    s
}

fn rows(text: &str) -> impl Iterator<Item = (usize, Vec<&str>)> {
    text.lines()
        .enumerate()
        .skip(1) // header
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| (i + 1, l.split(',').collect()))
}

fn parse_err(line: usize, what: &str) -> NetworkError {
    NetworkError::Parse(format!("line {line}: {what}"))
}

fn field<'a>(fields: &[&'a str], i: usize, line: usize) -> Result<&'a str> {
    fields
        .get(i)
        .copied()
        .ok_or_else(|| parse_err(line, "missing field"))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T> {
    s.trim()
        .parse()
        .map_err(|_| parse_err(line, &format!("bad {what}: {s:?}")))
}

fn parse_meta(text: &str) -> Result<(String, RegionId, ObservationWindow)> {
    let (line, f) = rows(text)
        .next()
        .ok_or_else(|| parse_err(0, "empty meta.csv"))?;
    let name = field(&f, 0, line)?.to_string();
    let region = RegionId(parse_num(field(&f, 1, line)?, line, "region")?);
    let start: i32 = parse_num(field(&f, 2, line)?, line, "obs_start")?;
    let end: i32 = parse_num(field(&f, 3, line)?, line, "obs_end")?;
    if end < start {
        return Err(parse_err(line, "observation window inverted"));
    }
    Ok((name, region, ObservationWindow::new(start, end)))
}

fn parse_pipes(text: &str) -> Result<Vec<Pipe>> {
    let mut out = Vec::new();
    for (line, f) in rows(text) {
        let segments = field(&f, 6, line)?
            .split(';')
            .filter(|s| !s.is_empty())
            .map(|s| parse_num::<u32>(s, line, "segment id").map(SegmentId))
            .collect::<Result<Vec<_>>>()?;
        out.push(Pipe {
            id: PipeId(parse_num(field(&f, 0, line)?, line, "pipe id")?),
            region: RegionId(parse_num(field(&f, 1, line)?, line, "region")?),
            material: Material::from_code(field(&f, 2, line)?)
                .ok_or_else(|| parse_err(line, "unknown material"))?,
            coating: Coating::from_code(field(&f, 3, line)?)
                .ok_or_else(|| parse_err(line, "unknown coating"))?,
            diameter_mm: parse_num(field(&f, 4, line)?, line, "diameter")?,
            laid_year: parse_num(field(&f, 5, line)?, line, "laid year")?,
            segments,
        });
    }
    Ok(out)
}

fn parse_segments(text: &str) -> Result<Vec<Segment>> {
    let mut out = Vec::new();
    for (line, f) in rows(text) {
        let points = field(&f, 9, line)?
            .split(';')
            .filter(|s| !s.is_empty())
            .map(|pair| {
                let mut it = pair.split_whitespace();
                let x: f64 = parse_num(it.next().unwrap_or(""), line, "geometry x")?;
                let y: f64 = parse_num(it.next().unwrap_or(""), line, "geometry y")?;
                Ok(Point::new(x, y))
            })
            .collect::<Result<Vec<_>>>()?;
        let geometry =
            Polyline::new(points).ok_or_else(|| parse_err(line, "geometry needs >= 2 points"))?;
        out.push(Segment {
            id: SegmentId(parse_num(field(&f, 0, line)?, line, "segment id")?),
            pipe: PipeId(parse_num(field(&f, 1, line)?, line, "pipe id")?),
            soil: SoilProfile {
                corrosiveness: SoilCorrosiveness::from_code(field(&f, 2, line)?)
                    .ok_or_else(|| parse_err(line, "unknown corrosiveness"))?,
                expansiveness: SoilExpansiveness::from_code(field(&f, 3, line)?)
                    .ok_or_else(|| parse_err(line, "unknown expansiveness"))?,
                geology: SoilGeology::from_code(field(&f, 4, line)?)
                    .ok_or_else(|| parse_err(line, "unknown geology"))?,
                landscape: SoilLandscape::from_code(field(&f, 5, line)?)
                    .ok_or_else(|| parse_err(line, "unknown landscape"))?,
            },
            dist_to_intersection_m: parse_num(field(&f, 6, line)?, line, "distance")?,
            tree_canopy: parse_num(field(&f, 7, line)?, line, "canopy")?,
            soil_moisture: parse_num(field(&f, 8, line)?, line, "moisture")?,
            geometry,
        });
    }
    Ok(out)
}

fn parse_failures(text: &str) -> Result<Vec<FailureRecord>> {
    let mut out = Vec::new();
    for (line, f) in rows(text) {
        out.push(FailureRecord {
            segment: SegmentId(parse_num(field(&f, 0, line)?, line, "segment id")?),
            pipe: PipeId(parse_num(field(&f, 1, line)?, line, "pipe id")?),
            year: parse_num(field(&f, 2, line)?, line, "year")?,
            kind: FailureKind::from_code(field(&f, 3, line)?)
                .ok_or_else(|| parse_err(line, "unknown failure kind"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::tiny_dataset;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pipefail_csvio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = tiny_dataset();
        let dir = tempdir("roundtrip");
        write_dataset(&ds, &dir).unwrap();
        let back = read_dataset(&dir).unwrap();
        assert_eq!(back.name(), ds.name());
        assert_eq!(back.region(), ds.region());
        assert_eq!(back.observation(), ds.observation());
        assert_eq!(back.pipes(), ds.pipes());
        assert_eq!(back.segments(), ds.segments());
        assert_eq!(back.failures(), ds.failures());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = read_dataset(Path::new("/nonexistent/pipefail")).unwrap_err();
        assert!(matches!(err, NetworkError::Io(_)));
    }

    #[test]
    fn bad_material_is_parse_error() {
        let ds = tiny_dataset();
        let dir = tempdir("badmat");
        write_dataset(&ds, &dir).unwrap();
        let pipes = fs::read_to_string(dir.join("pipes.csv"))
            .unwrap()
            .replace("CICL", "UNOBTANIUM");
        fs::write(dir.join("pipes.csv"), pipes).unwrap();
        let err = read_dataset(&dir).unwrap_err();
        assert!(matches!(err, NetworkError::Parse(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_row_is_parse_error() {
        let ds = tiny_dataset();
        let dir = tempdir("trunc");
        write_dataset(&ds, &dir).unwrap();
        fs::write(dir.join("failures.csv"), "segment_id,pipe_id,year,kind\n0,0\n").unwrap();
        let err = read_dataset(&dir).unwrap_err();
        assert!(matches!(err, NetworkError::Parse(_)));
        let _ = fs::remove_dir_all(&dir);
    }
}
