//! Pipe asset attributes (Table 18.2, upper half).



/// Pipe material.
///
/// The categorical attribute with the strongest failure signal in water-main
/// data: early cast-iron cohorts corrode; PVC laid from the 1970s barely
/// fails structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Cast iron cement lined.
    Cicl,
    /// Unlined cast iron (oldest cohorts).
    CastIron,
    /// Ductile iron cement lined.
    Dicl,
    /// Asbestos cement.
    AsbestosCement,
    /// Polyvinyl chloride.
    Pvc,
    /// Polyethylene.
    Polyethylene,
    /// Mild steel (large trunk mains).
    Steel,
    /// Vitrified clay (wastewater).
    VitrifiedClay,
    /// Reinforced concrete (wastewater trunk).
    Concrete,
}

impl Material {
    /// All variants, for encoders and generators.
    pub const ALL: [Material; 9] = [
        Material::Cicl,
        Material::CastIron,
        Material::Dicl,
        Material::AsbestosCement,
        Material::Pvc,
        Material::Polyethylene,
        Material::Steel,
        Material::VitrifiedClay,
        Material::Concrete,
    ];

    /// Short code used in CSV files.
    pub fn code(&self) -> &'static str {
        match self {
            Material::Cicl => "CICL",
            Material::CastIron => "CI",
            Material::Dicl => "DICL",
            Material::AsbestosCement => "AC",
            Material::Pvc => "PVC",
            Material::Polyethylene => "PE",
            Material::Steel => "STL",
            Material::VitrifiedClay => "VC",
            Material::Concrete => "CON",
        }
    }

    /// Parse a CSV code.
    pub fn from_code(code: &str) -> Option<Self> {
        Material::ALL.iter().copied().find(|m| m.code() == code)
    }

    /// True for ferrous materials subject to electrochemical corrosion —
    /// the cohort for which soil corrosiveness matters.
    pub fn is_ferrous(&self) -> bool {
        matches!(
            self,
            Material::Cicl | Material::CastIron | Material::Dicl | Material::Steel
        )
    }
}

/// Protective coating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coating {
    /// No protective coating.
    None,
    /// Loose polyethylene sleeve.
    PolyethyleneSleeve,
    /// Coal-tar enamel coating.
    TarCoating,
    /// Fusion-bonded epoxy.
    Epoxy,
}

impl Coating {
    /// All variants, for encoders and generators.
    pub const ALL: [Coating; 4] = [
        Coating::None,
        Coating::PolyethyleneSleeve,
        Coating::TarCoating,
        Coating::Epoxy,
    ];

    /// Short code used in CSV files.
    pub fn code(&self) -> &'static str {
        match self {
            Coating::None => "NONE",
            Coating::PolyethyleneSleeve => "PESLEEVE",
            Coating::TarCoating => "TAR",
            Coating::Epoxy => "EPOXY",
        }
    }

    /// Parse a CSV code.
    pub fn from_code(code: &str) -> Option<Self> {
        Coating::ALL.iter().copied().find(|c| c.code() == code)
    }
}

/// Pipe class: the paper splits networks into critical water mains (CWM,
/// diameter ≥ 300 mm) and reticulation water mains (RWM, < 300 mm). Only
/// CWMs receive proactive condition assessment, so the comparison
/// experiments evaluate on CWMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeClass {
    /// Critical water main: diameter ≥ 300 mm.
    Critical,
    /// Reticulation water main: diameter < 300 mm.
    Reticulation,
}

/// The CWM diameter threshold in millimetres.
pub const CWM_DIAMETER_MM: f64 = 300.0;

impl PipeClass {
    /// Classify by diameter per the paper's definition.
    pub fn from_diameter(diameter_mm: f64) -> Self {
        if diameter_mm >= CWM_DIAMETER_MM {
            PipeClass::Critical
        } else {
            PipeClass::Reticulation
        }
    }

    /// Short code used in CSV files.
    pub fn code(&self) -> &'static str {
        match self {
            PipeClass::Critical => "CWM",
            PipeClass::Reticulation => "RWM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_codes_roundtrip() {
        for m in Material::ALL {
            assert_eq!(Material::from_code(m.code()), Some(m));
        }
        assert_eq!(Material::from_code("XX"), None);
    }

    #[test]
    fn coating_codes_roundtrip() {
        for c in Coating::ALL {
            assert_eq!(Coating::from_code(c.code()), Some(c));
        }
        assert_eq!(Coating::from_code(""), None);
    }

    #[test]
    fn ferrous_classification() {
        assert!(Material::Cicl.is_ferrous());
        assert!(Material::Steel.is_ferrous());
        assert!(!Material::Pvc.is_ferrous());
        assert!(!Material::VitrifiedClay.is_ferrous());
    }

    #[test]
    fn class_threshold_matches_paper() {
        assert_eq!(PipeClass::from_diameter(300.0), PipeClass::Critical);
        assert_eq!(PipeClass::from_diameter(299.9), PipeClass::Reticulation);
        assert_eq!(PipeClass::from_diameter(600.0), PipeClass::Critical);
        assert_eq!(PipeClass::from_diameter(100.0), PipeClass::Reticulation);
    }
}
