//! Minimal deterministic task pool.
//!
//! The build environment is offline, so there is no rayon; this crate
//! hand-rolls the one primitive the workspace needs: run `n` independent
//! tasks indexed `0..n` and collect their results **in index order**,
//! spreading the work over a fixed number of OS threads.
//!
//! # Determinism contract
//!
//! The pool never makes scheduling visible to the tasks. Work is split into
//! static contiguous chunks (no work stealing, no shared queues), each task
//! sees only its index, and results land in a pre-allocated slot vector, so
//! for any **pure** task function the output `Vec` is byte-identical at any
//! thread count. Randomised callers keep the guarantee by deriving a
//! per-index seed (`pipefail_stats::rng::derive_seed`) from a master seed —
//! never by sharing an RNG across tasks.
//!
//! Thread count comes from `TaskPool::new` or the `PIPEFAIL_THREADS`
//! environment variable (`from_env`); `0`/unset/unparsable means "use the
//! machine's available parallelism". `threads == 1` short-circuits to a
//! plain serial loop on the calling thread, which is also the fallback if
//! thread spawning is unavailable.

use std::num::NonZeroUsize;

/// A fixed-width pool that fans indexed tasks over scoped threads.
///
/// Cheap to construct (no threads live between calls — each [`run`] spawns
/// scoped workers and joins them before returning), so callers can freely
/// create one per call site or thread a copy through configuration structs.
///
/// [`run`]: TaskPool::run
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPool {
    threads: usize,
}

/// Environment variable read by [`TaskPool::from_env`].
pub const THREADS_ENV: &str = "PIPEFAIL_THREADS";

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

impl Default for TaskPool {
    /// Auto-sized pool (`available_parallelism`).
    fn default() -> Self {
        Self::new(0)
    }
}

impl TaskPool {
    /// Pool with exactly `threads` workers; `0` means auto
    /// (`available_parallelism`, min 1).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { available() } else { threads };
        Self { threads }
    }

    /// Serial pool: every task runs on the calling thread, in index order.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Pool sized from `PIPEFAIL_THREADS`. Unset, empty, `0`, or unparsable
    /// values mean auto; anything else is the exact worker count.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        Self::new(threads)
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(i)` for every `i in 0..n` and return the results in index
    /// order. `task` must be pure in `i` for the determinism contract to
    /// hold (same inputs → same output regardless of thread count).
    ///
    /// Panics in a task are propagated to the caller after all workers have
    /// been joined (scoped threads re-raise the first worker panic).
    pub fn run<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(task).collect();
        }

        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        // Static contiguous partitioning: worker t owns slots
        // [t*chunk, (t+1)*chunk). No queue, no stealing — the assignment of
        // index to worker is a pure function of (n, workers), and the output
        // position is a pure function of the index alone.
        let chunk = n.div_ceil(workers);
        let task = &task;
        std::thread::scope(|scope| {
            for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(task(t * chunk + i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("scope joined: every slot filled"))
            .collect()
    }

    /// Like [`run`](TaskPool::run) but for fallible tasks: returns the first
    /// error by **index order** (not completion order, so the winning error
    /// is deterministic too), or all results.
    pub fn try_run<T, E, F>(&self, n: usize, task: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        let mut out = Vec::with_capacity(n);
        for res in self.run(n, task) {
            out.push(res?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_matches_map() {
        let pool = TaskPool::serial();
        let got = pool.run(10, |i| i * i);
        let want: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // A "work"-like task: value depends only on the index.
        let f = |i: usize| {
            let mut acc = i as u64;
            for k in 0..100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let baseline = TaskPool::new(1).run(97, f);
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(
                TaskPool::new(threads).run(97, f),
                baseline,
                "thread count {threads} changed results"
            );
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = TaskPool::new(4).run(33, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 33);
        assert_eq!(out, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_tiny_n() {
        let pool = TaskPool::new(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 41), vec![41]);
        // More workers than tasks must not spawn empty chunks that panic.
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn auto_sizing_is_at_least_one() {
        assert!(TaskPool::new(0).threads() >= 1);
        assert!(TaskPool::default().threads() >= 1);
    }

    #[test]
    fn try_run_returns_first_error_by_index() {
        let pool = TaskPool::new(4);
        let res: Result<Vec<usize>, String> = pool.try_run(20, |i| {
            if i == 17 || i == 3 {
                Err(format!("task {i} failed"))
            } else {
                Ok(i)
            }
        });
        // Index order, not completion order: 3 beats 17 regardless of which
        // worker finishes first.
        assert_eq!(res.expect_err("tasks 3 and 17 fail"), "task 3 failed");
        let ok: Result<Vec<usize>, String> = pool.try_run(5, Ok);
        assert_eq!(ok.expect("no failures"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            TaskPool::new(4).run(8, |i| {
                assert_ne!(i, 5, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn from_env_parses_thread_count() {
        // Env mutation: run the combinations in one test to avoid races
        // between parallel test threads over the same variable.
        let old = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(TaskPool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(TaskPool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(TaskPool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(TaskPool::from_env().threads() >= 1);
        if let Some(v) = old {
            std::env::set_var(THREADS_ENV, v);
        }
    }
}
