//! Risk maps (Fig 18.9): pipes coloured by predicted-risk decile, with the
//! test-year failures drawn as stars.

use crate::svg::SvgCanvas;
use pipefail_core::model::RiskRanking;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::ObservationWindow;

/// Decile colour ramp: index 0 = top 10% risk (red) … 9 = bottom (green).
const DECILE_COLORS: [&str; 10] = [
    "#d73027", "#f46d43", "#fdae61", "#fee08b", "#ffffbf", "#d9ef8b", "#a6d96a", "#66bd63",
    "#1a9850", "#006837",
];

/// Colour for risk decile `d` (0 = highest risk).
pub fn decile_color(d: usize) -> &'static str {
    DECILE_COLORS[d.min(9)]
}

/// Render the risk map of `ranking` over `dataset`: ranked pipes coloured by
/// decile, unranked pipes grey, and failures in `test_window` as black
/// stars.
///
/// # Examples
///
/// Fit any model, then draw Fig 18.9 for the test year:
///
/// ```
/// use pipefail_core::model::FailureModel;
/// use pipefail_core::ranking::{RankSvm, RankSvmConfig};
/// use pipefail_eval::riskmap::risk_map;
/// use pipefail_network::split::TrainTestSplit;
/// use pipefail_synth::WorldConfig;
///
/// let world = WorldConfig::demo().build(7);
/// let region = &world.regions()[0];
/// let split = TrainTestSplit::paper_protocol();
/// let mut model = RankSvm::new(RankSvmConfig::fast());
/// let ranking = model.fit_rank(region, &split, 7).unwrap();
///
/// let svg = risk_map(region, &ranking, split.test, 800.0, 800.0);
/// assert!(svg.starts_with("<svg"));
/// ```
pub fn risk_map(
    dataset: &Dataset,
    ranking: &RiskRanking,
    test_window: ObservationWindow,
    width: f64,
    height: f64,
) -> String {
    let mut canvas = SvgCanvas::new(width, height, dataset.bounds());
    // Background: every pipe in light grey.
    for seg in dataset.segments() {
        canvas.polyline(seg.geometry.points(), "#cccccc", 0.5);
    }
    // Ranked pipes by decile (draw lowest risk first so red ends on top).
    let n = ranking.len().max(1);
    for (rank, score) in ranking.scores().iter().enumerate().rev() {
        let decile = (rank * 10) / n;
        let color = decile_color(decile);
        let stroke = if decile == 0 { 2.0 } else { 1.0 };
        for &sid in &dataset.pipe(score.pipe).segments {
            canvas.polyline(dataset.segment(sid).geometry.points(), color, stroke);
        }
    }
    // Test-year failures as stars at the failed segment midpoints.
    for f in dataset.failures() {
        if test_window.contains(f.year) {
            canvas.star(dataset.segment(f.segment).geometry.midpoint(), 6.0, "black");
        }
    }
    canvas.render()
}

/// Fraction of `test_window` failures that fall on the top-`frac` ranked
/// pipes — the quantitative claim behind the risk map ("many failures could
/// be prevented").
pub fn top_fraction_capture(
    dataset: &Dataset,
    ranking: &RiskRanking,
    test_window: ObservationWindow,
    frac: f64,
) -> f64 {
    let top: std::collections::HashSet<_> = ranking
        .top_fraction(frac)
        .iter()
        .map(|s| s.pipe)
        .collect();
    let mut total = 0.0;
    let mut captured = 0.0;
    for f in dataset.failures() {
        if test_window.contains(f.year) && ranking.score_of(f.pipe).is_some() {
            total += 1.0;
            if top.contains(&f.pipe) {
                captured += 1.0;
            }
        }
    }
    if total > 0.0 {
        captured / total
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::RiskScore;
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;
    use pipefail_network::ids::PipeId;

    fn ranking(order: &[u32]) -> RiskRanking {
        RiskRanking::new(
            order
                .iter()
                .enumerate()
                .map(|(i, &p)| RiskScore {
                    pipe: PipeId(p),
                    score: (order.len() - i) as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn map_contains_stars_and_deciles() {
        let ds = three_pipe_dataset();
        let svg = risk_map(
            &ds,
            &ranking(&[0, 1, 2]),
            ObservationWindow::new(2009, 2009),
            400.0,
            400.0,
        );
        assert!(svg.contains("<polygon"), "failure stars missing");
        assert!(svg.contains(decile_color(0)), "top decile colour missing");
    }

    #[test]
    fn capture_fraction_extremes() {
        let ds = three_pipe_dataset();
        let w = ObservationWindow::new(2009, 2009);
        // Pipe 0 is the only 2009 failure. Top-1/3 = first pipe of ranking.
        assert_eq!(top_fraction_capture(&ds, &ranking(&[0, 1, 2]), w, 0.34), 1.0);
        assert_eq!(top_fraction_capture(&ds, &ranking(&[2, 1, 0]), w, 0.34), 0.0);
    }

    #[test]
    fn decile_color_clamps() {
        assert_eq!(decile_color(0), DECILE_COLORS[0]);
        assert_eq!(decile_color(42), DECILE_COLORS[9]);
    }
}
