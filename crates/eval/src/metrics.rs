//! AUC metrics (Table 18.3).
//!
//! * `full_auc` — area under the detection curve over the whole budget, the
//!   paper's "AUC (100%)" (e.g. DPMHBP 82.67% on Region A);
//! * `auc_at_fraction` — area under the curve up to a restricted budget, the
//!   paper's "AUC (1%)", quoted in basis points ‱ (e.g. 8.09‱);
//! * `mann_whitney_auc` — the classical probability that a random failed
//!   pipe outranks a random clean one, used by the unit tests to
//!   cross-check the detection-curve area.

use crate::detection::DetectionCurve;
use pipefail_core::model::RiskRanking;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::ObservationWindow;
use pipefail_stats::descriptive::ranks;

/// Area under the detection curve over the full budget, in [0, 1].
pub fn full_auc(curve: &DetectionCurve) -> f64 {
    curve.area(1.0)
}

/// Area under the detection curve up to `fraction` of the budget (raw
/// area; multiply by 1e4 for the paper's ‱ unit).
pub fn auc_at_fraction(curve: &DetectionCurve, fraction: f64) -> f64 {
    curve.area(fraction)
}

/// Format a raw restricted-budget area in basis points, as Table 18.3 does.
pub fn to_basis_points(area: f64) -> f64 {
    area * 1e4
}

/// Mann–Whitney AUC of a ranking against test-window failure labels: the
/// probability a uniformly random failed pipe is ranked above a uniformly
/// random clean pipe (ties = ½).
pub fn mann_whitney_auc(
    ranking: &RiskRanking,
    dataset: &Dataset,
    test_window: ObservationWindow,
) -> Option<f64> {
    let failed = dataset.pipe_failed_in(test_window);
    let scores: Vec<f64> = ranking.scores().iter().map(|s| s.score).collect();
    let labels: Vec<bool> = ranking
        .scores()
        .iter()
        .map(|s| failed[s.pipe.index()])
        .collect();
    let np = labels.iter().filter(|&&l| l).count() as f64;
    let nn = labels.len() as f64 - np;
    if np == 0.0 || nn == 0.0 {
        return None;
    }
    let r = ranks(&scores).ok()?;
    let pos_rank_sum: f64 = r
        .iter()
        .zip(&labels)
        .filter(|(_, &l)| l)
        .map(|(r, _)| r)
        .sum();
    Some((pos_rank_sum - np * (np + 1.0) / 2.0) / (np * nn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::RiskScore;
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;
    use pipefail_network::ids::PipeId;

    fn ranking(order: &[u32]) -> RiskRanking {
        RiskRanking::new(
            order
                .iter()
                .enumerate()
                .map(|(i, &p)| RiskScore {
                    pipe: PipeId(p),
                    score: (order.len() - i) as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn mann_whitney_extremes() {
        let ds = three_pipe_dataset();
        let w = ObservationWindow::new(2009, 2009);
        // Pipe 0 is the only test-year failure.
        assert_eq!(mann_whitney_auc(&ranking(&[0, 1, 2]), &ds, w), Some(1.0));
        assert_eq!(mann_whitney_auc(&ranking(&[1, 2, 0]), &ds, w), Some(0.0));
        assert_eq!(mann_whitney_auc(&ranking(&[1, 0, 2]), &ds, w), Some(0.5));
    }

    #[test]
    fn mann_whitney_none_without_positives() {
        let ds = three_pipe_dataset();
        let w = ObservationWindow::new(2008, 2008); // no failures that year
        assert_eq!(mann_whitney_auc(&ranking(&[0, 1, 2]), &ds, w), None);
    }

    #[test]
    fn detection_auc_tracks_mann_whitney_ordering()  {
        let ds = three_pipe_dataset();
        let w = ObservationWindow::new(2009, 2009);
        let good = DetectionCurve::by_count(&ranking(&[0, 1, 2]), &ds, w);
        let bad = DetectionCurve::by_count(&ranking(&[2, 1, 0]), &ds, w);
        assert!(full_auc(&good) > full_auc(&bad));
    }

    #[test]
    fn basis_points_unit() {
        assert!((to_basis_points(0.000809) - 8.09).abs() < 1e-9);
    }

    #[test]
    fn restricted_auc_smaller_than_budget() {
        let ds = three_pipe_dataset();
        let w = ObservationWindow::new(2009, 2009);
        let c = DetectionCurve::by_count(&ranking(&[0, 1, 2]), &ds, w);
        let a = auc_at_fraction(&c, 0.01);
        assert!((0.0..=0.01 + 1e-12).contains(&a));
    }
}
