//! Dependency-free SVG charts: multi-series line charts (Figs 18.7/18.5/
//! 18.6) and grouped bar charts (Fig 18.8).
//!
//! Deliberately minimal — axes, ticks, legend, series — enough to render
//! the paper's figures faithfully without a plotting dependency.

use std::fmt::Write as _;

/// Qualitative series palette (colour-blind-safe-ish).
const PALETTE: [&str; 8] = [
    "#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d5a97", "#00798c", "#5f0f40", "#2e4057",
];

/// One named line/bar series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points (line) or per-category values (bar).
    pub points: Vec<(f64, f64)>,
}

/// Chart frame configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Pixel width.
    pub width: f64,
    /// Pixel height.
    pub height: f64,
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

impl Default for ChartConfig {
    fn default() -> Self {
        Self {
            width: 720.0,
            height: 480.0,
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }
}

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 52.0;

struct Frame {
    cfg: ChartConfig,
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
}

impl Frame {
    fn tx(&self, x: f64) -> f64 {
        let w = self.cfg.width - MARGIN_L - MARGIN_R;
        MARGIN_L + (x - self.x_min) / (self.x_max - self.x_min).max(1e-12) * w
    }

    fn ty(&self, y: f64) -> f64 {
        let h = self.cfg.height - MARGIN_T - MARGIN_B;
        self.cfg.height - MARGIN_B - (y - self.y_min) / (self.y_max - self.y_min).max(1e-12) * h
    }

    fn chrome(&self, body: &str, legend: &[&str]) -> String {
        let mut s = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" font-family=\"sans-serif\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n",
            self.cfg.width, self.cfg.height
        );
        // Title and axis labels.
        let _ = writeln!(
            s,
            r#"<text x="{:.0}" y="24" font-size="16" text-anchor="middle">{}</text>"#,
            (MARGIN_L + self.cfg.width - MARGIN_R) / 2.0,
            self.cfg.title
        );
        let _ = writeln!(
            s,
            r#"<text x="{:.0}" y="{:.0}" font-size="12" text-anchor="middle">{}</text>"#,
            (MARGIN_L + self.cfg.width - MARGIN_R) / 2.0,
            self.cfg.height - 12.0,
            self.cfg.x_label
        );
        let _ = writeln!(
            s,
            r#"<text x="16" y="{:.0}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"#,
            self.cfg.height / 2.0,
            self.cfg.height / 2.0,
            self.cfg.y_label
        );
        // Axes box + ticks (5 per axis).
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{MARGIN_T}" width="{:.1}" height="{:.1}" fill="none" stroke="#444"/>"##,
            MARGIN_L,
            self.cfg.width - MARGIN_L - MARGIN_R,
            self.cfg.height - MARGIN_T - MARGIN_B
        );
        for i in 0..=5 {
            let fx = self.x_min + (self.x_max - self.x_min) * i as f64 / 5.0;
            let fy = self.y_min + (self.y_max - self.y_min) * i as f64 / 5.0;
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
                self.tx(fx),
                self.cfg.height - MARGIN_B + 16.0,
                trim_num(fx)
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                self.ty(fy) + 3.0,
                trim_num(fy)
            );
            let _ = writeln!(
                s,
                r##"<line x1="{:.1}" y1="{MARGIN_T}" x2="{:.1}" y2="{:.1}" stroke="#eee"/>"##,
                self.tx(fx),
                self.tx(fx),
                self.cfg.height - MARGIN_B
            );
        }
        s.push_str(body);
        // Legend.
        for (i, name) in legend.iter().enumerate() {
            let y = MARGIN_T + 14.0 + i as f64 * 18.0;
            let x = self.cfg.width - MARGIN_R + 12.0;
            let _ = writeln!(
                s,
                r#"<rect x="{x:.1}" y="{:.1}" width="14" height="4" fill="{}"/><text x="{:.1}" y="{:.1}" font-size="11">{name}</text>"#,
                y - 2.0,
                PALETTE[i % PALETTE.len()],
                x + 20.0,
                y + 3.0
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

fn trim_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e6 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Render a multi-series line chart.
pub fn line_chart(cfg: ChartConfig, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    let (x_min, x_max) = bounds(all.iter().map(|p| p.0), 0.0, 1.0);
    let (y_min, y_max) = bounds(all.iter().map(|p| p.1), 0.0, 1.0);
    let frame = Frame {
        cfg,
        x_min,
        x_max,
        y_min: y_min.min(0.0),
        y_max,
    };
    let mut body = String::new();
    for (i, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", frame.tx(x), frame.ty(y)))
            .collect();
        let _ = writeln!(
            body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
            pts.join(" "),
            PALETTE[i % PALETTE.len()]
        );
    }
    let legend: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
    frame.chrome(&body, &legend)
}

/// Render a grouped bar chart: one group per `categories` entry, one bar per
/// series inside each group. Series points are indexed by category position
/// (`points[i].1` is the value for category `i`).
pub fn bar_chart(cfg: ChartConfig, categories: &[&str], series: &[Series]) -> String {
    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let frame = Frame {
        cfg,
        x_min: 0.0,
        x_max: categories.len() as f64,
        y_min: 0.0,
        y_max: y_max * 1.1,
    };
    let mut body = String::new();
    let group_w = (frame.tx(1.0) - frame.tx(0.0)) * 0.8;
    let bar_w = group_w / series.len().max(1) as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = frame.tx(ci as f64 + 0.1);
        for (si, s) in series.iter().enumerate() {
            let v = s.points.get(ci).map_or(0.0, |p| p.1);
            let x = gx + si as f64 * bar_w;
            let y = frame.ty(v);
            let y0 = frame.ty(0.0);
            let _ = writeln!(
                body,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                bar_w * 0.9,
                (y0 - y).max(0.0),
                PALETTE[si % PALETTE.len()]
            );
        }
        let _ = writeln!(
            body,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">{cat}</text>"#,
            frame.tx(ci as f64 + 0.5),
            frame.cfg.height - MARGIN_B + 30.0
        );
    }
    let legend: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
    frame.chrome(&body, &legend)
}

fn bounds(vals: impl Iterator<Item = f64>, def_lo: f64, def_hi: f64) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (def_lo, def_hi)
    } else if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "A".into(),
                points: (0..=10).map(|i| (i as f64 / 10.0, (i as f64 / 10.0).sqrt())).collect(),
            },
            Series {
                name: "B".into(),
                points: (0..=10).map(|i| (i as f64 / 10.0, i as f64 / 10.0)).collect(),
            },
        ]
    }

    #[test]
    fn line_chart_is_wellformed() {
        let svg = line_chart(
            ChartConfig {
                title: "Detection".into(),
                x_label: "budget".into(),
                y_label: "detected".into(),
                ..ChartConfig::default()
            },
            &demo_series(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Detection"));
        assert!(svg.contains(">A</text>") && svg.contains(">B</text>"));
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let svg = bar_chart(
            ChartConfig::default(),
            &["Region A", "Region B"],
            &[
                Series { name: "M1".into(), points: vec![(0.0, 0.3), (1.0, 0.5)] },
                Series { name: "M2".into(), points: vec![(0.0, 0.2), (1.0, 0.4)] },
            ],
        );
        // 2 categories × 2 series = 4 bars, plus background, frame and one
        // legend swatch per series.
        assert_eq!(svg.matches("<rect").count(), 4 + 2 + 2);
        assert!(svg.contains("Region A"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let svg = line_chart(ChartConfig::default(), &[Series { name: "x".into(), points: vec![] }]);
        assert!(svg.contains("</svg>"));
        let svg = bar_chart(ChartConfig::default(), &[], &[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn trim_num_formats() {
        assert_eq!(trim_num(1.0), "1");
        assert_eq!(trim_num(0.25), "0.25");
    }
}
