//! Plain-text report formatting matching the paper's table layouts, plus
//! CSV series output for the figures.

use crate::runner::RegionResult;
use crate::significance::Comparison;
use std::fmt::Write as _;

/// Format Table 18.3: AUC(100%) and AUC(1%, ‱) per model per region.
pub fn format_auc_table(regions: &[RegionResult]) -> String {
    let mut s = String::new();
    for r in regions {
        let _ = writeln!(s, "== {} ==", r.region);
        let _ = writeln!(s, "{:<16} {:>12} {:>12}", "Model", "AUC(100%)", "AUC(1%) bp");
        for m in &r.models {
            let _ = writeln!(
                s,
                "{:<16} {:>11.2}% {:>12.2}",
                m.model,
                m.auc_full * 100.0,
                m.auc_restricted_bp
            );
        }
    }
    s
}

/// Format Table 18.4: one-sided paired t-tests of the proposed model
/// against each baseline (t statistic, p-value, significance flag at 5%).
pub fn format_significance_table(region: &str, comparisons: &[Comparison]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {region}: DPMHBP vs baselines (one-sided paired t) ==");
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>6}   {:>10} {:>10} {:>6}",
        "versus", "t(100%)", "p", "sig", "t(1%)", "p", "sig"
    );
    for c in comparisons {
        let _ = writeln!(
            s,
            "{:<16} {:>10.2} {:>10.4} {:>6} {:>12.2} {:>10.4} {:>6}",
            c.versus,
            c.full.t,
            c.full.p_value,
            if c.full.significant_at(0.05) { "yes" } else { "no" },
            c.restricted.t,
            c.restricted.p_value,
            if c.restricted.significant_at(0.05) { "yes" } else { "no" },
        );
    }
    s
}

/// CSV of detection-curve series for one region (Fig 18.7): column per
/// model, `points` rows sampled on the budget axis.
pub fn detection_curves_csv(result: &RegionResult, points: usize) -> String {
    let mut s = String::from("budget");
    for m in &result.models {
        let _ = write!(s, ",{}", m.model);
    }
    s.push('\n');
    for i in 1..=points {
        let x = i as f64 / points as f64;
        let _ = write!(s, "{x:.4}");
        for m in &result.models {
            let _ = write!(s, ",{:.6}", m.curve_count.y_at(x));
        }
        s.push('\n');
    }
    s
}

/// CSV of a binned scatter relationship (Figs 18.5/18.6): `(bin_center,
/// value)` rows.
pub fn binned_series_csv(name: &str, series: &[(f64, f64)]) -> String {
    let mut s = format!("{name},failure_rate\n");
    for (x, y) in series {
        let _ = writeln!(s, "{x:.4},{y:.6}");
    }
    s
}

/// Bin a covariate/outcome relationship: mean outcome per equal-width
/// covariate bin (weighted by exposure), skipping empty bins.
pub fn binned_rates(
    xs: &[f64],
    events: &[f64],
    exposure: &[f64],
    bins: usize,
) -> Vec<(f64, f64)> {
    assert_eq!(xs.len(), events.len());
    assert_eq!(xs.len(), exposure.len());
    if xs.is_empty() || bins == 0 {
        return Vec::new();
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(1e-12);
    let mut ev = vec![0.0; bins];
    let mut ex = vec![0.0; bins];
    for ((&x, &e), &n) in xs.iter().zip(events).zip(exposure) {
        let b = (((x - lo) / width) as usize).min(bins - 1);
        ev[b] += e;
        ex[b] += n;
    }
    (0..bins)
        .filter(|&b| ex[b] > 0.0)
        .map(|b| (lo + (b as f64 + 0.5) * width, ev[b] / ex[b]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionCurve;
    use crate::runner::ModelResult;
    use pipefail_core::model::{RiskRanking, RiskScore};
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;
    use pipefail_network::ids::PipeId;
    use pipefail_network::split::ObservationWindow;

    fn fake_region() -> RegionResult {
        let ds = three_pipe_dataset();
        let ranking = RiskRanking::new(
            (0..3)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: (3 - i) as f64,
                })
                .collect(),
        );
        let w = ObservationWindow::new(2009, 2009);
        let curve = DetectionCurve::by_count(&ranking, &ds, w);
        RegionResult {
            region: "Region X".into(),
            models: vec![ModelResult {
                model: "DPMHBP".into(),
                auc_full: 0.8267,
                auc_restricted_bp: 8.09,
                mann_whitney: Some(0.8),
                curve_length: DetectionCurve::by_length(&ranking, &ds, w),
                curve_length_density: DetectionCurve::by_length_density(&ranking, &ds, w),
                curve_count: curve,
            }],
            fits: vec![crate::runner::FitReport {
                model: "DPMHBP".into(),
                attempts: 1,
                error: None,
            }],
        }
    }

    #[test]
    fn auc_table_contains_percentages() {
        let text = format_auc_table(&[fake_region()]);
        assert!(text.contains("Region X"));
        assert!(text.contains("82.67%"));
        assert!(text.contains("8.09"));
    }

    #[test]
    fn curves_csv_has_header_and_rows() {
        let csv = detection_curves_csv(&fake_region(), 10);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "budget,DPMHBP");
        assert!(lines[10].starts_with("1.0000,"));
    }

    #[test]
    fn binned_rates_monotone_input() {
        let xs = [0.1, 0.2, 0.5, 0.6, 0.9, 0.95];
        let events = [0.0, 1.0, 2.0, 2.0, 8.0, 9.0];
        let exposure = [10.0, 10.0, 10.0, 10.0, 10.0, 10.0];
        let bins = binned_rates(&xs, &events, &exposure, 3);
        assert_eq!(bins.len(), 3);
        assert!(bins[0].1 < bins[1].1 && bins[1].1 < bins[2].1);
    }

    #[test]
    fn binned_rates_empty_input() {
        assert!(binned_rates(&[], &[], &[], 5).is_empty());
    }
}
