//! Minimal SVG writer (no external dependency) plus the network-map
//! renderer of Fig 18.2.

use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::geometry::{Bounds, Point};
use std::fmt::Write as _;

/// An SVG document builder with a world-to-view transform.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    bounds: Bounds,
    body: String,
}

impl SvgCanvas {
    /// Create a canvas of `width × height` pixels mapping `bounds` (world
    /// coordinates, y-up) onto it with a small margin.
    pub fn new(width: f64, height: f64, bounds: Bounds) -> Self {
        Self {
            width,
            height,
            bounds,
            body: String::new(),
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        let margin = 10.0;
        let w = self.bounds.width().max(1e-9);
        let h = self.bounds.height().max(1e-9);
        let sx = (self.width - 2.0 * margin) / w;
        let sy = (self.height - 2.0 * margin) / h;
        let s = sx.min(sy);
        (
            margin + (p.x - self.bounds.min.x) * s,
            // SVG y grows downward.
            self.height - margin - (p.y - self.bounds.min.y) * s,
        )
    }

    /// Draw a polyline through world points.
    pub fn polyline(&mut self, points: &[Point], color: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|&p| {
                let (x, y) = self.tx(p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{width}"/>"#,
            pts.join(" ")
        );
    }

    /// Draw a circle at a world point.
    pub fn circle(&mut self, at: Point, r: f64, color: &str) {
        let (x, y) = self.tx(at);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r}" fill="{color}"/>"#
        );
    }

    /// Draw a five-pointed star at a world point (test-year failures in the
    /// risk maps).
    pub fn star(&mut self, at: Point, r: f64, color: &str) {
        let (cx, cy) = self.tx(at);
        let mut pts = Vec::with_capacity(10);
        for i in 0..10 {
            let rad = if i % 2 == 0 { r } else { r * 0.4 };
            let a = -std::f64::consts::FRAC_PI_2 + i as f64 * std::f64::consts::PI / 5.0;
            pts.push(format!("{:.1},{:.1}", cx + rad * a.cos(), cy + rad * a.sin()));
        }
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{color}"/>"#,
            pts.join(" ")
        );
    }

    /// Draw text at a world point.
    pub fn text(&mut self, at: Point, size: f64, content: &str) {
        let (x, y) = self.tx(at);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size}" font-family="sans-serif">{content}</text>"#
        );
    }

    /// Finish the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Render a Fig 18.2-style network map: critical water mains red,
/// reticulation mains blue.
pub fn network_map(dataset: &Dataset, width: f64, height: f64) -> String {
    let mut canvas = SvgCanvas::new(width, height, dataset.bounds());
    for pipe in dataset.pipes() {
        let (color, stroke) = match pipe.class() {
            PipeClass::Critical => ("#cc2222", 1.6),
            PipeClass::Reticulation => ("#2244cc", 0.7),
        };
        for &sid in &pipe.segments {
            canvas.polyline(dataset.segment(sid).geometry.points(), color, stroke);
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;

    #[test]
    fn canvas_produces_wellformed_svg() {
        let mut b = Bounds::empty();
        b.expand(Point::new(0.0, 0.0));
        b.expand(Point::new(100.0, 100.0));
        let mut c = SvgCanvas::new(400.0, 300.0, b);
        c.polyline(&[Point::new(0.0, 0.0), Point::new(100.0, 100.0)], "red", 1.0);
        c.circle(Point::new(50.0, 50.0), 3.0, "black");
        c.star(Point::new(10.0, 90.0), 5.0, "gold");
        c.text(Point::new(5.0, 5.0), 12.0, "label");
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("label"));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut b = Bounds::empty();
        b.expand(Point::new(0.0, 0.0));
        b.expand(Point::new(100.0, 100.0));
        let c = SvgCanvas::new(200.0, 200.0, b);
        let (_, y_low) = c.tx(Point::new(0.0, 0.0));
        let (_, y_high) = c.tx(Point::new(0.0, 100.0));
        assert!(y_low > y_high, "world y-up must map to SVG y-down");
    }

    #[test]
    fn network_map_colours_classes() {
        let ds = three_pipe_dataset();
        let svg = network_map(&ds, 300.0, 300.0);
        assert!(svg.contains("#cc2222"), "CWM colour missing");
        assert!(svg.matches("<polyline").count() >= 3);
    }
}
