//! # pipefail-eval
//!
//! The evaluation harness reproducing the paper's §18.4 protocol:
//!
//! * [`detection`] — prioritisation ("detection") curves: cumulative % of
//!   pipes inspected (by count or by network length) vs % of test-year
//!   failures detected (Figs 18.7/18.8);
//! * [`metrics`] — AUC of the detection curve over the full budget and over
//!   a restricted inspection budget (the paper's AUC(100%) and AUC(1%), the
//!   latter reported in basis points ‱), plus the classical Mann–Whitney
//!   AUC;
//! * [`significance`] — seeded replicate runs and one-sided paired t-tests
//!   (Table 18.4), parallelised across replicates with scoped threads;
//! * [`runner`] — one entry point that fits every compared model on every
//!   region and collects curves/AUCs (Fig 18.7, Table 18.3);
//! * [`svg`] / [`riskmap`] — dependency-free SVG rendering of network maps
//!   (Fig 18.2) and risk maps with test-year failures as stars (Fig 18.9);
//! * [`report`] — plain-text table formatting matching the paper's layout.

#![warn(missing_docs)]

pub mod charts;
pub mod detection;
pub mod metrics;
pub mod report;
pub mod riskmap;
pub mod runner;
pub mod significance;
pub mod svg;

pub use detection::DetectionCurve;
pub use metrics::{auc_at_fraction, full_auc, mann_whitney_auc};
pub use runner::{FitReport, ModelKind, RegionResult, RetryPolicy, RunConfig};
