//! Detection (prioritisation) curves.
//!
//! Inspect pipes from the top of the ranking; after each pipe, record the
//! cumulative inspection budget spent (x) and the fraction of test-window
//! failures detected (y). The paper draws x as the cumulative *percentage of
//! pipes* for Fig 18.7 and as the cumulative *percentage of network length*
//! for the 1%-budget analysis of Fig 18.8 (only 1% of CWM length can be
//! physically inspected per year).

use pipefail_core::model::RiskRanking;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::ObservationWindow;

/// A monotone step curve through (0,0) … (1,1-ish).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionCurve {
    /// Cumulative budget fraction after each inspected pipe (ascending).
    xs: Vec<f64>,
    /// Cumulative detected-failure fraction after each inspected pipe.
    ys: Vec<f64>,
}

impl DetectionCurve {
    /// Budget axis = fraction of pipes inspected (Fig 18.7).
    pub fn by_count(
        ranking: &RiskRanking,
        dataset: &Dataset,
        test_window: ObservationWindow,
    ) -> Self {
        let weights = vec![1.0; ranking.len()];
        Self::build(ranking, dataset, test_window, &weights)
    }

    /// Budget axis = fraction of ranked network length inspected (Fig 18.8).
    pub fn by_length(
        ranking: &RiskRanking,
        dataset: &Dataset,
        test_window: ObservationWindow,
    ) -> Self {
        let weights: Vec<f64> = ranking
            .scores()
            .iter()
            .map(|s| dataset.pipe_length_m(s.pipe).max(1e-9))
            .collect();
        Self::build(ranking, dataset, test_window, &weights)
    }

    /// Budget axis = fraction of network length, but with pipes *re-ordered
    /// by risk density* (score per metre) — the greedy-knapsack inspection
    /// plan for a length budget. Pipe failure probabilities rise with
    /// length, so inspecting by raw score spends a length budget on few
    /// long pipes; a utility planning against a km budget would inspect by
    /// density instead.
    pub fn by_length_density(
        ranking: &RiskRanking,
        dataset: &Dataset,
        test_window: ObservationWindow,
    ) -> Self {
        let reordered = RiskRanking::new(
            ranking
                .scores()
                .iter()
                .map(|s| pipefail_core::model::RiskScore {
                    pipe: s.pipe,
                    score: s.score / dataset.pipe_length_m(s.pipe).max(1e-9),
                })
                .collect(),
        );
        Self::by_length(&reordered, dataset, test_window)
    }

    fn build(
        ranking: &RiskRanking,
        dataset: &Dataset,
        test_window: ObservationWindow,
        weights: &[f64],
    ) -> Self {
        let counts = dataset.pipe_failure_counts(test_window);
        let total_budget: f64 = weights.iter().sum();
        let total_failures: f64 = ranking
            .scores()
            .iter()
            .map(|s| counts[s.pipe.index()] as f64)
            .sum();
        let mut xs = Vec::with_capacity(ranking.len());
        let mut ys = Vec::with_capacity(ranking.len());
        let mut spent = 0.0;
        let mut found = 0.0;
        for (s, w) in ranking.scores().iter().zip(weights) {
            spent += w;
            found += counts[s.pipe.index()] as f64;
            xs.push(if total_budget > 0.0 { spent / total_budget } else { 1.0 });
            ys.push(if total_failures > 0.0 {
                found / total_failures
            } else {
                0.0
            });
        }
        Self { xs, ys }
    }

    /// The x coordinates (ascending, ending at 1).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y coordinates (non-decreasing).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of inspected-pipe steps.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the curve has no steps.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Detected-failure fraction at budget `x` (step interpolation; the
    /// curve is right-continuous: you only get credit for fully inspected
    /// pipes).
    pub fn y_at(&self, x: f64) -> f64 {
        if self.xs.is_empty() || x < self.xs[0] {
            return 0.0;
        }
        // Last index with xs[i] <= x.
        match self
            .xs
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(mut i) => {
                // Step past ties.
                while i + 1 < self.xs.len() && self.xs[i + 1] <= x {
                    i += 1;
                }
                self.ys[i]
            }
            Err(0) => 0.0,
            Err(i) => self.ys[i - 1],
        }
    }

    /// Area under the curve from 0 to `up_to` (step integration). The
    /// paper's AUC(100%) is `area(1.0)`; AUC(1%) is `area(0.01)` (quoted in
    /// basis points).
    pub fn area(&self, up_to: f64) -> f64 {
        let up_to = up_to.clamp(0.0, 1.0);
        let mut area = 0.0;
        let mut prev_x = 0.0;
        let mut prev_y = 0.0;
        for (&x, &y) in self.xs.iter().zip(&self.ys) {
            if x >= up_to {
                area += (up_to - prev_x) * prev_y;
                return area;
            }
            area += (x - prev_x) * prev_y;
            prev_x = x;
            prev_y = y;
        }
        area + (up_to - prev_x) * prev_y
    }

    /// Sample the curve at `n` evenly spaced budgets (for figure output).
    pub fn sample(&self, n: usize) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x, self.y_at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::RiskScore;
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;
    use pipefail_network::ids::PipeId;

    fn ranking(order: &[u32]) -> RiskRanking {
        RiskRanking::new(
            order
                .iter()
                .enumerate()
                .map(|(i, &p)| RiskScore {
                    pipe: PipeId(p),
                    score: (order.len() - i) as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn perfect_ranking_finds_failures_first() {
        let ds = three_pipe_dataset();
        // Pipe 0 fails in 2009; rank it first.
        let curve = DetectionCurve::by_count(
            &ranking(&[0, 1, 2]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        assert_eq!(curve.len(), 3);
        assert!((curve.ys()[0] - 1.0).abs() < 1e-12, "all failures at step 1");
        assert!((curve.y_at(1.0 / 3.0) - 1.0).abs() < 1e-12);
        // Worst ranking: failure found last.
        let bad = DetectionCurve::by_count(
            &ranking(&[2, 1, 0]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        assert_eq!(bad.y_at(0.5), 0.0);
        assert!((bad.y_at(1.0) - 1.0).abs() < 1e-12);
        assert!(curve.area(1.0) > bad.area(1.0));
    }

    #[test]
    fn area_of_perfect_vs_worst() {
        let ds = three_pipe_dataset();
        let perfect = DetectionCurve::by_count(
            &ranking(&[0, 1, 2]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        // y=1 from x=1/3 on: area = (2/3)·1 = 0.666…
        assert!((perfect.area(1.0) - 2.0 / 3.0).abs() < 1e-9);
        let worst = DetectionCurve::by_count(
            &ranking(&[2, 1, 0]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        assert!(worst.area(1.0) < 1e-9);
    }

    #[test]
    fn density_ordering_prefers_short_risky_pipes() {
        let ds = three_pipe_dataset();
        // Scores proportional to length: raw length ordering puts pipe 2
        // (300 m) first; density ordering ties → stable order by input.
        let ranking = RiskRanking::new(vec![
            RiskScore { pipe: PipeId(0), score: 1.0 },
            RiskScore { pipe: PipeId(1), score: 2.0 },
            RiskScore { pipe: PipeId(2), score: 3.0 },
        ]);
        let w = ObservationWindow::new(2009, 2009);
        let density = DetectionCurve::by_length_density(&ranking, &ds, w);
        // Densities: 1/100, 2/200, 3/300 all equal — curve still valid.
        assert_eq!(density.len(), 3);
        assert!((density.y_at(1.0) - 1.0).abs() < 1e-12);
        // Distinct densities: pipe 0 (score 2, 100 m) densest.
        let ranking = RiskRanking::new(vec![
            RiskScore { pipe: PipeId(0), score: 2.0 },
            RiskScore { pipe: PipeId(1), score: 2.0 },
            RiskScore { pipe: PipeId(2), score: 2.0 },
        ]);
        let density = DetectionCurve::by_length_density(&ranking, &ds, w);
        // Pipe 0 (the 2009 failure, 100 m) is inspected first: full
        // detection after 100/600 of the length.
        assert!((density.y_at(100.0 / 600.0 + 1e-9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn length_axis_weights_by_pipe_length() {
        let ds = three_pipe_dataset();
        let curve = DetectionCurve::by_length(
            &ranking(&[0, 1, 2]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        // Pipe 0 is 100 m of 100+200+300=600 m → first x is 1/6.
        assert!((curve.xs()[0] - 100.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn restricted_area_is_small_fraction() {
        let ds = three_pipe_dataset();
        let curve = DetectionCurve::by_count(
            &ranking(&[0, 1, 2]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        let a1 = curve.area(0.4);
        // y=1 after x=1/3; area(0.4) = (0.4−1/3)·1 = 0.0666…
        assert!((a1 - (0.4 - 1.0 / 3.0)).abs() < 1e-9);
        assert!(curve.area(0.0) == 0.0);
    }

    #[test]
    fn sample_is_monotone() {
        let ds = three_pipe_dataset();
        let curve = DetectionCurve::by_count(
            &ranking(&[1, 0, 2]),
            &ds,
            ObservationWindow::new(2009, 2009),
        );
        let pts = curve.sample(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
