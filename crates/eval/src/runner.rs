//! One entry point for the comparison experiments: fit every model on a
//! region and collect detection curves and AUCs (Fig 18.7, Table 18.3).

use crate::detection::DetectionCurve;
use crate::metrics::{auc_at_fraction, full_auc, mann_whitney_auc, to_basis_points};
use pipefail_baselines::cox::{CoxConfig, CoxModel};
use pipefail_baselines::time_models::{TimeModel, TimeModelKind};
use pipefail_baselines::weibull_nhpp::{WeibullNhpp, WeibullNhppConfig};
use pipefail_core::dpmhbp::{Dpmhbp, DpmhbpConfig};
use pipefail_core::hbp::{GroupingScheme, Hbp, HbpConfig};
use pipefail_core::model::FailureModel;
use pipefail_core::ranking::{RankSvm, RankSvmConfig};
use pipefail_core::Result;
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::TrainTestSplit;

/// The models compared in §18.4.3 (plus the early time models and the
/// ICDE-faithful evolution-strategy ranker as extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The proposed Dirichlet-process mixture of HBPs.
    Dpmhbp,
    /// HBP with a fixed grouping scheme.
    Hbp(GroupingScheme),
    /// Cox proportional hazards.
    Cox,
    /// Weibull NHPP.
    Weibull,
    /// Pairwise-hinge linear ranker (RankSVM).
    RankSvm,
    /// Direct-AUC evolution-strategy ranker (ICDE'13 Eq. 18.10).
    RankSvmEs,
    /// Time-exponential early model.
    TimeExp,
    /// Time-power early model.
    TimePow,
    /// Time-linear early model.
    TimeLin,
}

impl ModelKind {
    /// The paper's five compared methods (best HBP grouping chosen per the
    /// paper by material).
    pub fn paper_five() -> Vec<ModelKind> {
        vec![
            ModelKind::Dpmhbp,
            ModelKind::Hbp(GroupingScheme::Material),
            ModelKind::Cox,
            ModelKind::RankSvm,
            ModelKind::Weibull,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn display(&self) -> String {
        match self {
            ModelKind::Dpmhbp => "DPMHBP".into(),
            ModelKind::Hbp(g) => format!("HBP[{}]", g.label()),
            ModelKind::Cox => "Cox".into(),
            ModelKind::Weibull => "Weibull".into(),
            ModelKind::RankSvm => "SVM".into(),
            ModelKind::RankSvmEs => "SVM-ES".into(),
            ModelKind::TimeExp => "TimeExp".into(),
            ModelKind::TimePow => "TimePow".into(),
            ModelKind::TimeLin => "TimeLin".into(),
        }
    }

    /// Instantiate the model; `fast` selects reduced MCMC/SGD effort for
    /// tests and benches.
    pub fn build(&self, fast: bool) -> Box<dyn FailureModel> {
        match self {
            ModelKind::Dpmhbp => Box::new(Dpmhbp::new(if fast {
                DpmhbpConfig::fast()
            } else {
                DpmhbpConfig::default()
            })),
            ModelKind::Hbp(g) => {
                let mut cfg = if fast { HbpConfig::fast() } else { HbpConfig::default() };
                cfg.grouping = *g;
                Box::new(Hbp::new(cfg))
            }
            ModelKind::Cox => Box::new(CoxModel::new(CoxConfig::default())),
            ModelKind::Weibull => Box::new(WeibullNhpp::new(WeibullNhppConfig::default())),
            ModelKind::RankSvm => Box::new(RankSvm::new(if fast {
                RankSvmConfig::fast()
            } else {
                RankSvmConfig::default()
            })),
            ModelKind::RankSvmEs => Box::new(RankSvm::new(RankSvmConfig::evolution())),
            ModelKind::TimeExp => Box::new(TimeModel::new(TimeModelKind::Exponential)),
            ModelKind::TimePow => Box::new(TimeModel::new(TimeModelKind::Power)),
            ModelKind::TimeLin => Box::new(TimeModel::new(TimeModelKind::Linear)),
        }
    }
}

/// Evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Reduced model effort (short MCMC schedules).
    pub fast: bool,
    /// Pipe class to evaluate (the paper: critical water mains).
    pub class: PipeClass,
    /// Restricted inspection budget for the AUC(x%) column (the paper: 1%).
    pub restricted_budget: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            fast: false,
            class: PipeClass::Critical,
            restricted_budget: 0.01,
        }
    }
}

impl RunConfig {
    /// Fast configuration for tests/benches.
    pub fn fast() -> Self {
        Self {
            fast: true,
            ..Self::default()
        }
    }
}

/// One model's evaluation on one region.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// Display name.
    pub model: String,
    /// Detection curve with the pipe-count budget axis (Fig 18.7).
    pub curve_count: DetectionCurve,
    /// Detection curve with the network-length budget axis (Fig 18.8).
    pub curve_length: DetectionCurve,
    /// Length-budget curve with risk-density (score/metre) ordering — the
    /// greedy inspection plan for a km budget (Fig 18.8 companion).
    pub curve_length_density: DetectionCurve,
    /// AUC over the full budget (Table 18.3, row "AUC (100%)").
    pub auc_full: f64,
    /// AUC up to the restricted budget, in basis points (row "AUC (1%)").
    pub auc_restricted_bp: f64,
    /// Mann–Whitney AUC against test-window labels (cross-check).
    pub mann_whitney: Option<f64>,
}

/// All models' evaluations on one region.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// Region name.
    pub region: String,
    /// Per-model results in input order.
    pub models: Vec<ModelResult>,
}

impl RegionResult {
    /// Result for a model by display name.
    pub fn model(&self, name: &str) -> Option<&ModelResult> {
        self.models.iter().find(|m| m.model == name)
    }
}

/// Fit and evaluate every `model` on `dataset`.
pub fn evaluate_region(
    dataset: &Dataset,
    split: &TrainTestSplit,
    models: &[ModelKind],
    config: RunConfig,
    seed: u64,
) -> Result<RegionResult> {
    let mut out = Vec::with_capacity(models.len());
    for kind in models {
        let mut model = kind.build(config.fast);
        let ranking = model.fit_rank_class(dataset, split, config.class, seed)?;
        let curve_count = DetectionCurve::by_count(&ranking, dataset, split.test);
        let curve_length = DetectionCurve::by_length(&ranking, dataset, split.test);
        let curve_length_density =
            DetectionCurve::by_length_density(&ranking, dataset, split.test);
        out.push(ModelResult {
            model: kind.display(),
            auc_full: full_auc(&curve_count),
            // Table 18.3's restricted row is "when 1% of CWMs are
            // inspected" — a pipe-count budget; Fig 18.8's length budget is
            // served by `curve_length`.
            auc_restricted_bp: to_basis_points(auc_at_fraction(
                &curve_count,
                config.restricted_budget,
            )),
            mann_whitney: mann_whitney_auc(&ranking, dataset, split.test),
            curve_count,
            curve_length,
            curve_length_density,
        });
    }
    Ok(RegionResult {
        region: dataset.name().to_string(),
        models: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_synth::WorldConfig;

    #[test]
    fn evaluates_all_paper_models_on_demo_region() {
        // Scale/seed chosen so the test year has CWM failures (tiny worlds
        // often have none in a single year, which makes every AUC trivially
        // zero).
        let world = WorldConfig::paper()
            .scaled(0.04)
            .only_region("Region A")
            .build(5);
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        assert!(
            ds.failures_in(split.test, Some(PipeClass::Critical), None)
                .count()
                > 0,
            "fixture must have test-year CWM failures"
        );
        let result =
            evaluate_region(ds, &split, &ModelKind::paper_five(), RunConfig::fast(), 7).unwrap();
        assert_eq!(result.models.len(), 5);
        for m in &result.models {
            assert!(
                m.auc_full > 0.0 && m.auc_full < 1.0,
                "{}: auc {}",
                m.model,
                m.auc_full
            );
            assert!(m.auc_restricted_bp >= 0.0);
            assert!(!m.curve_count.is_empty());
        }
        assert!(result.model("DPMHBP").is_some());
        assert!(result.model("nonexistent").is_none());
    }

    #[test]
    fn model_kind_display_names() {
        assert_eq!(ModelKind::Dpmhbp.display(), "DPMHBP");
        assert_eq!(
            ModelKind::Hbp(GroupingScheme::Material).display(),
            "HBP[material]"
        );
        assert_eq!(ModelKind::paper_five().len(), 5);
    }
}
