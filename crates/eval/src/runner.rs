//! One entry point for the comparison experiments: fit every model on a
//! region and collect detection curves and AUCs (Fig 18.7, Table 18.3).

use crate::detection::DetectionCurve;
use crate::metrics::{auc_at_fraction, full_auc, mann_whitney_auc, to_basis_points};
use pipefail_baselines::cox::{CoxConfig, CoxModel};
use pipefail_baselines::time_models::{TimeModel, TimeModelKind};
use pipefail_baselines::weibull_nhpp::{WeibullNhpp, WeibullNhppConfig};
use pipefail_core::dpmhbp::{Dpmhbp, DpmhbpConfig};
use pipefail_core::hbp::{GroupingScheme, Hbp, HbpConfig};
use pipefail_core::model::{FailureModel, RiskRanking};
use pipefail_core::ranking::{RankSvm, RankSvmConfig};
use pipefail_core::{CoreError, Result};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::TrainTestSplit;
use pipefail_par::TaskPool;
use pipefail_stats::rng::derive_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// The models compared in §18.4.3 (plus the early time models and the
/// ICDE-faithful evolution-strategy ranker as extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The proposed Dirichlet-process mixture of HBPs.
    Dpmhbp,
    /// HBP with a fixed grouping scheme.
    Hbp(GroupingScheme),
    /// Cox proportional hazards.
    Cox,
    /// Weibull NHPP.
    Weibull,
    /// Pairwise-hinge linear ranker (RankSVM).
    RankSvm,
    /// Direct-AUC evolution-strategy ranker (ICDE'13 Eq. 18.10).
    RankSvmEs,
    /// Time-exponential early model.
    TimeExp,
    /// Time-power early model.
    TimePow,
    /// Time-linear early model.
    TimeLin,
}

impl ModelKind {
    /// The paper's five compared methods (best HBP grouping chosen per the
    /// paper by material).
    pub fn paper_five() -> Vec<ModelKind> {
        vec![
            ModelKind::Dpmhbp,
            ModelKind::Hbp(GroupingScheme::Material),
            ModelKind::Cox,
            ModelKind::RankSvm,
            ModelKind::Weibull,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn display(&self) -> String {
        match self {
            ModelKind::Dpmhbp => "DPMHBP".into(),
            ModelKind::Hbp(g) => format!("HBP[{}]", g.label()),
            ModelKind::Cox => "Cox".into(),
            ModelKind::Weibull => "Weibull".into(),
            ModelKind::RankSvm => "SVM".into(),
            ModelKind::RankSvmEs => "SVM-ES".into(),
            ModelKind::TimeExp => "TimeExp".into(),
            ModelKind::TimePow => "TimePow".into(),
            ModelKind::TimeLin => "TimeLin".into(),
        }
    }

    /// Instantiate the model; `fast` selects reduced MCMC/SGD effort for
    /// tests and benches.
    pub fn build(&self, fast: bool) -> Box<dyn FailureModel> {
        self.build_with_budget(fast, None)
    }

    /// Like [`ModelKind::build`], but wires a wall-clock budget (seconds)
    /// into the MCMC chain-health monitor of the sampling models, so a hung
    /// chain surfaces `McmcError::Timeout` instead of running forever. The
    /// closed-form baselines ignore the budget (they are effectively
    /// instantaneous).
    pub fn build_with_budget(&self, fast: bool, budget_secs: Option<f64>) -> Box<dyn FailureModel> {
        match self {
            ModelKind::Dpmhbp => {
                let mut cfg = if fast { DpmhbpConfig::fast() } else { DpmhbpConfig::default() };
                if let Some(b) = budget_secs {
                    cfg.health = cfg.health.with_budget_secs(b);
                }
                Box::new(Dpmhbp::new(cfg))
            }
            ModelKind::Hbp(g) => {
                let mut cfg = if fast { HbpConfig::fast() } else { HbpConfig::default() };
                cfg.grouping = *g;
                if let Some(b) = budget_secs {
                    cfg.health = cfg.health.with_budget_secs(b);
                }
                Box::new(Hbp::new(cfg))
            }
            ModelKind::Cox => Box::new(CoxModel::new(CoxConfig::default())),
            ModelKind::Weibull => Box::new(WeibullNhpp::new(WeibullNhppConfig::default())),
            ModelKind::RankSvm => Box::new(RankSvm::new(if fast {
                RankSvmConfig::fast()
            } else {
                RankSvmConfig::default()
            })),
            ModelKind::RankSvmEs => Box::new(RankSvm::new(RankSvmConfig::evolution())),
            ModelKind::TimeExp => Box::new(TimeModel::new(TimeModelKind::Exponential)),
            ModelKind::TimePow => Box::new(TimeModel::new(TimeModelKind::Power)),
            ModelKind::TimeLin => Box::new(TimeModel::new(TimeModelKind::Linear)),
        }
    }
}

/// Recovery policy for failed model fits.
///
/// A chain that diverges, gets stuck, or exhausts its wall-clock budget is
/// restarted with a jittered initialisation: the retry reseeds the fit from a
/// sub-seed of the original seed (via [`pipefail_stats::rng::derive_seed`]),
/// which perturbs every initial draw while keeping the whole experiment a
/// pure function of the master seed. Retries are bounded both by attempt
/// count and by a per-model wall-clock budget; when both are exhausted the
/// model is reported as failed and evaluation of the remaining models
/// continues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failed fit (0 disables retries).
    pub max_retries: usize,
    /// Per-model wall-clock budget in seconds across *all* attempts;
    /// `f64::INFINITY` disables the budget. The remaining budget is also
    /// wired into the MCMC chain-health monitor so a hung chain times out
    /// from the inside rather than blocking the runner.
    pub budget_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            budget_secs: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// No retries, no budget: a failing model fails on its first attempt.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            budget_secs: f64::INFINITY,
        }
    }

    /// Read the policy from the environment:
    /// `PIPEFAIL_MAX_RETRIES` (default 2) and
    /// `PIPEFAIL_MODEL_BUDGET_SECS` (default unlimited). Unparseable values
    /// fall back to the defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let max_retries = std::env::var("PIPEFAIL_MAX_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_retries);
        let budget_secs = std::env::var("PIPEFAIL_MODEL_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|b| *b > 0.0)
            .unwrap_or(defaults.budget_secs);
        Self {
            max_retries,
            budget_secs,
        }
    }
}

/// Evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Reduced model effort (short MCMC schedules).
    pub fast: bool,
    /// Pipe class to evaluate (the paper: critical water mains).
    pub class: PipeClass,
    /// Restricted inspection budget for the AUC(x%) column (the paper: 1%).
    pub restricted_budget: f64,
    /// Recovery policy for failed fits.
    pub retry: RetryPolicy,
    /// Worker threads for the model/replicate fan-out; `0` defers to
    /// `PIPEFAIL_THREADS` (and machine auto-sizing). Results are
    /// byte-identical at any value — every fit is a pure function of
    /// `(data, config, seed)` and threads only change the work partition.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            fast: false,
            class: PipeClass::Critical,
            restricted_budget: 0.01,
            retry: RetryPolicy::default(),
            threads: 0,
        }
    }
}

impl RunConfig {
    /// Fast configuration for tests/benches.
    pub fn fast() -> Self {
        Self {
            fast: true,
            ..Self::default()
        }
    }

    /// This configuration with an explicit worker-thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// The task pool this configuration fans out on.
    pub fn pool(&self) -> TaskPool {
        if self.threads == 0 {
            TaskPool::from_env()
        } else {
            TaskPool::new(self.threads)
        }
    }
}

/// One model's evaluation on one region.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResult {
    /// Display name.
    pub model: String,
    /// Detection curve with the pipe-count budget axis (Fig 18.7).
    pub curve_count: DetectionCurve,
    /// Detection curve with the network-length budget axis (Fig 18.8).
    pub curve_length: DetectionCurve,
    /// Length-budget curve with risk-density (score/metre) ordering — the
    /// greedy inspection plan for a km budget (Fig 18.8 companion).
    pub curve_length_density: DetectionCurve,
    /// AUC over the full budget (Table 18.3, row "AUC (100%)").
    pub auc_full: f64,
    /// AUC up to the restricted budget, in basis points (row "AUC (1%)").
    pub auc_restricted_bp: f64,
    /// Mann–Whitney AUC against test-window labels (cross-check).
    pub mann_whitney: Option<f64>,
}

/// The outcome of fitting one model (with retries) on one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitReport {
    /// Display name.
    pub model: String,
    /// Total fit attempts made (1 = succeeded or failed first try).
    pub attempts: usize,
    /// `Some(message)` when all attempts failed; `None` on success.
    pub error: Option<String>,
}

impl FitReport {
    /// True when some attempt produced a ranking.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }

    /// True when the model needed more than one attempt (regardless of the
    /// final outcome).
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }
}

/// All models' evaluations on one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionResult {
    /// Region name.
    pub region: String,
    /// Per-model results for the models that fit successfully, in input
    /// order (failed models are absent here — see `fits`).
    pub models: Vec<ModelResult>,
    /// Per-model fit outcome for *every* requested model, in input order.
    pub fits: Vec<FitReport>,
}

impl RegionResult {
    /// Result for a model by display name.
    pub fn model(&self, name: &str) -> Option<&ModelResult> {
        self.models.iter().find(|m| m.model == name)
    }

    /// True when every requested model produced a ranking.
    pub fn all_succeeded(&self) -> bool {
        self.fits.iter().all(FitReport::succeeded)
    }

    /// Display names of the models whose every attempt failed.
    pub fn failed_models(&self) -> Vec<&str> {
        self.fits
            .iter()
            .filter(|f| !f.succeeded())
            .map(|f| f.model.as_str())
            .collect()
    }

    /// Number of models that needed more than one attempt.
    pub fn retried_count(&self) -> usize {
        self.fits.iter().filter(|f| f.retried()).count()
    }
}

/// Stream offset for retry sub-seeds, far from the small stream ids the
/// replicate machinery uses, so a retried fit never collides with another
/// component's RNG stream.
const RETRY_STREAM_BASE: u64 = 0x0052_4554_5259; // "RETRY"

/// Fit `kind` on `dataset` under the recovery policy in `config.retry`.
///
/// Attempt 0 uses `seed` unchanged (so a clean run is byte-identical to the
/// pre-retry behaviour); attempt `k > 0` reseeds from
/// `derive_seed(seed, RETRY_STREAM_BASE + k)`, which jitters the chain's
/// initialisation away from whatever poisoned the previous attempt. A panic
/// inside a model is caught and treated as a failed attempt, so one broken
/// baseline cannot abort a whole experiment sweep.
///
/// Returns the ranking of the first successful attempt plus the report, or
/// the report alone when the attempt/wall-clock budget is exhausted.
pub fn fit_with_retry(
    kind: ModelKind,
    dataset: &Dataset,
    split: &TrainTestSplit,
    config: RunConfig,
    seed: u64,
) -> (Option<RiskRanking>, FitReport) {
    fit_with_retry_using(
        kind.display(),
        |budget| kind.build_with_budget(config.fast, budget),
        dataset,
        split,
        config,
        seed,
    )
}

/// Retry engine behind [`fit_with_retry`], generic over the model builder so
/// tests can inject deterministic-failure models.
fn fit_with_retry_using(
    name: String,
    mut build: impl FnMut(Option<f64>) -> Box<dyn FailureModel>,
    dataset: &Dataset,
    split: &TrainTestSplit,
    config: RunConfig,
    seed: u64,
) -> (Option<RiskRanking>, FitReport) {
    let policy = config.retry;
    let started = Instant::now();
    let mut attempts = 0;
    let mut last_error = String::from("no fit attempted");
    while attempts <= policy.max_retries {
        let remaining = policy.budget_secs - started.elapsed().as_secs_f64();
        if attempts > 0 && remaining <= 0.0 {
            last_error = format!(
                "wall-clock budget of {:.1}s exhausted after {attempts} attempt(s); last error: {last_error}",
                policy.budget_secs
            );
            break;
        }
        let attempt_seed = if attempts == 0 {
            seed
        } else {
            derive_seed(seed, RETRY_STREAM_BASE + attempts as u64)
        };
        let budget = remaining.is_finite().then_some(remaining);
        let mut model = build(budget);
        attempts += 1;
        let fit = catch_unwind(AssertUnwindSafe(|| {
            model.fit_rank_class(dataset, split, config.class, attempt_seed)
        }));
        match fit {
            Ok(Ok(ranking)) => {
                return (
                    Some(ranking),
                    FitReport {
                        model: name,
                        attempts,
                        error: None,
                    },
                );
            }
            Ok(Err(e)) => last_error = e.to_string(),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                last_error = format!("model panicked: {msg}");
            }
        }
    }
    (
        None,
        FitReport {
            model: name,
            attempts,
            error: Some(last_error),
        },
    )
}

/// Fit and evaluate every `model` on `dataset`.
///
/// A model whose every attempt fails (see [`RetryPolicy`]) is recorded in
/// [`RegionResult::fits`] and skipped; the remaining models still evaluate.
/// The outer `Result` is kept for source compatibility — this function no
/// longer aborts on a model failure.
pub fn evaluate_region(
    dataset: &Dataset,
    split: &TrainTestSplit,
    models: &[ModelKind],
    config: RunConfig,
    seed: u64,
) -> Result<RegionResult> {
    // Each model fit is a pure function of `(dataset, split, config, seed)`,
    // so fanning the loop out over a task pool cannot change any result —
    // only the wall clock. Curves and AUCs are computed inside the task (they
    // are per-model work too), and the pool returns slots in input order.
    let evaluated = config.pool().run(models.len(), |m| {
        let kind = models[m];
        let (ranking, report) = fit_with_retry(kind, dataset, split, config, seed);
        let result = ranking.map(|ranking| {
            let curve_count = DetectionCurve::by_count(&ranking, dataset, split.test);
            let curve_length = DetectionCurve::by_length(&ranking, dataset, split.test);
            let curve_length_density =
                DetectionCurve::by_length_density(&ranking, dataset, split.test);
            ModelResult {
                model: kind.display(),
                auc_full: full_auc(&curve_count),
                // Table 18.3's restricted row is "when 1% of CWMs are
                // inspected" — a pipe-count budget; Fig 18.8's length budget
                // is served by `curve_length`.
                auc_restricted_bp: to_basis_points(auc_at_fraction(
                    &curve_count,
                    config.restricted_budget,
                )),
                mann_whitney: mann_whitney_auc(&ranking, dataset, split.test),
                curve_count,
                curve_length,
                curve_length_density,
            }
        });
        (result, report)
    });
    let mut out = Vec::with_capacity(models.len());
    let mut fits = Vec::with_capacity(models.len());
    for (result, report) in evaluated {
        fits.push(report);
        out.extend(result);
    }
    Ok(RegionResult {
        region: dataset.name().to_string(),
        models: out,
        fits,
    })
}

/// Like [`evaluate_region`] but *strict*: any model failure is an error
/// (`CoreError::DataFault` naming the failed models). Used where downstream
/// alignment requires every model's result.
pub fn evaluate_region_strict(
    dataset: &Dataset,
    split: &TrainTestSplit,
    models: &[ModelKind],
    config: RunConfig,
    seed: u64,
) -> Result<RegionResult> {
    let result = evaluate_region(dataset, split, models, config, seed)?;
    if result.all_succeeded() {
        Ok(result)
    } else {
        let detail: Vec<String> = result
            .fits
            .iter()
            .filter(|f| !f.succeeded())
            .map(|f| {
                format!(
                    "{} ({} attempt(s): {})",
                    f.model,
                    f.attempts,
                    f.error.as_deref().unwrap_or("unknown")
                )
            })
            .collect();
        Err(CoreError::DataFault(format!(
            "models failed on {}: {}",
            result.region,
            detail.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_synth::WorldConfig;

    #[test]
    fn evaluates_all_paper_models_on_demo_region() {
        // Scale/seed chosen so the test year has CWM failures (tiny worlds
        // often have none in a single year, which makes every AUC trivially
        // zero).
        let world = WorldConfig::paper()
            .scaled(0.04)
            .only_region("Region A")
            .build(5);
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        assert!(
            ds.failures_in(split.test, Some(PipeClass::Critical), None)
                .count()
                > 0,
            "fixture must have test-year CWM failures"
        );
        let result =
            evaluate_region(ds, &split, &ModelKind::paper_five(), RunConfig::fast(), 7).unwrap();
        assert_eq!(result.models.len(), 5);
        for m in &result.models {
            assert!(
                m.auc_full > 0.0 && m.auc_full < 1.0,
                "{}: auc {}",
                m.model,
                m.auc_full
            );
            assert!(m.auc_restricted_bp >= 0.0);
            assert!(!m.curve_count.is_empty());
        }
        assert!(result.model("DPMHBP").is_some());
        assert!(result.model("nonexistent").is_none());
    }

    #[test]
    fn model_kind_display_names() {
        assert_eq!(ModelKind::Dpmhbp.display(), "DPMHBP");
        assert_eq!(
            ModelKind::Hbp(GroupingScheme::Material).display(),
            "HBP[material]"
        );
        assert_eq!(ModelKind::paper_five().len(), 5);
    }

    fn tiny_world() -> pipefail_synth::World {
        WorldConfig::paper().scaled(0.02).only_region("Region A").build(5)
    }

    #[test]
    fn diverged_chain_is_retried_with_a_jittered_seed() {
        let world = tiny_world();
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let seeds = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seeds_for_build = seeds.clone();
        let (ranking, report) = fit_with_retry_using(
            "flaky".into(),
            move |_budget| {
                // A fresh model per attempt, like the real builder; the
                // shared log collects the seed of every attempt.
                Box::new(SeedLogger {
                    fail_on_seed: 7,
                    log: seeds_for_build.clone(),
                })
            },
            ds,
            &split,
            RunConfig::fast(),
            7,
        );
        assert!(ranking.is_some(), "jittered retry should succeed");
        assert!(report.succeeded());
        assert!(report.retried(), "first attempt fails on the master seed");
        assert_eq!(report.attempts, 2);
        let seen = seeds.borrow();
        assert_eq!(seen[0], 7, "attempt 0 must use the master seed");
        assert_ne!(seen[1], 7, "the retry must reseed");
        assert_eq!(
            seen[1],
            derive_seed(7, RETRY_STREAM_BASE + 1),
            "retry sub-seed is a pure function of the master seed"
        );
    }

    /// Like [`FlakyModel`] but logging into a shared cell so the test can
    /// observe seeds across the per-attempt rebuilds.
    struct SeedLogger {
        fail_on_seed: u64,
        log: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
    }

    impl FailureModel for SeedLogger {
        fn name(&self) -> &'static str {
            "seed-logger"
        }

        fn fit_rank_class(
            &mut self,
            _dataset: &Dataset,
            _split: &TrainTestSplit,
            _class: PipeClass,
            seed: u64,
        ) -> Result<RiskRanking> {
            self.log.borrow_mut().push(seed);
            if seed == self.fail_on_seed {
                Err(CoreError::Chain(pipefail_core::McmcError::ChainDiverged {
                    sweep: 3,
                    divergences: 40,
                }))
            } else {
                Ok(RiskRanking::new(vec![]))
            }
        }
    }

    struct AlwaysPanics;

    impl FailureModel for AlwaysPanics {
        fn name(&self) -> &'static str {
            "panics"
        }

        fn fit_rank_class(
            &mut self,
            _dataset: &Dataset,
            _split: &TrainTestSplit,
            _class: PipeClass,
            _seed: u64,
        ) -> Result<RiskRanking> {
            panic!("boom in model code")
        }
    }

    #[test]
    fn panicking_model_degrades_to_a_failure_report() {
        let world = tiny_world();
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let mut run = RunConfig::fast();
        run.retry = RetryPolicy {
            max_retries: 1,
            budget_secs: f64::INFINITY,
        };
        let (ranking, report) = fit_with_retry_using(
            "panics".into(),
            |_budget| Box::new(AlwaysPanics),
            ds,
            &split,
            run,
            7,
        );
        assert!(ranking.is_none());
        assert_eq!(report.attempts, 2, "one retry after the panic");
        let err = report.error.expect("failure recorded");
        assert!(err.contains("panicked") && err.contains("boom"), "{err}");
    }

    /// A model that burns `delay` of wall clock per attempt and always fails
    /// — the fixture for budget-bound retry tests. The tunable delay keeps
    /// the test fast while still giving the budget something to measure.
    struct SlowFailure {
        delay: std::time::Duration,
    }

    impl SlowFailure {
        fn with_millis(ms: u64) -> Self {
            Self {
                delay: std::time::Duration::from_millis(ms),
            }
        }
    }

    impl FailureModel for SlowFailure {
        fn name(&self) -> &'static str {
            "slow-failure"
        }

        fn fit_rank_class(
            &mut self,
            _dataset: &Dataset,
            _split: &TrainTestSplit,
            _class: PipeClass,
            _seed: u64,
        ) -> Result<RiskRanking> {
            std::thread::sleep(self.delay);
            Err(CoreError::FitFailed("still broken".into()))
        }
    }

    #[test]
    fn wall_clock_budget_bounds_the_retries() {
        let world = tiny_world();
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let mut run = RunConfig::fast();
        run.retry = RetryPolicy {
            max_retries: 1_000,
            budget_secs: 0.02,
        };
        let (ranking, report) = fit_with_retry_using(
            "slow-failure".into(),
            |_budget| Box::new(SlowFailure::with_millis(5)),
            ds,
            &split,
            run,
            7,
        );
        assert!(ranking.is_none());
        assert!(
            report.attempts < 100,
            "budget must stop retries long before the attempt cap: {}",
            report.attempts
        );
        let err = report.error.expect("failure recorded");
        assert!(err.contains("wall-clock budget"), "{err}");
        assert!(err.contains("still broken"), "last error preserved: {err}");
    }

    #[test]
    fn evaluate_region_continues_past_a_failed_model() {
        let world = tiny_world();
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let mut run = RunConfig::fast();
        // A microscopic budget makes the DPMHBP chain time out from the
        // inside; the closed-form time model ignores the budget and fits.
        run.retry = RetryPolicy {
            max_retries: 2,
            budget_secs: 1e-4,
        };
        let result = evaluate_region(
            ds,
            &split,
            &[ModelKind::Dpmhbp, ModelKind::TimeExp],
            run,
            7,
        )
        .unwrap();
        assert_eq!(result.fits.len(), 2);
        assert!(!result.all_succeeded());
        assert_eq!(result.failed_models(), vec!["DPMHBP"]);
        assert!(result.model("TimeExp").is_some(), "survivor still evaluated");
        assert!(result.model("DPMHBP").is_none());
        let strict = evaluate_region_strict(
            ds,
            &split,
            &[ModelKind::Dpmhbp, ModelKind::TimeExp],
            run,
            7,
        );
        assert!(matches!(strict, Err(CoreError::DataFault(_))));
    }

    #[test]
    fn identical_seeds_replay_identical_rankings() {
        // The determinism guard behind checkpoint/resume: a clean fit is a
        // pure function of (data, config, seed), bit for bit.
        let world = tiny_world();
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let (r1, rep1) = fit_with_retry(ModelKind::Dpmhbp, ds, &split, RunConfig::fast(), 9);
        let (r2, rep2) = fit_with_retry(ModelKind::Dpmhbp, ds, &split, RunConfig::fast(), 9);
        assert_eq!(rep1.attempts, 1);
        assert_eq!(rep2.attempts, 1);
        assert_eq!(
            r1.expect("clean fit"),
            r2.expect("clean fit"),
            "same seed must replay byte-identical scores"
        );
    }

    #[test]
    fn retry_policy_env_parsing() {
        // Temporarily set the knobs; tests in this binary run in threads of
        // one process, so restore them to avoid cross-test pollution.
        std::env::set_var("PIPEFAIL_MAX_RETRIES", "5");
        std::env::set_var("PIPEFAIL_MODEL_BUDGET_SECS", "12.5");
        let p = RetryPolicy::from_env();
        std::env::remove_var("PIPEFAIL_MAX_RETRIES");
        std::env::remove_var("PIPEFAIL_MODEL_BUDGET_SECS");
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.budget_secs, 12.5);
        let d = RetryPolicy::from_env();
        assert_eq!(d, RetryPolicy::default());
    }
}
