//! Replicated runs and the paired significance tests of Table 18.4.
//!
//! The paper reports one-sided paired t-tests at the 5% level comparing the
//! proposed model's AUC against each baseline. Our substitute for the
//! paper's multiple real regions/years is a set of seeded replicate worlds:
//! each replicate regenerates the synthetic region and re-fits every model,
//! giving the matched samples the paired test needs. Replicates run in
//! parallel on a [`pipefail_par::TaskPool`]; the static partitioning keeps
//! every metric byte-identical at any thread count.

use crate::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail_network::split::TrainTestSplit;
use pipefail_stats::hypothesis::{paired_t_test, Alternative, TTestResult};
use pipefail_synth::WorldConfig;

/// AUC samples per model across replicates.
#[derive(Debug, Clone)]
pub struct ReplicateAucs {
    /// Model display names, in input order.
    pub models: Vec<String>,
    /// `aucs_full[m][r]` = full-budget AUC of model `m` in replicate `r`.
    pub aucs_full: Vec<Vec<f64>>,
    /// Same for the restricted budget (basis points).
    pub aucs_restricted: Vec<Vec<f64>>,
    /// Fraction of test-year failures detected within 1% of CWM *length*
    /// (the Fig 18.8 statistic), per model per replicate.
    pub detect_1pct_length: Vec<Vec<f64>>,
    /// Same statistic under risk-density (score/metre) ordering — the
    /// greedy inspection plan for a length budget.
    pub detect_1pct_density: Vec<Vec<f64>>,
}

impl ReplicateAucs {
    /// Replicate mean of a metric matrix row.
    pub fn mean_of(samples: &[f64]) -> f64 {
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        }
    }
}

/// Run `replicates` seeded worlds of `region_config` and evaluate `models`
/// on each, in parallel.
pub fn replicate_aucs(
    region_config: &WorldConfig,
    models: &[ModelKind],
    run: RunConfig,
    replicates: usize,
    base_seed: u64,
) -> ReplicateAucs {
    // Per-model metric tuple: (auc_full, auc_restricted_bp, %len@1%, %len-density@1%).
    type RepMetrics = Vec<(f64, f64, f64, f64)>;
    let split = TrainTestSplit::paper_protocol();
    let pool = run.pool();
    // Replicates are the outer (homogeneous-cost) axis, so the pool fans out
    // here; each replicate's inner `evaluate_region` runs serially to avoid
    // oversubscribing cores with nested pools.
    let inner = if pool.threads() > 1 {
        run.with_threads(1)
    } else {
        run
    };
    let results: Vec<Option<RepMetrics>> = pool.run(replicates, |rep| {
        let seed = base_seed.wrapping_add(rep as u64 * 1_000_003);
        let world = region_config.build(seed);
        let ds = &world.regions()[0];
        // The paired tests need every model in every replicate; a replicate
        // where any model fails (even after its retries) is dropped whole so
        // the samples stay aligned.
        match evaluate_region(ds, &split, models, inner, seed) {
            Ok(r) if r.all_succeeded() => Some(
                r.models
                    .iter()
                    .map(|m| {
                        (
                            m.auc_full,
                            m.auc_restricted_bp,
                            m.curve_length.y_at(0.01),
                            m.curve_length_density.y_at(0.01),
                        )
                    })
                    .collect(),
            ),
            Ok(r) => {
                eprintln!(
                    "[replicate {rep}] dropped: models failed: {}",
                    r.failed_models().join(", ")
                );
                None
            }
            Err(e) => {
                eprintln!("[replicate {rep}] dropped: {e}");
                None
            }
        }
    });

    let mut aucs_full = vec![Vec::with_capacity(replicates); models.len()];
    let mut aucs_restricted = vec![Vec::with_capacity(replicates); models.len()];
    let mut detect_1pct_length = vec![Vec::with_capacity(replicates); models.len()];
    let mut detect_1pct_density = vec![Vec::with_capacity(replicates); models.len()];
    for rep in results.into_iter().flatten() {
        for (m, (full, restr, det, den)) in rep.into_iter().enumerate() {
            aucs_full[m].push(full);
            aucs_restricted[m].push(restr);
            detect_1pct_length[m].push(det);
            detect_1pct_density[m].push(den);
        }
    }
    ReplicateAucs {
        models: models.iter().map(ModelKind::display).collect(),
        aucs_full,
        aucs_restricted,
        detect_1pct_length,
        detect_1pct_density,
    }
}

/// One row of Table 18.4: proposed vs one baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Baseline name.
    pub versus: String,
    /// Test on the full-budget AUCs.
    pub full: TTestResult,
    /// Test on the restricted-budget AUCs.
    pub restricted: TTestResult,
}

/// Paired one-sided t-tests of the first model (the proposed method)
/// against every other, on both AUC variants.
pub fn compare_first_against_rest(aucs: &ReplicateAucs) -> Vec<Comparison> {
    let proposed_full = &aucs.aucs_full[0];
    let proposed_restricted = &aucs.aucs_restricted[0];
    (1..aucs.models.len())
        .map(|m| Comparison {
            versus: aucs.models[m].clone(),
            full: paired_t_test(proposed_full, &aucs.aucs_full[m], Alternative::Greater)
                .expect("replicate vectors are aligned"),
            restricted: paired_t_test(
                proposed_restricted,
                &aucs.aucs_restricted[m],
                Alternative::Greater,
            )
            .expect("replicate vectors are aligned"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::hbp::GroupingScheme;

    #[test]
    fn replicates_produce_aligned_samples() {
        let cfg = WorldConfig::paper().scaled(0.012).only_region("Region A");
        let models = [ModelKind::Dpmhbp, ModelKind::Hbp(GroupingScheme::Material)];
        let aucs = replicate_aucs(&cfg, &models, RunConfig::fast(), 4, 31);
        assert_eq!(aucs.models.len(), 2);
        assert_eq!(aucs.aucs_full[0].len(), 4);
        assert_eq!(aucs.aucs_full[1].len(), 4);
        assert!(aucs.aucs_full.iter().flatten().all(|a| (0.0..=1.0).contains(a)));
        let comps = compare_first_against_rest(&aucs);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].versus, "HBP[material]");
        assert!(comps[0].full.p_value >= 0.0 && comps[0].full.p_value <= 1.0);
    }

    #[test]
    fn replicates_are_deterministic_in_seed() {
        let cfg = WorldConfig::paper().scaled(0.012).only_region("Region A");
        let models = [ModelKind::TimeExp];
        let a = replicate_aucs(&cfg, &models, RunConfig::fast(), 3, 7);
        let b = replicate_aucs(&cfg, &models, RunConfig::fast(), 3, 7);
        assert_eq!(a.aucs_full, b.aucs_full);
    }
}
