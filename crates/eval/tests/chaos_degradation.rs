//! Chaos-injection suite: every corruption in the fault matrix must yield a
//! typed `Err` from every `ModelKind` — zero panics.
//!
//! Faults come from `pipefail_synth::faults`. Referential faults are
//! intercepted at ingestion (`Dataset::new` / the CSV reader); latent value
//! faults pass construction and must be rejected by the shared fit-input
//! validation inside every model. Each fit runs under `catch_unwind` so an
//! `assert!` deep in a sampler shows up as a test failure, not an abort.

use pipefail_core::hbp::GroupingScheme;
use pipefail_core::CoreError;
use pipefail_eval::runner::{ModelKind, RunConfig};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::TrainTestSplit;
use pipefail_network::NetworkError;
use pipefail_synth::faults::{self, Fault};
use pipefail_synth::WorldConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Every model the runner can build — the paper's five plus the extensions.
fn all_model_kinds() -> Vec<ModelKind> {
    vec![
        ModelKind::Dpmhbp,
        ModelKind::Hbp(GroupingScheme::Material),
        ModelKind::Cox,
        ModelKind::Weibull,
        ModelKind::RankSvm,
        ModelKind::RankSvmEs,
        ModelKind::TimeExp,
        ModelKind::TimePow,
        ModelKind::TimeLin,
    ]
}

fn clean_region() -> Dataset {
    WorldConfig::paper()
        .scaled(0.02)
        .only_region("Region A")
        .build(11)
        .regions()[0]
        .clone()
}

/// Fit `kind` on `ds` inside `catch_unwind`; a panic is a test failure.
fn fit_no_panic(kind: ModelKind, ds: &Dataset, label: &str) -> Result<(), CoreError> {
    let split = TrainTestSplit::paper_protocol();
    let config = RunConfig::fast();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        kind.build(config.fast)
            .fit_rank_class(ds, &split, PipeClass::Critical, 17)
    }));
    match outcome {
        Ok(result) => result.map(|_| ()),
        Err(_) => panic!("{} PANICKED on fault {label}", kind.display()),
    }
}

#[test]
fn latent_faults_yield_typed_errors_from_every_model() {
    let clean = clean_region();
    for fault in Fault::all().into_iter().filter(Fault::is_latent) {
        let ds = faults::inject(&clean, fault)
            .unwrap_or_else(|e| panic!("{fault:?} should pass construction: {e}"));
        for kind in all_model_kinds() {
            let err = fit_no_panic(kind, &ds, &format!("{fault:?}"))
                .expect_err(&format!("{} must reject {fault:?}", kind.display()));
            match fault {
                Fault::EmptyEvaluationClass => assert!(
                    matches!(err, CoreError::EmptyEvaluationSet(_)),
                    "{}: {fault:?} → {err}",
                    kind.display()
                ),
                _ => assert!(
                    matches!(err, CoreError::DataFault(_)),
                    "{}: {fault:?} → {err}",
                    kind.display()
                ),
            }
        }
    }
}

#[test]
fn referential_faults_are_rejected_at_ingestion() {
    let clean = clean_region();
    for fault in Fault::all().into_iter().filter(|f| !f.is_latent()) {
        let err = faults::inject(&clean, fault)
            .expect_err(&format!("{fault:?} must not construct a dataset"));
        assert!(
            matches!(
                err,
                NetworkError::Invalid(_) | NetworkError::DanglingReference(_)
            ),
            "{fault:?} → {err}"
        );
    }
}

#[test]
fn truncated_csv_rows_are_a_typed_parse_error() {
    let clean = clean_region();
    let dir = std::env::temp_dir().join(format!("pipefail_chaos_{}", std::process::id()));
    let result = faults::truncated_csv_roundtrip(&clean, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        matches!(result, Err(NetworkError::Parse(_))),
        "expected a parse error, got {result:?}"
    );
}

/// The clean dataset really fits under every model — the fault matrix above
/// is not vacuous (models failing for unrelated reasons would also "pass").
#[test]
fn clean_dataset_fits_under_every_model() {
    let clean = clean_region();
    for kind in all_model_kinds() {
        fit_no_panic(kind, &clean, "clean")
            .unwrap_or_else(|e| panic!("{} failed on clean data: {e}", kind.display()));
    }
}
