//! The parallel fit engine's core guarantee, property-tested: thread count
//! is a pure performance knob. Every fit is a pure function of
//! `(data, config, seed)` and the task pool partitions work statically, so
//! the serial runner and the parallel runner must agree bit for bit —
//! rankings, curves, AUCs, and retry accounting alike.

use pipefail_core::hbp::GroupingScheme;
use pipefail_eval::runner::{evaluate_region, ModelKind, RunConfig};
use pipefail_eval::significance::replicate_aucs;
use pipefail_network::split::TrainTestSplit;
use pipefail_synth::WorldConfig;
use proptest::prelude::*;

/// A model mix covering both fit families: MCMC samplers (seed-sensitive,
/// retry-capable) and closed-form baselines (instantaneous).
fn model_mix() -> Vec<ModelKind> {
    vec![
        ModelKind::Dpmhbp,
        ModelKind::Hbp(GroupingScheme::Material),
        ModelKind::Cox,
        ModelKind::TimeExp,
    ]
}

proptest! {
    // Each case fits the model mix three times (threads = 1, 2, 4) on a
    // small world; a handful of random seeds is plenty to catch any
    // partition- or order-dependence.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `evaluate_region` at 2 and 4 threads replays the serial run
    /// byte-identically: same model results (curves and AUCs are pure
    /// functions of the rankings) and same fit reports.
    #[test]
    fn evaluate_region_is_thread_count_invariant(seed in 0u64..1_000_000) {
        let world = WorldConfig::paper()
            .scaled(0.02)
            .only_region("Region A")
            .build(5);
        let ds = &world.regions()[0];
        let split = TrainTestSplit::paper_protocol();
        let models = model_mix();
        let serial = evaluate_region(ds, &split, &models, RunConfig::fast().with_threads(1), seed)
            .expect("serial run");
        for threads in [2usize, 4] {
            let parallel = evaluate_region(
                ds,
                &split,
                &models,
                RunConfig::fast().with_threads(threads),
                seed,
            )
            .expect("parallel run");
            // Any divergence here means the partitioning leaked into the
            // results — the one thing the task pool promises never happens.
            prop_assert_eq!(&serial, &parallel);
        }
    }

    /// The replicate engine inherits the same guarantee: AUC samples and
    /// detection statistics are identical whether replicates run serially
    /// or fanned out.
    #[test]
    fn replicate_aucs_are_thread_count_invariant(base_seed in 0u64..1_000_000) {
        let cfg = WorldConfig::paper().scaled(0.012).only_region("Region A");
        let models = [ModelKind::TimeExp, ModelKind::Cox];
        let serial = replicate_aucs(&cfg, &models, RunConfig::fast().with_threads(1), 3, base_seed);
        for threads in [2usize, 4] {
            let parallel =
                replicate_aucs(&cfg, &models, RunConfig::fast().with_threads(threads), 3, base_seed);
            prop_assert_eq!(&serial.aucs_full, &parallel.aucs_full);
            prop_assert_eq!(&serial.aucs_restricted, &parallel.aucs_restricted);
            prop_assert_eq!(&serial.detect_1pct_length, &parallel.detect_1pct_length);
            prop_assert_eq!(&serial.detect_1pct_density, &parallel.detect_1pct_density);
        }
    }
}
