//! Sample storage for MCMC runs.

use pipefail_stats::descriptive::{self, Summary};

/// A recorded chain of scalar draws for one named quantity.
#[derive(Debug, Clone)]
pub struct Chain {
    name: String,
    draws: Vec<f64>,
}

impl Chain {
    /// Create an empty chain with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            draws: Vec::new(),
        }
    }

    /// Create a chain from existing draws.
    pub fn from_draws(name: impl Into<String>, draws: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            draws,
        }
    }

    /// Record one draw.
    pub fn push(&mut self, x: f64) {
        self.draws.push(x);
    }

    /// Chain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All recorded draws in order.
    pub fn draws(&self) -> &[f64] {
        &self.draws
    }

    /// Number of recorded draws.
    pub fn len(&self) -> usize {
        self.draws.len()
    }

    /// True if no draws were recorded.
    pub fn is_empty(&self) -> bool {
        self.draws.is_empty()
    }

    /// Posterior mean estimate.
    pub fn mean(&self) -> Option<f64> {
        descriptive::mean(&self.draws).ok()
    }

    /// Equal-tailed credible interval at mass `level` (e.g. 0.95).
    pub fn credible_interval(&self, level: f64) -> Option<(f64, f64)> {
        if self.draws.is_empty() || !(0.0 < level && level < 1.0) {
            return None;
        }
        let alpha = 1.0 - level;
        let lo = descriptive::quantile(&self.draws, alpha / 2.0).ok()?;
        let hi = descriptive::quantile(&self.draws, 1.0 - alpha / 2.0).ok()?;
        Some((lo, hi))
    }

    /// Five-number/moment summary.
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.draws).ok()
    }
}

/// A collection of named chains recorded by one sampler run.
#[derive(Debug, Clone, Default)]
pub struct ChainSet {
    chains: Vec<Chain>,
}

impl ChainSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the chain with the given name.
    pub fn chain_mut(&mut self, name: &str) -> &mut Chain {
        if let Some(i) = self.chains.iter().position(|c| c.name() == name) {
            &mut self.chains[i]
        } else {
            self.chains.push(Chain::new(name));
            self.chains.last_mut().expect("just pushed")
        }
    }

    /// Look up a chain by name.
    pub fn get(&self, name: &str) -> Option<&Chain> {
        self.chains.iter().find(|c| c.name() == name)
    }

    /// All chains.
    pub fn chains(&self) -> &[Chain] {
        &self.chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut c = Chain::new("q");
        for i in 1..=100 {
            c.push(i as f64);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.mean(), Some(50.5));
        let (lo, hi) = c.credible_interval(0.9).unwrap();
        assert!(lo > 1.0 && lo < 10.0);
        assert!(hi > 90.0 && hi < 100.0);
    }

    #[test]
    fn empty_chain_is_safe() {
        let c = Chain::new("empty");
        assert!(c.is_empty());
        assert_eq!(c.mean(), None);
        assert_eq!(c.credible_interval(0.95), None);
        assert!(c.summary().is_none());
    }

    #[test]
    fn chainset_get_or_create() {
        let mut s = ChainSet::new();
        s.chain_mut("a").push(1.0);
        s.chain_mut("b").push(2.0);
        s.chain_mut("a").push(3.0);
        assert_eq!(s.chains().len(), 2);
        assert_eq!(s.get("a").unwrap().len(), 2);
        assert_eq!(s.get("b").unwrap().len(), 1);
        assert!(s.get("c").is_none());
    }
}
