//! Chain convergence diagnostics: autocorrelation, effective sample size,
//! split-R̂ (Gelman–Rubin) and the Geweke score.

use pipefail_stats::descriptive::{mean, variance};

/// Autocorrelation of `xs` at `lag` (biased estimator, the standard choice
/// for ESS computation). Returns 0 for degenerate inputs.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let m = match mean(xs) {
        Ok(v) => v,
        Err(_) => return 0.0,
    };
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs[..n - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    num / denom
}

/// Effective sample size by Geyer's initial positive sequence: sum paired
/// autocorrelations `ρ_{2t} + ρ_{2t+1}` until the pair goes non-positive.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return n as f64;
    }
    let mut acf_sum = 0.0;
    let mut t = 1;
    while 2 * t + 1 < n {
        let pair = autocorrelation(xs, 2 * t - 1) + autocorrelation(xs, 2 * t);
        if pair <= 0.0 {
            break;
        }
        acf_sum += pair;
        t += 1;
    }
    let ess = n as f64 / (1.0 + 2.0 * acf_sum);
    ess.clamp(1.0, n as f64)
}

/// Split-R̂: fold one chain into halves and compute the Gelman–Rubin
/// potential scale-reduction factor. Values near 1.0 indicate convergence;
/// above ~1.05 the chain has not mixed.
pub fn split_r_hat(xs: &[f64]) -> f64 {
    let n = xs.len() / 2;
    if n < 2 {
        return f64::NAN;
    }
    let a = &xs[..n];
    let b = &xs[n..2 * n];
    r_hat_two(a, b)
}

/// R̂ for two chains of equal length.
pub fn r_hat_two(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return f64::NAN;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = mean(a).unwrap_or(0.0);
    let mb = mean(b).unwrap_or(0.0);
    let va = variance(a).unwrap_or(0.0);
    let vb = variance(b).unwrap_or(0.0);
    let w = 0.5 * (va + vb);
    if w == 0.0 {
        return 1.0; // constant chains: formally converged
    }
    let grand = 0.5 * (ma + mb);
    let bvar = n as f64 * ((ma - grand).powi(2) + (mb - grand).powi(2)); // m−1 = 1
    let var_plus = (n as f64 - 1.0) / n as f64 * w + bvar / n as f64;
    (var_plus / w).sqrt()
}

/// Geweke convergence score: z-statistic comparing the mean of the first
/// `frac_a` of the chain against the last `frac_b`. |z| > 2 suggests the
/// chain has not reached stationarity.
pub fn geweke(xs: &[f64], frac_a: f64, frac_b: f64) -> f64 {
    let n = xs.len();
    let na = (n as f64 * frac_a) as usize;
    let nb = (n as f64 * frac_b) as usize;
    if na < 2 || nb < 2 || na + nb > n {
        return f64::NAN;
    }
    let a = &xs[..na];
    let b = &xs[n - nb..];
    let ma = mean(a).unwrap_or(0.0);
    let mb = mean(b).unwrap_or(0.0);
    // Spectral-density-at-zero estimate via ESS-corrected variance.
    let se2_a = variance(a).unwrap_or(0.0) / effective_sample_size(a);
    let se2_b = variance(b).unwrap_or(0.0) / effective_sample_size(b);
    let denom = (se2_a + se2_b).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (ma - mb) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::dist::{Normal, Sampler};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn iid_chain_has_near_full_ess() {
        let mut rng = seeded_rng(50);
        let xs = Normal::standard().sample_n(&mut rng, 5_000);
        let ess = effective_sample_size(&xs);
        assert!(ess > 3_500.0, "ess {ess}");
    }

    #[test]
    fn ar1_chain_has_reduced_ess() {
        // AR(1) with φ = 0.9 has ESS ≈ n(1−φ)/(1+φ) ≈ n/19.
        let mut rng = seeded_rng(51);
        let n = 20_000;
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        let noise = Normal::standard();
        for _ in 0..n {
            x = 0.9 * x + noise.sample(&mut rng);
            xs.push(x);
        }
        let ess = effective_sample_size(&xs);
        let expected = n as f64 / 19.0;
        assert!(
            ess > expected * 0.5 && ess < expected * 2.0,
            "ess {ess} vs expected {expected}"
        );
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
        assert_eq!(autocorrelation(&xs, 10), 0.0);
    }

    #[test]
    fn r_hat_near_one_for_same_distribution() {
        let mut rng = seeded_rng(52);
        let xs = Normal::standard().sample_n(&mut rng, 4_000);
        let r = split_r_hat(&xs);
        assert!((r - 1.0).abs() < 0.02, "r_hat {r}");
    }

    #[test]
    fn r_hat_large_for_divergent_chains() {
        let mut rng = seeded_rng(53);
        let a = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, 1_000);
        let b = Normal::new(10.0, 1.0).unwrap().sample_n(&mut rng, 1_000);
        let r = r_hat_two(&a, &b);
        assert!(r > 2.0, "r_hat {r}");
    }

    #[test]
    fn geweke_flags_trend() {
        // Strong linear trend: early vs late means differ.
        let xs: Vec<f64> = (0..2_000).map(|i| i as f64 * 0.01).collect();
        let z = geweke(&xs, 0.1, 0.5);
        assert!(z.abs() > 3.0, "geweke {z}");
    }

    #[test]
    fn geweke_ok_for_stationary() {
        let mut rng = seeded_rng(54);
        let xs = Normal::standard().sample_n(&mut rng, 5_000);
        let z = geweke(&xs, 0.1, 0.5);
        assert!(z.abs() < 3.0, "geweke {z}");
    }

    #[test]
    fn constant_chain_edge_cases() {
        let xs = [2.0; 100];
        assert_eq!(autocorrelation(&xs, 3), 0.0);
        assert_eq!(split_r_hat(&xs), 1.0);
    }
}
