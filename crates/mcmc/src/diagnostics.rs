//! Chain convergence diagnostics: autocorrelation, effective sample size,
//! split-R̂ (Gelman–Rubin) and the Geweke score — plus [`ChainHealth`], the
//! *online* monitor the fit loops run every sweep to turn numerical trouble
//! (divergent draws, stuck chains, blown wall-clock budgets) into typed
//! [`McmcError`]s instead of silent garbage or panics.

use crate::error::McmcError;
use pipefail_stats::descriptive::{mean, variance};
use std::time::Instant;

/// Autocorrelation of `xs` at `lag` (biased estimator, the standard choice
/// for ESS computation). Returns 0 for degenerate inputs.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let m = match mean(xs) {
        Ok(v) => v,
        Err(_) => return 0.0,
    };
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs[..n - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    num / denom
}

/// Effective sample size by Geyer's initial positive sequence: sum paired
/// autocorrelations `ρ_{2t} + ρ_{2t+1}` until the pair goes non-positive.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return n as f64;
    }
    let mut acf_sum = 0.0;
    let mut t = 1;
    while 2 * t + 1 < n {
        let pair = autocorrelation(xs, 2 * t - 1) + autocorrelation(xs, 2 * t);
        if pair <= 0.0 {
            break;
        }
        acf_sum += pair;
        t += 1;
    }
    let ess = n as f64 / (1.0 + 2.0 * acf_sum);
    ess.clamp(1.0, n as f64)
}

/// Split-R̂: fold one chain into halves and compute the Gelman–Rubin
/// potential scale-reduction factor. Values near 1.0 indicate convergence;
/// above ~1.05 the chain has not mixed.
pub fn split_r_hat(xs: &[f64]) -> f64 {
    let n = xs.len() / 2;
    if n < 2 {
        return f64::NAN;
    }
    let a = &xs[..n];
    let b = &xs[n..2 * n];
    r_hat_two(a, b)
}

/// R̂ for two chains of equal length.
pub fn r_hat_two(a: &[f64], b: &[f64]) -> f64 {
    r_hat_many(&[a, b])
}

/// Gelman–Rubin R̂ across `m ≥ 2` independent chains (the multi-chain
/// diagnostic the two-chain and split variants specialise). Chains are
/// truncated to the shortest length; values near 1.0 indicate the chains
/// explore the same distribution.
pub fn r_hat_many(chains: &[&[f64]]) -> f64 {
    let m = chains.len();
    let n = chains.iter().map(|c| c.len()).min().unwrap_or(0);
    if m < 2 || n < 2 {
        return f64::NAN;
    }
    let chains: Vec<&[f64]> = chains.iter().map(|c| &c[..n]).collect();
    let means: Vec<f64> = chains.iter().map(|c| mean(c).unwrap_or(0.0)).collect();
    let w = chains
        .iter()
        .map(|c| variance(c).unwrap_or(0.0))
        .sum::<f64>()
        / m as f64;
    if w == 0.0 {
        return 1.0; // constant chains: formally converged
    }
    let grand = means.iter().sum::<f64>() / m as f64;
    // B = n/(m−1) · Σ (mean_j − grand)², the between-chain variance.
    let b = n as f64 / (m as f64 - 1.0)
        * means.iter().map(|mj| (mj - grand).powi(2)).sum::<f64>();
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

/// Geweke convergence score: z-statistic comparing the mean of the first
/// `frac_a` of the chain against the last `frac_b`. |z| > 2 suggests the
/// chain has not reached stationarity.
pub fn geweke(xs: &[f64], frac_a: f64, frac_b: f64) -> f64 {
    let n = xs.len();
    let na = (n as f64 * frac_a) as usize;
    let nb = (n as f64 * frac_b) as usize;
    if na < 2 || nb < 2 || na + nb > n {
        return f64::NAN;
    }
    let a = &xs[..na];
    let b = &xs[n - nb..];
    let ma = mean(a).unwrap_or(0.0);
    let mb = mean(b).unwrap_or(0.0);
    // Spectral-density-at-zero estimate via ESS-corrected variance.
    let se2_a = variance(a).unwrap_or(0.0) / effective_sample_size(a);
    let se2_b = variance(b).unwrap_or(0.0) / effective_sample_size(b);
    let denom = (se2_a + se2_b).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (ma - mb) / denom
}

/// Thresholds for the online [`ChainHealth`] monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Non-finite monitor draws tolerated before the chain is declared
    /// diverged. Divergences can be transient (one pathological proposal),
    /// so a small budget avoids failing chains that recover.
    pub max_divergences: usize,
    /// Sweeps per stuck-detection window. Each full window is tested and the
    /// window then restarts, so detection latency is at most `2 * window`.
    pub window: usize,
    /// A chain whose cumulative Metropolis acceptance rate sits below this
    /// floor (after a warm-up of attempts) is declared stuck.
    pub min_acceptance: f64,
    /// A full window whose draw standard deviation falls below
    /// `min_draw_std * (1 + |window mean|)` is declared stuck.
    pub min_draw_std: f64,
    /// Optional wall-clock budget for the whole fit, in seconds.
    pub wall_clock_budget_secs: Option<f64>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            max_divergences: 25,
            window: 50,
            min_acceptance: 0.01,
            min_draw_std: 1e-10,
            wall_clock_budget_secs: None,
        }
    }
}

impl HealthConfig {
    /// Same thresholds with a wall-clock budget attached.
    pub fn with_budget_secs(mut self, secs: f64) -> Self {
        self.wall_clock_budget_secs = Some(secs);
        self
    }
}

/// Online chain-health monitor.
///
/// A fit loop calls [`ChainHealth::begin_sweep`] at the top of every Gibbs
/// sweep (wall-clock check) and [`ChainHealth::observe_monitor`] with one or
/// more scalar monitors of the chain state (e.g. the size-weighted mean
/// failure rate). Kernels with an accept/reject step additionally report
/// cumulative acceptance via [`ChainHealth::record_acceptance`]. Any check
/// that trips returns a typed [`McmcError`] the caller propagates; the retry
/// policy upstream decides whether to restart with a fresh seed.
#[derive(Debug)]
pub struct ChainHealth {
    cfg: HealthConfig,
    sweep: usize,
    divergences: usize,
    window_draws: Vec<f64>,
    started: Instant,
}

impl ChainHealth {
    /// Start monitoring now (the wall-clock budget runs from this call).
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            sweep: 0,
            divergences: 0,
            window_draws: Vec::with_capacity(cfg.window),
            started: Instant::now(),
        }
    }

    /// Sweeps observed so far.
    pub fn sweep(&self) -> usize {
        self.sweep
    }

    /// Non-finite monitor draws observed so far.
    pub fn divergences(&self) -> usize {
        self.divergences
    }

    /// Mark the start of a Gibbs sweep; errors if the wall-clock budget is
    /// exhausted.
    pub fn begin_sweep(&mut self) -> Result<(), McmcError> {
        self.sweep += 1;
        if let Some(budget) = self.cfg.wall_clock_budget_secs {
            let elapsed = self.started.elapsed().as_secs_f64();
            if elapsed > budget {
                return Err(McmcError::Timeout {
                    elapsed_secs: elapsed,
                    budget_secs: budget,
                });
            }
        }
        Ok(())
    }

    /// Feed one scalar monitor of the chain state. Non-finite values count
    /// against the divergence budget; finite values feed the stuck-chain
    /// variance window.
    pub fn observe_monitor(&mut self, x: f64) -> Result<(), McmcError> {
        if !x.is_finite() {
            self.divergences += 1;
            if self.divergences > self.cfg.max_divergences {
                return Err(McmcError::ChainDiverged {
                    sweep: self.sweep,
                    divergences: self.divergences,
                });
            }
            return Ok(());
        }
        self.window_draws.push(x);
        if self.window_draws.len() >= self.cfg.window.max(2) {
            let m = mean(&self.window_draws).unwrap_or(0.0);
            let sd = variance(&self.window_draws).unwrap_or(0.0).sqrt();
            self.window_draws.clear();
            if sd < self.cfg.min_draw_std * (1.0 + m.abs()) {
                return Err(McmcError::ChainStuck {
                    sweep: self.sweep,
                    detail: format!(
                        "monitor draw std {sd:.3e} below floor over a {} -sweep window",
                        self.cfg.window
                    ),
                });
            }
        }
        Ok(())
    }

    /// Report *cumulative* Metropolis acceptance counts. Only meaningful for
    /// kernels with an accept/reject step; a chain rejecting essentially every
    /// proposal after a warm-up of attempts is declared stuck.
    pub fn record_acceptance(&mut self, accepted: u64, attempted: u64) -> Result<(), McmcError> {
        // Warm-up: adaptation needs some attempts before the rate means much.
        if attempted < 200 {
            return Ok(());
        }
        let rate = accepted as f64 / attempted as f64;
        if rate < self.cfg.min_acceptance {
            return Err(McmcError::ChainStuck {
                sweep: self.sweep,
                detail: format!(
                    "acceptance rate {rate:.4} below floor {} after {attempted} attempts",
                    self.cfg.min_acceptance
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::dist::{Normal, Sampler};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn iid_chain_has_near_full_ess() {
        let mut rng = seeded_rng(50);
        let xs = Normal::standard().sample_n(&mut rng, 5_000);
        let ess = effective_sample_size(&xs);
        assert!(ess > 3_500.0, "ess {ess}");
    }

    #[test]
    fn ar1_chain_has_reduced_ess() {
        // AR(1) with φ = 0.9 has ESS ≈ n(1−φ)/(1+φ) ≈ n/19.
        let mut rng = seeded_rng(51);
        let n = 20_000;
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        let noise = Normal::standard();
        for _ in 0..n {
            x = 0.9 * x + noise.sample(&mut rng);
            xs.push(x);
        }
        let ess = effective_sample_size(&xs);
        let expected = n as f64 / 19.0;
        assert!(
            ess > expected * 0.5 && ess < expected * 2.0,
            "ess {ess} vs expected {expected}"
        );
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
        assert_eq!(autocorrelation(&xs, 10), 0.0);
    }

    #[test]
    fn r_hat_near_one_for_same_distribution() {
        let mut rng = seeded_rng(52);
        let xs = Normal::standard().sample_n(&mut rng, 4_000);
        let r = split_r_hat(&xs);
        assert!((r - 1.0).abs() < 0.02, "r_hat {r}");
    }

    #[test]
    fn r_hat_large_for_divergent_chains() {
        let mut rng = seeded_rng(53);
        let a = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, 1_000);
        let b = Normal::new(10.0, 1.0).unwrap().sample_n(&mut rng, 1_000);
        let r = r_hat_two(&a, &b);
        assert!(r > 2.0, "r_hat {r}");
    }

    #[test]
    fn r_hat_many_agrees_with_two_chain_case() {
        let mut rng = seeded_rng(57);
        let a = Normal::standard().sample_n(&mut rng, 500);
        let b = Normal::standard().sample_n(&mut rng, 500);
        assert_eq!(r_hat_two(&a, &b), r_hat_many(&[&a, &b]));
    }

    #[test]
    fn r_hat_many_near_one_for_iid_chains() {
        let mut rng = seeded_rng(58);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| Normal::standard().sample_n(&mut rng, 2_000))
            .collect();
        let refs: Vec<&[f64]> = chains.iter().map(Vec::as_slice).collect();
        let r = r_hat_many(&refs);
        assert!((r - 1.0).abs() < 0.03, "r_hat {r}");
    }

    #[test]
    fn r_hat_many_flags_one_divergent_chain() {
        let mut rng = seeded_rng(59);
        let mut chains: Vec<Vec<f64>> = (0..3)
            .map(|_| Normal::standard().sample_n(&mut rng, 1_000))
            .collect();
        chains.push(Normal::new(8.0, 1.0).unwrap().sample_n(&mut rng, 1_000));
        let refs: Vec<&[f64]> = chains.iter().map(Vec::as_slice).collect();
        let r = r_hat_many(&refs);
        assert!(r > 1.5, "r_hat {r}");
    }

    #[test]
    fn r_hat_many_degenerate_inputs() {
        let a = [1.0, 2.0, 3.0];
        assert!(r_hat_many(&[&a]).is_nan(), "one chain is no comparison");
        assert!(r_hat_many(&[&a, &[1.0]]).is_nan(), "too short after truncation");
        let c = [2.0; 50];
        assert_eq!(r_hat_many(&[&c, &c, &c]), 1.0);
    }

    #[test]
    fn geweke_flags_trend() {
        // Strong linear trend: early vs late means differ.
        let xs: Vec<f64> = (0..2_000).map(|i| i as f64 * 0.01).collect();
        let z = geweke(&xs, 0.1, 0.5);
        assert!(z.abs() > 3.0, "geweke {z}");
    }

    #[test]
    fn geweke_ok_for_stationary() {
        let mut rng = seeded_rng(54);
        let xs = Normal::standard().sample_n(&mut rng, 5_000);
        let z = geweke(&xs, 0.1, 0.5);
        assert!(z.abs() < 3.0, "geweke {z}");
    }

    #[test]
    fn constant_chain_edge_cases() {
        let xs = [2.0; 100];
        assert_eq!(autocorrelation(&xs, 3), 0.0);
        assert_eq!(split_r_hat(&xs), 1.0);
    }

    #[test]
    fn health_tolerates_sporadic_divergences() {
        let mut h = ChainHealth::new(HealthConfig::default());
        let mut rng = seeded_rng(55);
        let noise = Normal::standard();
        for i in 0..500 {
            h.begin_sweep().unwrap();
            let x = if i % 100 == 7 { f64::NAN } else { noise.sample(&mut rng) };
            h.observe_monitor(x).unwrap();
        }
        assert_eq!(h.divergences(), 5);
    }

    #[test]
    fn health_flags_divergence_budget_exhaustion() {
        let cfg = HealthConfig {
            max_divergences: 3,
            ..HealthConfig::default()
        };
        let mut h = ChainHealth::new(cfg);
        let mut err = None;
        for _ in 0..10 {
            h.begin_sweep().unwrap();
            if let Err(e) = h.observe_monitor(f64::INFINITY) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(McmcError::ChainDiverged { divergences: 4, .. })));
    }

    #[test]
    fn health_flags_stuck_constant_monitor() {
        let mut h = ChainHealth::new(HealthConfig::default());
        let mut err = None;
        for _ in 0..200 {
            h.begin_sweep().unwrap();
            if let Err(e) = h.observe_monitor(3.25) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(McmcError::ChainStuck { .. })), "{err:?}");
    }

    #[test]
    fn health_accepts_a_moving_chain() {
        let mut h = ChainHealth::new(HealthConfig::default());
        let mut rng = seeded_rng(56);
        let noise = Normal::standard();
        for _ in 0..1_000 {
            h.begin_sweep().unwrap();
            h.observe_monitor(noise.sample(&mut rng)).unwrap();
            h.record_acceptance(440, 1_000).unwrap();
        }
    }

    #[test]
    fn health_flags_near_zero_acceptance() {
        let mut h = ChainHealth::new(HealthConfig::default());
        // Below warm-up: no verdict yet.
        h.record_acceptance(0, 199).unwrap();
        let err = h.record_acceptance(1, 10_000);
        assert!(matches!(err, Err(McmcError::ChainStuck { .. })));
    }

    #[test]
    fn health_enforces_wall_clock_budget() {
        let cfg = HealthConfig::default().with_budget_secs(0.0);
        let mut h = ChainHealth::new(cfg);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(matches!(h.begin_sweep(), Err(McmcError::Timeout { .. })));
    }
}
