//! Metropolis-within-Gibbs scaffolding.
//!
//! Models implement [`GibbsModel`] — "resample every block of the state once,
//! then report scalar summaries" — and [`run`] drives the schedule, records
//! the reported scalars into a [`crate::chain::ChainSet`], and hands back the
//! final state. The DPMHBP and HBP fitters in `pipefail-core` are the two
//! production implementations; the tests here use a conjugate toy model whose
//! posterior is known exactly.

use crate::chain::ChainSet;
use crate::diagnostics::ChainHealth;
use crate::error::McmcError;
use crate::Schedule;
use rand::Rng;

/// A model whose posterior is explored by sweeping blocks of coordinates.
pub trait GibbsModel {
    /// Perform one full Gibbs sweep (resample every block once), mutating the
    /// internal state.
    fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Fallible sweep for fit paths that must not panic. The default wraps
    /// [`GibbsModel::sweep`]; models whose blocks use the kernels' `try_step`
    /// APIs should override this and propagate their errors.
    fn try_sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<(), McmcError> {
        self.sweep(rng);
        Ok(())
    }

    /// Called once per *retained* iteration so the model can accumulate
    /// posterior summaries internally (posterior means of per-item
    /// probabilities, co-clustering counts, …).
    fn record(&mut self) {}

    /// Scalar quantities to trace, as `(name, value)` pairs. Used for
    /// convergence diagnostics; keep it cheap.
    fn monitors(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Outcome of a Gibbs run: recorded monitor chains plus sweep counts.
#[derive(Debug, Clone)]
pub struct GibbsRun {
    /// Monitor traces recorded at every retained iteration.
    pub chains: ChainSet,
    /// Number of retained iterations (after burn-in and thinning).
    pub retained: usize,
    /// Total sweeps executed.
    pub total_sweeps: usize,
}

/// Drive `model` through `schedule`, recording monitors each retained sweep.
pub fn run<M, R>(model: &mut M, schedule: Schedule, rng: &mut R) -> GibbsRun
where
    M: GibbsModel,
    R: Rng + ?Sized,
{
    let mut chains = ChainSet::new();
    let mut retained = 0;
    let total = schedule.total_iterations();
    for it in 0..total {
        model.sweep(rng);
        if schedule.keep(it) {
            model.record();
            retained += 1;
            for (name, value) in model.monitors() {
                chains.chain_mut(name).push(value);
            }
        }
    }
    GibbsRun {
        chains,
        retained,
        total_sweeps: total,
    }
}

/// Fault-tolerant variant of [`run`]: every sweep goes through
/// [`GibbsModel::try_sweep`] and the supplied [`ChainHealth`] monitor, so
/// divergent or stuck chains and blown wall-clock budgets surface as typed
/// errors instead of panics or silently bad posteriors.
pub fn try_run<M, R>(
    model: &mut M,
    schedule: Schedule,
    health: &mut ChainHealth,
    rng: &mut R,
) -> Result<GibbsRun, McmcError>
where
    M: GibbsModel,
    R: Rng + ?Sized,
{
    let mut chains = ChainSet::new();
    let mut retained = 0;
    let total = schedule.total_iterations();
    for it in 0..total {
        health.begin_sweep()?;
        model.try_sweep(rng)?;
        for (name, value) in model.monitors() {
            health.observe_monitor(value)?;
            if schedule.keep(it) {
                chains.chain_mut(name).push(value);
            }
        }
        if schedule.keep(it) {
            model.record();
            retained += 1;
        }
    }
    Ok(GibbsRun {
        chains,
        retained,
        total_sweeps: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceSampler;
    use pipefail_stats::rng::seeded_rng;

    /// Toy conjugate model: x ~ N(θ, 1), θ ~ N(0, 10²), sampled by slice
    /// within "Gibbs" (single block). Posterior: N(m, v) with
    /// v = 1/(n + 1/100), m = v·Σx.
    struct ToyModel {
        data: Vec<f64>,
        theta: f64,
        slice: SliceSampler,
        sum_theta: f64,
        records: usize,
    }

    impl GibbsModel for ToyModel {
        fn sweep<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) {
            let data = self.data.clone();
            let log_f = move |t: f64| {
                let prior = -0.5 * t * t / 100.0;
                let lik: f64 = data.iter().map(|x| -0.5 * (x - t) * (x - t)).sum();
                prior + lik
            };
            self.theta = self.slice.step(self.theta, &log_f, rng);
        }

        fn record(&mut self) {
            self.sum_theta += self.theta;
            self.records += 1;
        }

        fn monitors(&self) -> Vec<(&'static str, f64)> {
            vec![("theta", self.theta)]
        }
    }

    #[test]
    fn recovers_conjugate_posterior_mean() {
        let data = vec![1.2, 0.8, 1.5, 0.9, 1.1, 1.3, 0.7, 1.4];
        let n = data.len() as f64;
        let v = 1.0 / (n + 0.01);
        let m = v * data.iter().sum::<f64>();

        let mut model = ToyModel {
            data,
            theta: 0.0,
            slice: SliceSampler::new(0.5),
            sum_theta: 0.0,
            records: 0,
        };
        let mut rng = seeded_rng(60);
        let run = run(&mut model, Schedule::new(500, 3000, 1), &mut rng);

        assert_eq!(run.retained, 3000);
        assert_eq!(model.records, 3000);
        let post_mean = model.sum_theta / model.records as f64;
        assert!((post_mean - m).abs() < 0.05, "post mean {post_mean} vs {m}");

        let chain = run.chains.get("theta").unwrap();
        assert_eq!(chain.len(), 3000);
        let r_hat = crate::diagnostics::split_r_hat(chain.draws());
        assert!((r_hat - 1.0).abs() < 0.05, "r_hat {r_hat}");
    }

    #[test]
    fn try_run_matches_run_on_a_healthy_chain() {
        let make = || ToyModel {
            data: vec![1.2, 0.8, 1.5],
            theta: 0.0,
            slice: SliceSampler::new(0.5),
            sum_theta: 0.0,
            records: 0,
        };
        let sched = Schedule::new(50, 200, 1);
        let mut a = make();
        let mut rng_a = seeded_rng(62);
        let plain = run(&mut a, sched, &mut rng_a);
        let mut b = make();
        let mut rng_b = seeded_rng(62);
        let mut health = ChainHealth::new(crate::diagnostics::HealthConfig::default());
        let guarded = try_run(&mut b, sched, &mut health, &mut rng_b).expect("healthy chain");
        assert_eq!(guarded.retained, plain.retained);
        assert_eq!(
            guarded.chains.get("theta").unwrap().draws(),
            plain.chains.get("theta").unwrap().draws(),
            "monitoring must not perturb the chain"
        );
    }

    #[test]
    fn try_run_surfaces_a_stuck_chain() {
        /// Model whose monitor never moves: the health window must trip.
        struct FrozenModel;
        impl GibbsModel for FrozenModel {
            fn sweep<R: rand::Rng + ?Sized>(&mut self, _rng: &mut R) {}
            fn monitors(&self) -> Vec<(&'static str, f64)> {
                vec![("theta", 1.0)]
            }
        }
        let mut rng = seeded_rng(63);
        let mut health = ChainHealth::new(crate::diagnostics::HealthConfig::default());
        let err = try_run(&mut FrozenModel, Schedule::new(0, 500, 1), &mut health, &mut rng);
        assert!(matches!(err, Err(McmcError::ChainStuck { .. })), "{err:?}");
    }

    #[test]
    fn thinning_reduces_retained() {
        let mut model = ToyModel {
            data: vec![0.0, 0.1],
            theta: 0.0,
            slice: SliceSampler::new(0.5),
            sum_theta: 0.0,
            records: 0,
        };
        let mut rng = seeded_rng(61);
        let run = run(&mut model, Schedule::new(10, 100, 10), &mut rng);
        assert_eq!(run.retained, 10);
        assert_eq!(run.total_sweeps, 110);
        assert_eq!(run.chains.get("theta").unwrap().len(), 10);
    }
}
