//! Typed sampler failures.
//!
//! The long-running Metropolis-within-Gibbs fits must *report* numerical
//! trouble instead of panicking: a non-finite log-posterior, a diverged or
//! stuck chain, or an exhausted wall-clock budget all surface as
//! [`McmcError`] values that callers (the eval runner's retry policy, the
//! experiment suite) can match on and recover from.

/// A failure inside an MCMC kernel or sweep loop.
#[derive(Debug, Clone, PartialEq)]
pub enum McmcError {
    /// The log-posterior evaluated to NaN (or the chain's current state has
    /// zero posterior mass), so no transition kernel can proceed.
    NonFiniteLogPosterior {
        /// Which coordinate / monitor was being updated.
        coordinate: &'static str,
        /// The state at which the log-posterior was non-finite.
        at: f64,
    },
    /// The chain produced more non-finite draws/monitors than the
    /// divergence budget allows.
    ChainDiverged {
        /// Sweep index at which the budget was exhausted.
        sweep: usize,
        /// Number of divergent observations.
        divergences: usize,
    },
    /// The chain stopped moving: a full monitoring window showed (near-)zero
    /// draw variance or an acceptance rate below the configured floor.
    ChainStuck {
        /// Sweep index at which stickiness was declared.
        sweep: usize,
        /// Human-readable detector detail (which window tripped and why).
        detail: String,
    },
    /// The sampler exceeded its wall-clock budget.
    Timeout {
        /// Seconds elapsed when the deadline check tripped.
        elapsed_secs: f64,
        /// The configured budget in seconds.
        budget_secs: f64,
    },
    /// A kernel was configured with an invalid scale/width/rate.
    BadKernelConfig(&'static str),
}

impl std::fmt::Display for McmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McmcError::NonFiniteLogPosterior { coordinate, at } => {
                write!(f, "non-finite log-posterior for {coordinate} at {at}")
            }
            McmcError::ChainDiverged { sweep, divergences } => {
                write!(f, "chain diverged by sweep {sweep} ({divergences} divergences)")
            }
            McmcError::ChainStuck { sweep, detail } => {
                write!(f, "chain stuck at sweep {sweep}: {detail}")
            }
            McmcError::Timeout {
                elapsed_secs,
                budget_secs,
            } => write!(
                f,
                "sampler exceeded wall-clock budget: {elapsed_secs:.1}s of {budget_secs:.1}s"
            ),
            McmcError::BadKernelConfig(s) => write!(f, "bad kernel config: {s}"),
        }
    }
}

impl std::error::Error for McmcError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, McmcError>;
