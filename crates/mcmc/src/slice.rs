//! Neal's univariate slice sampler (stepping-out and shrinkage).
//!
//! The tuning-free workhorse for the non-conjugate coordinates of the HBP and
//! DPMHBP posteriors (group failure rates `q_k`, concentrations `c_k`). Each
//! call makes one transition that leaves the target invariant.

use crate::error::McmcError;
use rand::Rng;

/// Univariate slice sampler with stepping-out and shrinkage (Neal 2003).
#[derive(Debug, Clone, Copy)]
pub struct SliceSampler {
    /// Initial bracket width `w`.
    width: f64,
    /// Maximum number of stepping-out expansions per side.
    max_steps: usize,
}

impl SliceSampler {
    /// Create a sampler with bracket width `w` (must be positive; a width on
    /// the scale of the posterior standard deviation is ideal but anything
    /// within a couple orders of magnitude works).
    ///
    /// Panics on an invalid width; fit paths that must not panic should use
    /// [`SliceSampler::try_new`].
    pub fn new(width: f64) -> Self {
        match Self::try_new(width) {
            Ok(s) => s,
            Err(e) => panic!("slice width must be positive: {e}"),
        }
    }

    /// Fallible constructor: `Err(McmcError::BadKernelConfig)` on a
    /// non-positive or non-finite width.
    pub fn try_new(width: f64) -> Result<Self, McmcError> {
        if !(width > 0.0 && width.is_finite()) {
            return Err(McmcError::BadKernelConfig(
                "slice bracket width must be positive and finite",
            ));
        }
        Ok(Self {
            width,
            max_steps: 64,
        })
    }

    /// Limit the stepping-out expansions (mostly for heavy-tailed targets).
    pub fn with_max_steps(mut self, m: usize) -> Self {
        self.max_steps = m.max(1);
        self
    }

    /// One slice-sampling transition from `x0` under log-density `log_f`.
    ///
    /// `log_f` may return `NEG_INFINITY` outside the support; `x0` itself
    /// must have finite log-density.
    ///
    /// Panics if `x0` has non-finite log-density; fit paths that must not
    /// panic should use [`SliceSampler::try_step`].
    pub fn step<R, F>(&self, x0: f64, log_f: &F, rng: &mut R) -> f64
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        match self.try_step(x0, log_f, rng) {
            Ok(x1) => x1,
            Err(e) => panic!("slice sampler started outside the support: {e}"),
        }
    }

    /// Fallible slice transition: `Err(NonFiniteLogPosterior)` when `x0`
    /// itself has NaN, `+inf`, or zero posterior mass — a slice level cannot
    /// be drawn from such a point. NaN log-densities at *candidate* points
    /// are survivable: NaN compares false against the slice level, so the
    /// candidate is treated as outside the slice and the bracket shrinks.
    pub fn try_step<R, F>(&self, x0: f64, log_f: &F, rng: &mut R) -> Result<f64, McmcError>
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        let lf0 = log_f(x0);
        if !lf0.is_finite() {
            return Err(McmcError::NonFiniteLogPosterior {
                coordinate: "slice current state",
                at: x0,
            });
        }
        // Vertical level: ln u = ln f(x0) − Exp(1)
        let ln_y = lf0 - rand_exp(rng);

        // Stepping out.
        let u: f64 = rng.gen();
        let mut lo = x0 - self.width * u;
        let mut hi = lo + self.width;
        let mut steps_lo = self.max_steps;
        let mut steps_hi = self.max_steps;
        while steps_lo > 0 && log_f(lo) > ln_y {
            lo -= self.width;
            steps_lo -= 1;
        }
        while steps_hi > 0 && log_f(hi) > ln_y {
            hi += self.width;
            steps_hi -= 1;
        }

        // Shrinkage.
        loop {
            let x1 = lo + (hi - lo) * rng.gen::<f64>();
            if log_f(x1) > ln_y {
                return Ok(x1);
            }
            if x1 < x0 {
                lo = x1;
            } else {
                hi = x1;
            }
            if (hi - lo) < f64::EPSILON * (1.0 + x0.abs()) {
                // Numerical corner: the bracket collapsed onto x0.
                return Ok(x0);
            }
        }
    }

    /// Run `n` transitions and return the final state (for burn-in loops).
    pub fn run<R, F>(&self, mut x: f64, log_f: &F, n: usize, rng: &mut R) -> f64
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        for _ in 0..n {
            x = self.step(x, log_f, rng);
        }
        x
    }
}

/// Standard exponential variate.
fn rand_exp<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::descriptive::{mean, variance};
    use pipefail_stats::rng::seeded_rng;

    fn collect<F: Fn(f64) -> f64>(
        log_f: F,
        x0: f64,
        width: f64,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        let s = SliceSampler::new(width);
        let mut x = x0;
        // burn-in
        for _ in 0..500 {
            x = s.step(x, &log_f, &mut rng);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = s.step(x, &log_f, &mut rng);
            out.push(x);
        }
        out
    }

    #[test]
    fn standard_normal_moments() {
        let xs = collect(|x| -0.5 * x * x, 0.0, 1.0, 20_000, 31);
        assert!(mean(&xs).unwrap().abs() < 0.05);
        assert!((variance(&xs).unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn bounded_beta_target() {
        // Beta(3, 7): mean 0.3, var 3*7/(100*11) ≈ 0.0190909
        let log_f = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                f64::NEG_INFINITY
            } else {
                2.0 * p.ln() + 6.0 * (1.0 - p).ln()
            }
        };
        let xs = collect(log_f, 0.5, 0.2, 20_000, 32);
        assert!((mean(&xs).unwrap() - 0.3).abs() < 0.02);
        assert!((variance(&xs).unwrap() - 0.019_09).abs() < 0.004);
        assert!(xs.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn badly_tuned_width_still_correct() {
        // Width 100x too large and 10x too small both stay correct (the
        // stepping-out cap bounds how far a too-small width can expand, so
        // widths orders of magnitude below the posterior scale mix too
        // slowly to test this way).
        for &(w, seed) in &[(100.0, 33u64), (0.1, 34u64)] {
            let xs = collect(|x: f64| -0.5 * x * x, 0.3, w, 30_000, seed);
            assert!(mean(&xs).unwrap().abs() < 0.1, "width {w}");
            assert!((variance(&xs).unwrap() - 1.0).abs() < 0.2, "width {w}");
        }
    }

    #[test]
    fn bimodal_target_visits_both_modes() {
        // Mixture of N(−1.5, 0.5²) and N(1.5, 0.5²): the inter-mode valley
        // is shallow enough (~e⁻⁴·⁵ of the mode) that slice levels below it
        // occur regularly and the sampler bridges the modes.
        let log_f = |x: f64| {
            let a = -0.5 * ((x + 1.5) / 0.5).powi(2);
            let b = -0.5 * ((x - 1.5) / 0.5).powi(2);
            pipefail_stats::special::log_sum_exp2(a, b)
        };
        let xs = collect(log_f, -1.5, 2.0, 30_000, 35);
        let left = xs.iter().filter(|&&x| x < 0.0).count() as f64 / xs.len() as f64;
        assert!((left - 0.5).abs() < 0.15, "left fraction {left}");
    }

    #[test]
    #[should_panic(expected = "slice width must be positive")]
    fn rejects_bad_width() {
        let _ = SliceSampler::new(0.0);
    }

    #[test]
    fn try_new_reports_bad_width_without_panicking() {
        assert!(matches!(
            SliceSampler::try_new(0.0),
            Err(McmcError::BadKernelConfig(_))
        ));
        assert!(matches!(
            SliceSampler::try_new(f64::INFINITY),
            Err(McmcError::BadKernelConfig(_))
        ));
        assert!(SliceSampler::try_new(1.0).is_ok());
    }

    #[test]
    fn try_step_errors_outside_support() {
        let mut rng = seeded_rng(36);
        let s = SliceSampler::new(1.0);
        let log_f = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                f64::NEG_INFINITY
            } else {
                2.0 * p.ln() + 6.0 * (1.0 - p).ln()
            }
        };
        assert!(matches!(
            s.try_step(-0.5, &log_f, &mut rng),
            Err(McmcError::NonFiniteLogPosterior { .. })
        ));
        assert!(matches!(
            s.try_step(f64::NAN, &|_| f64::NAN, &mut rng),
            Err(McmcError::NonFiniteLogPosterior { .. })
        ));
        assert!(s.try_step(0.3, &log_f, &mut rng).is_ok());
    }

    #[test]
    fn nan_candidates_shrink_the_bracket() {
        // Log-density is NaN right of 0.5: those candidates must be treated
        // as outside the slice, never returned.
        let mut rng = seeded_rng(37);
        let s = SliceSampler::new(2.0);
        let log_f = |x: f64| if x > 0.5 { f64::NAN } else { -0.5 * x * x };
        let mut x = -0.2;
        for _ in 0..500 {
            x = s.try_step(x, &log_f, &mut rng).expect("state stays valid");
            assert!(x <= 0.5, "NaN candidate escaped the shrinkage loop");
        }
    }
}
