//! A uniform interface over the univariate within-Gibbs kernels.
//!
//! The paper's sampler is Metropolis-within-Gibbs; our default kernel is the
//! tuning-free slice sampler. [`UnivariateKernel`] lets a model switch
//! between them with one configuration value, which the grouping-ablation
//! bench uses to compare mixing.

use crate::error::McmcError;
use crate::rw::RandomWalkMetropolis;
use crate::slice::SliceSampler;
use rand::Rng;

/// Which within-Gibbs kernel to use for non-conjugate coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Neal's slice sampler (default; tuning-free).
    Slice,
    /// Adaptive Gaussian random-walk Metropolis (the paper's stated kernel).
    RandomWalk,
}

/// A univariate MCMC transition kernel with a common `step` API.
#[derive(Debug, Clone)]
pub enum UnivariateKernel {
    /// Slice sampling with the given bracket width.
    Slice(SliceSampler),
    /// Adaptive random-walk Metropolis.
    RandomWalk(RandomWalkMetropolis),
}

impl UnivariateKernel {
    /// Build a kernel of `kind` with initial scale/width `scale`.
    ///
    /// Panics on an invalid scale; fit paths that must not panic should use
    /// [`UnivariateKernel::try_new`].
    pub fn new(kind: KernelKind, scale: f64) -> Self {
        match kind {
            KernelKind::Slice => UnivariateKernel::Slice(SliceSampler::new(scale)),
            KernelKind::RandomWalk => {
                UnivariateKernel::RandomWalk(RandomWalkMetropolis::new(scale))
            }
        }
    }

    /// Fallible constructor: `Err(McmcError::BadKernelConfig)` on a
    /// non-positive or non-finite scale.
    pub fn try_new(kind: KernelKind, scale: f64) -> Result<Self, McmcError> {
        Ok(match kind {
            KernelKind::Slice => UnivariateKernel::Slice(SliceSampler::try_new(scale)?),
            KernelKind::RandomWalk => {
                UnivariateKernel::RandomWalk(RandomWalkMetropolis::try_new(scale)?)
            }
        })
    }

    /// One transition from `x` under log-density `log_f`.
    ///
    /// Panics if the current state has non-finite log-density; fit paths that
    /// must not panic should use [`UnivariateKernel::try_step`].
    pub fn step<R, F>(&mut self, x: f64, log_f: &F, rng: &mut R) -> f64
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        match self {
            UnivariateKernel::Slice(s) => s.step(x, log_f, rng),
            UnivariateKernel::RandomWalk(k) => k.step(x, log_f, rng),
        }
    }

    /// Fallible transition: `Err(NonFiniteLogPosterior)` when the current
    /// state is unrecoverable (see the underlying kernels' `try_step` docs).
    pub fn try_step<R, F>(&mut self, x: f64, log_f: &F, rng: &mut R) -> Result<f64, McmcError>
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        match self {
            UnivariateKernel::Slice(s) => s.try_step(x, log_f, rng),
            UnivariateKernel::RandomWalk(k) => k.try_step(x, log_f, rng),
        }
    }

    /// Freeze adaptation (no-op for the slice kernel).
    pub fn freeze(&mut self) {
        if let UnivariateKernel::RandomWalk(k) = self {
            k.freeze();
        }
    }

    /// Empirical acceptance rate, when the kernel has one (random walk).
    /// The slice sampler has no accept/reject step, so returns `None`.
    pub fn acceptance_rate(&self) -> Option<f64> {
        match self {
            UnivariateKernel::Slice(_) => None,
            UnivariateKernel::RandomWalk(k) => Some(k.acceptance_rate()),
        }
    }

    /// Divergent (NaN log-density) proposals observed so far, when tracked.
    pub fn divergences(&self) -> u64 {
        match self {
            UnivariateKernel::Slice(_) => 0,
            UnivariateKernel::RandomWalk(k) => k.divergences(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::descriptive::{mean, variance};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn both_kernels_target_the_same_distribution() {
        let log_f = |x: f64| -0.5 * (x - 1.0) * (x - 1.0);
        for kind in [KernelKind::Slice, KernelKind::RandomWalk] {
            let mut rng = seeded_rng(180);
            let mut k = UnivariateKernel::new(kind, 1.0);
            let mut x = 0.0;
            for _ in 0..2_000 {
                x = k.step(x, &log_f, &mut rng);
            }
            k.freeze();
            let mut xs = Vec::with_capacity(30_000);
            for _ in 0..30_000 {
                x = k.step(x, &log_f, &mut rng);
                xs.push(x);
            }
            assert!(
                (mean(&xs).unwrap() - 1.0).abs() < 0.1,
                "{kind:?} mean {}",
                mean(&xs).unwrap()
            );
            assert!(
                (variance(&xs).unwrap() - 1.0).abs() < 0.2,
                "{kind:?} var {}",
                variance(&xs).unwrap()
            );
        }
    }

    #[test]
    fn try_variants_report_errors_for_both_kinds() {
        for kind in [KernelKind::Slice, KernelKind::RandomWalk] {
            assert!(matches!(
                UnivariateKernel::try_new(kind, -2.0),
                Err(McmcError::BadKernelConfig(_))
            ));
            let mut k = UnivariateKernel::try_new(kind, 1.0).expect("valid scale");
            let mut rng = seeded_rng(182);
            assert!(matches!(
                k.try_step(f64::NAN, &|_| f64::NAN, &mut rng),
                Err(McmcError::NonFiniteLogPosterior { .. })
            ));
            let x = k.try_step(0.0, &|x: f64| -x * x, &mut rng).expect("valid state");
            assert!(x.is_finite());
        }
    }

    #[test]
    fn freeze_is_safe_on_slice() {
        let mut k = UnivariateKernel::new(KernelKind::Slice, 0.5);
        k.freeze(); // no-op, must not panic
        let mut rng = seeded_rng(181);
        let x = k.step(0.0, &|x: f64| -x * x, &mut rng);
        assert!(x.is_finite());
    }
}
