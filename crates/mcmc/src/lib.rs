// Library code must surface sampler failures as typed `McmcError`s, never
// unwrap its way into a panic; tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # pipefail-mcmc
//!
//! A small, hand-written MCMC engine.
//!
//! The DPMHBP model (Dirichlet-process mixture of hierarchical beta
//! processes) has no conjugate posterior for its group-level parameters, so
//! the paper runs *Metropolis-within-Gibbs*: conjugate coordinates are drawn
//! exactly, non-conjugate ones by a univariate kernel inside the Gibbs sweep.
//! No mature Bayesian-inference crate exists for Rust in this environment, so
//! this crate provides the needed kernels from scratch:
//!
//! * [`rw::RandomWalkMetropolis`] — adaptive Gaussian random-walk Metropolis
//!   on an unconstrained coordinate (Robbins–Monro scale adaptation toward a
//!   target acceptance rate).
//! * [`slice::SliceSampler`] — Neal's univariate slice sampler with
//!   stepping-out and shrinkage; tuning-free, our default within-Gibbs kernel.
//! * [`chain::Chain`] — sample storage with burn-in/thinning and summaries.
//! * [`diagnostics`] — autocorrelation, effective sample size, split-R̂ and
//!   Geweke score for convergence checking.
//! * [`transform`] — bijections (logit/log) so constrained parameters
//!   (probabilities, concentrations) can be sampled on ℝ with the correct
//!   Jacobian.
//!
//! ## Example: sampling a Beta posterior by slice sampling
//!
//! ```
//! use pipefail_mcmc::slice::SliceSampler;
//! use pipefail_stats::rng::seeded_rng;
//!
//! // Posterior of p under Beta(2, 2) prior and 8 successes / 2 failures:
//! // Beta(10, 4), mean 10/14.
//! let log_post = |p: f64| {
//!     if p <= 0.0 || p >= 1.0 { return f64::NEG_INFINITY; }
//!     9.0 * p.ln() + 3.0 * (1.0 - p).ln()
//! };
//! let mut rng = seeded_rng(1);
//! let s = SliceSampler::new(0.1);
//! let mut x = 0.5;
//! let mut acc = 0.0;
//! let n = 4000;
//! for _ in 0..n {
//!     x = s.step(x, &log_post, &mut rng);
//!     acc += x;
//! }
//! let mean = acc / n as f64;
//! assert!((mean - 10.0 / 14.0).abs() < 0.03);
//! ```

pub mod chain;
pub mod diagnostics;
pub mod error;
pub mod gibbs;
pub mod kernel;
pub mod rw;
pub mod slice;
pub mod transform;

pub use diagnostics::{ChainHealth, HealthConfig};
pub use error::McmcError;

/// How many iterations to run, discard and keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Iterations discarded before collecting samples.
    pub burn_in: usize,
    /// Iterations collected after burn-in (pre-thinning).
    pub samples: usize,
    /// Keep every `thin`-th sample (1 = keep all).
    pub thin: usize,
}

impl Schedule {
    /// Create a schedule; `thin` is clamped to at least 1.
    pub fn new(burn_in: usize, samples: usize, thin: usize) -> Self {
        Self {
            burn_in,
            samples,
            thin: thin.max(1),
        }
    }

    /// Total number of sweeps the sampler will execute.
    pub fn total_iterations(&self) -> usize {
        self.burn_in + self.samples
    }

    /// Number of samples that will actually be retained.
    pub fn retained(&self) -> usize {
        self.samples.div_ceil(self.thin)
    }

    /// True when iteration `it` (0-based) should be recorded.
    pub fn keep(&self, it: usize) -> bool {
        it >= self.burn_in && (it - self.burn_in).is_multiple_of(self.thin)
    }
}

impl Default for Schedule {
    /// A schedule adequate for the pipe-failure posteriors: 500 burn-in,
    /// 1000 retained sweeps, no thinning.
    fn default() -> Self {
        Self::new(500, 1000, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counts() {
        let s = Schedule::new(100, 50, 5);
        assert_eq!(s.total_iterations(), 150);
        assert_eq!(s.retained(), 10);
        assert!(!s.keep(99));
        assert!(s.keep(100));
        assert!(!s.keep(101));
        assert!(s.keep(105));
    }

    #[test]
    fn thin_clamped() {
        let s = Schedule::new(0, 10, 0);
        assert_eq!(s.thin, 1);
        assert_eq!(s.retained(), 10);
    }

    #[test]
    fn keep_count_matches_retained() {
        for &(b, s, t) in &[(10usize, 37usize, 3usize), (0, 10, 1), (5, 9, 2)] {
            let sched = Schedule::new(b, s, t);
            let kept = (0..sched.total_iterations()).filter(|&i| sched.keep(i)).count();
            assert_eq!(kept, sched.retained(), "b={b} s={s} t={t}");
        }
    }
}
