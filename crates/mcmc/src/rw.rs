//! Adaptive Gaussian random-walk Metropolis.
//!
//! The paper's stated kernel for the non-conjugate coordinates. Proposals are
//! `y′ = y + σ·ε`, `ε ~ N(0,1)`, on an unconstrained coordinate (combine with
//! [`crate::transform::Transform`] for bounded parameters). The scale `σ` is
//! adapted during burn-in by a Robbins–Monro recursion toward a target
//! acceptance rate (0.44 is optimal for univariate targets), then frozen so
//! the chain is exactly Markovian during sampling.

use crate::error::McmcError;
use pipefail_stats::dist::Normal;
use rand::Rng;

/// Adaptive univariate random-walk Metropolis kernel.
#[derive(Debug, Clone)]
pub struct RandomWalkMetropolis {
    ln_scale: f64,
    target_accept: f64,
    adapting: bool,
    steps: u64,
    accepted: u64,
    divergences: u64,
}

impl RandomWalkMetropolis {
    /// Create a kernel with initial proposal scale `scale`.
    ///
    /// Panics on an invalid scale; fit paths that must not panic should use
    /// [`RandomWalkMetropolis::try_new`].
    pub fn new(scale: f64) -> Self {
        match Self::try_new(scale) {
            Ok(k) => k,
            Err(e) => panic!("RW scale must be positive: {e}"),
        }
    }

    /// Fallible constructor: `Err(McmcError::BadKernelConfig)` on a
    /// non-positive or non-finite scale.
    pub fn try_new(scale: f64) -> Result<Self, McmcError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(McmcError::BadKernelConfig(
                "random-walk proposal scale must be positive and finite",
            ));
        }
        Ok(Self {
            ln_scale: scale.ln(),
            target_accept: 0.44,
            adapting: true,
            steps: 0,
            accepted: 0,
            divergences: 0,
        })
    }

    /// Override the target acceptance rate (must be in (0, 1)).
    pub fn with_target_accept(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0);
        self.target_accept = rate;
        self
    }

    /// Stop adapting (call at the end of burn-in to make the kernel
    /// exactly Markovian).
    pub fn freeze(&mut self) {
        self.adapting = false;
    }

    /// Current proposal standard deviation.
    pub fn scale(&self) -> f64 {
        self.ln_scale.exp()
    }

    /// Empirical acceptance rate so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// Number of proposals whose log-density evaluated to NaN (rejected and
    /// counted rather than propagated; the chain-health monitor reads this).
    pub fn divergences(&self) -> u64 {
        self.divergences
    }

    /// Total transitions attempted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Transitions accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Snapshot the full adaptation state for checkpointing:
    /// `(ln_scale, target_accept, adapting, steps, accepted, divergences)`.
    pub fn to_raw_state(&self) -> (f64, f64, bool, u64, u64, u64) {
        (
            self.ln_scale,
            self.target_accept,
            self.adapting,
            self.steps,
            self.accepted,
            self.divergences,
        )
    }

    /// Rebuild a kernel from a [`RandomWalkMetropolis::to_raw_state`]
    /// snapshot, so a resumed chain adapts exactly as the original would.
    pub fn from_raw_state(state: (f64, f64, bool, u64, u64, u64)) -> Self {
        let (ln_scale, target_accept, adapting, steps, accepted, divergences) = state;
        Self {
            ln_scale,
            target_accept,
            adapting,
            steps,
            accepted,
            divergences,
        }
    }

    /// One Metropolis transition from `x` under log-density `log_f`.
    /// Returns the new state (possibly `x` itself on rejection).
    ///
    /// Panics if the chain's current state has non-finite log-density; fit
    /// paths that must not panic should use [`RandomWalkMetropolis::try_step`].
    pub fn step<R, F>(&mut self, x: f64, log_f: &F, rng: &mut R) -> f64
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        match self.try_step(x, log_f, rng) {
            Ok(next) => next,
            Err(e) => panic!("random-walk step failed: {e}"),
        }
    }

    /// Fallible Metropolis transition: `Err(NonFiniteLogPosterior)` when the
    /// *current* state `x` has NaN or zero posterior mass (the chain cannot
    /// leave such a point by Metropolis moves, so it is unrecoverable within
    /// the chain). A NaN log-density at the *proposal* is survivable — it is
    /// treated as a rejection and counted in [`RandomWalkMetropolis::divergences`].
    pub fn try_step<R, F>(&mut self, x: f64, log_f: &F, rng: &mut R) -> Result<f64, McmcError>
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        let lf_x = log_f(x);
        if lf_x.is_nan() || lf_x == f64::NEG_INFINITY {
            return Err(McmcError::NonFiniteLogPosterior {
                coordinate: "random-walk current state",
                at: x,
            });
        }
        self.steps += 1;
        let proposal = x + self.scale() * Normal::sample_standard(rng);
        let lf_p = log_f(proposal);
        if lf_p.is_nan() {
            self.divergences += 1;
        }
        let log_alpha = lf_p - lf_x;
        // NaN comparisons are false, so a divergent proposal is rejected here.
        let accept = log_alpha >= 0.0 || rng.gen::<f64>().ln() < log_alpha;
        if accept {
            self.accepted += 1;
        }
        if self.adapting {
            // Robbins–Monro: step size ∝ 1/√t keeps adaptation diminishing.
            let gamma = 1.0 / (self.steps as f64).sqrt().max(1.0);
            let a = if accept { 1.0 } else { 0.0 };
            self.ln_scale += gamma * (a - self.target_accept);
            // Guard rails against run-away adaptation on pathological targets.
            self.ln_scale = self.ln_scale.clamp(-23.0, 23.0);
        }
        Ok(if accept { proposal } else { x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::descriptive::{mean, variance};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn adapts_toward_target_acceptance() {
        let mut rng = seeded_rng(40);
        let mut k = RandomWalkMetropolis::new(50.0); // deliberately bad start
        let log_f = |x: f64| -0.5 * x * x;
        let mut x = 0.0;
        for _ in 0..5_000 {
            x = k.step(x, &log_f, &mut rng);
        }
        let rate = k.acceptance_rate();
        assert!((rate - 0.44).abs() < 0.12, "acceptance {rate}");
        // Scale should have shrunk from 50 to the O(1) optimum.
        assert!(k.scale() < 10.0, "scale {}", k.scale());
    }

    #[test]
    fn frozen_kernel_targets_normal() {
        let mut rng = seeded_rng(41);
        let mut k = RandomWalkMetropolis::new(1.0);
        let log_f = |x: f64| -0.5 * (x - 2.0) * (x - 2.0) / 4.0; // N(2, 2²)
        let mut x = 0.0;
        for _ in 0..2_000 {
            x = k.step(x, &log_f, &mut rng);
        }
        k.freeze();
        let mut xs = Vec::with_capacity(30_000);
        for _ in 0..30_000 {
            x = k.step(x, &log_f, &mut rng);
            xs.push(x);
        }
        assert!((mean(&xs).unwrap() - 2.0).abs() < 0.15);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 0.6);
    }

    #[test]
    fn respects_support_boundaries() {
        // Target supported on (0, 1); the chain must never leave it.
        let mut rng = seeded_rng(42);
        let mut k = RandomWalkMetropolis::new(0.3);
        let log_f = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                f64::NEG_INFINITY
            } else {
                3.0 * p.ln() + 2.0 * (1.0 - p).ln()
            }
        };
        let mut x: f64 = 0.5;
        for _ in 0..5_000 {
            x = k.step(x, &log_f, &mut rng);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "RW scale must be positive")]
    fn rejects_bad_scale() {
        let _ = RandomWalkMetropolis::new(-1.0);
    }

    #[test]
    fn try_new_reports_bad_scale_without_panicking() {
        assert!(matches!(
            RandomWalkMetropolis::try_new(f64::NAN),
            Err(McmcError::BadKernelConfig(_))
        ));
        assert!(matches!(
            RandomWalkMetropolis::try_new(0.0),
            Err(McmcError::BadKernelConfig(_))
        ));
        assert!(RandomWalkMetropolis::try_new(0.5).is_ok());
    }

    #[test]
    fn try_step_errors_on_poisoned_current_state() {
        let mut rng = seeded_rng(43);
        let mut k = RandomWalkMetropolis::new(1.0);
        let log_f = |x: f64| -0.5 * x * x;
        let err = k.try_step(f64::NAN, &|x| log_f(x) * f64::NAN, &mut rng);
        assert!(matches!(err, Err(McmcError::NonFiniteLogPosterior { .. })));
        // Zero posterior mass at the current point is equally unrecoverable.
        let err = k.try_step(-1.0, &|x| if x < 0.0 { f64::NEG_INFINITY } else { 0.0 }, &mut rng);
        assert!(matches!(err, Err(McmcError::NonFiniteLogPosterior { .. })));
    }

    #[test]
    fn nan_proposals_are_rejected_and_counted() {
        let mut rng = seeded_rng(44);
        let mut k = RandomWalkMetropolis::new(1.0);
        // Log-density is NaN right of 0: every proposal there is divergent.
        let log_f = |x: f64| if x > 0.0 { f64::NAN } else { -0.5 * x * x };
        let mut x = -3.0;
        for _ in 0..200 {
            x = k.try_step(x, &log_f, &mut rng).expect("state stays valid");
            assert!(x <= 0.0, "divergent proposal was accepted");
        }
        assert!(k.divergences() > 0, "expected some NaN proposals");
    }
}
