//! Adaptive Gaussian random-walk Metropolis.
//!
//! The paper's stated kernel for the non-conjugate coordinates. Proposals are
//! `y′ = y + σ·ε`, `ε ~ N(0,1)`, on an unconstrained coordinate (combine with
//! [`crate::transform::Transform`] for bounded parameters). The scale `σ` is
//! adapted during burn-in by a Robbins–Monro recursion toward a target
//! acceptance rate (0.44 is optimal for univariate targets), then frozen so
//! the chain is exactly Markovian during sampling.

use pipefail_stats::dist::Normal;
use rand::Rng;

/// Adaptive univariate random-walk Metropolis kernel.
#[derive(Debug, Clone)]
pub struct RandomWalkMetropolis {
    ln_scale: f64,
    target_accept: f64,
    adapting: bool,
    steps: u64,
    accepted: u64,
}

impl RandomWalkMetropolis {
    /// Create a kernel with initial proposal scale `scale`.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "RW scale must be positive");
        Self {
            ln_scale: scale.ln(),
            target_accept: 0.44,
            adapting: true,
            steps: 0,
            accepted: 0,
        }
    }

    /// Override the target acceptance rate (must be in (0, 1)).
    pub fn with_target_accept(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0);
        self.target_accept = rate;
        self
    }

    /// Stop adapting (call at the end of burn-in to make the kernel
    /// exactly Markovian).
    pub fn freeze(&mut self) {
        self.adapting = false;
    }

    /// Current proposal standard deviation.
    pub fn scale(&self) -> f64 {
        self.ln_scale.exp()
    }

    /// Empirical acceptance rate so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// One Metropolis transition from `x` under log-density `log_f`.
    /// Returns the new state (possibly `x` itself on rejection).
    pub fn step<R, F>(&mut self, x: f64, log_f: &F, rng: &mut R) -> f64
    where
        R: Rng + ?Sized,
        F: Fn(f64) -> f64,
    {
        self.steps += 1;
        let proposal = x + self.scale() * Normal::sample_standard(rng);
        let log_alpha = log_f(proposal) - log_f(x);
        let accept = log_alpha >= 0.0 || rng.gen::<f64>().ln() < log_alpha;
        if accept {
            self.accepted += 1;
        }
        if self.adapting {
            // Robbins–Monro: step size ∝ 1/√t keeps adaptation diminishing.
            let gamma = 1.0 / (self.steps as f64).sqrt().max(1.0);
            let a = if accept { 1.0 } else { 0.0 };
            self.ln_scale += gamma * (a - self.target_accept);
            // Guard rails against run-away adaptation on pathological targets.
            self.ln_scale = self.ln_scale.clamp(-23.0, 23.0);
        }
        if accept {
            proposal
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::descriptive::{mean, variance};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn adapts_toward_target_acceptance() {
        let mut rng = seeded_rng(40);
        let mut k = RandomWalkMetropolis::new(50.0); // deliberately bad start
        let log_f = |x: f64| -0.5 * x * x;
        let mut x = 0.0;
        for _ in 0..5_000 {
            x = k.step(x, &log_f, &mut rng);
        }
        let rate = k.acceptance_rate();
        assert!((rate - 0.44).abs() < 0.12, "acceptance {rate}");
        // Scale should have shrunk from 50 to the O(1) optimum.
        assert!(k.scale() < 10.0, "scale {}", k.scale());
    }

    #[test]
    fn frozen_kernel_targets_normal() {
        let mut rng = seeded_rng(41);
        let mut k = RandomWalkMetropolis::new(1.0);
        let log_f = |x: f64| -0.5 * (x - 2.0) * (x - 2.0) / 4.0; // N(2, 2²)
        let mut x = 0.0;
        for _ in 0..2_000 {
            x = k.step(x, &log_f, &mut rng);
        }
        k.freeze();
        let mut xs = Vec::with_capacity(30_000);
        for _ in 0..30_000 {
            x = k.step(x, &log_f, &mut rng);
            xs.push(x);
        }
        assert!((mean(&xs).unwrap() - 2.0).abs() < 0.15);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 0.6);
    }

    #[test]
    fn respects_support_boundaries() {
        // Target supported on (0, 1); the chain must never leave it.
        let mut rng = seeded_rng(42);
        let mut k = RandomWalkMetropolis::new(0.3);
        let log_f = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                f64::NEG_INFINITY
            } else {
                3.0 * p.ln() + 2.0 * (1.0 - p).ln()
            }
        };
        let mut x: f64 = 0.5;
        for _ in 0..5_000 {
            x = k.step(x, &log_f, &mut rng);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "RW scale must be positive")]
    fn rejects_bad_scale() {
        let _ = RandomWalkMetropolis::new(-1.0);
    }
}
