//! Bijections between constrained parameter spaces and ℝ.
//!
//! Group failure rates live in (0, 1) and concentrations in (0, ∞); sampling
//! them with an unconstrained kernel requires transforming the target density
//! with the log-Jacobian of the bijection. [`Transform`] packages the forward
//! map, its inverse, and that Jacobian so samplers can work on ℝ and still
//! target the right distribution.

use pipefail_stats::special::{logit, sigmoid};

/// A smooth bijection `constrained → ℝ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Identity: parameter already lives on ℝ.
    Identity,
    /// `y = ln x` for `x ∈ (0, ∞)`.
    Log,
    /// `y = logit(x)` for `x ∈ (0, 1)`.
    Logit,
    /// `y = logit((x − lo)/(hi − lo))` for `x ∈ (lo, hi)`.
    LogitBounded {
        /// Lower bound of the constrained interval.
        lo: f64,
        /// Upper bound of the constrained interval.
        hi: f64,
    },
}

impl Transform {
    /// Map a constrained value to ℝ.
    pub fn forward(&self, x: f64) -> f64 {
        match *self {
            Transform::Identity => x,
            Transform::Log => x.ln(),
            Transform::Logit => logit(x),
            Transform::LogitBounded { lo, hi } => logit((x - lo) / (hi - lo)),
        }
    }

    /// Map an unconstrained value back to the constrained space.
    pub fn inverse(&self, y: f64) -> f64 {
        match *self {
            Transform::Identity => y,
            Transform::Log => y.exp(),
            Transform::Logit => sigmoid(y),
            Transform::LogitBounded { lo, hi } => lo + (hi - lo) * sigmoid(y),
        }
    }

    /// `ln |d inverse(y) / dy|` — added to the log-density so that sampling
    /// on ℝ targets the intended constrained distribution.
    pub fn ln_jacobian(&self, y: f64) -> f64 {
        match *self {
            Transform::Identity => 0.0,
            Transform::Log => y,
            Transform::Logit => {
                // d sigmoid/dy = s(1−s); ln = ln s + ln(1−s), stable form:
                let s = sigmoid(y);
                s.ln() + (1.0 - s).ln()
            }
            Transform::LogitBounded { lo, hi } => {
                let s = sigmoid(y);
                (hi - lo).ln() + s.ln() + (1.0 - s).ln()
            }
        }
    }

    /// Wrap a log-density on the constrained space into one on ℝ
    /// (including the Jacobian correction).
    pub fn wrap_log_density<'f>(
        &self,
        log_density: impl Fn(f64) -> f64 + 'f,
    ) -> impl Fn(f64) -> f64 + 'f
    where
        Self: 'f,
    {
        let t = *self;
        move |y: f64| {
            let x = t.inverse(y);
            let lp = log_density(x);
            if lp == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                lp + t.ln_jacobian(y)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let cases = [
            (Transform::Identity, 3.7),
            (Transform::Log, 0.02),
            (Transform::Logit, 0.85),
            (Transform::LogitBounded { lo: 2.0, hi: 5.0 }, 3.1),
        ];
        for (t, x) in cases {
            let y = t.forward(x);
            assert!((t.inverse(y) - x).abs() < 1e-10, "{t:?}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let ts = [
            Transform::Log,
            Transform::Logit,
            Transform::LogitBounded { lo: -1.0, hi: 4.0 },
        ];
        for t in ts {
            for &y in &[-2.0, -0.3, 0.0, 1.1, 2.5] {
                let h = 1e-6;
                let num = ((t.inverse(y + h) - t.inverse(y - h)) / (2.0 * h)).abs().ln();
                assert!(
                    (t.ln_jacobian(y) - num).abs() < 1e-5,
                    "{t:?} at y={y}: {} vs {num}",
                    t.ln_jacobian(y)
                );
            }
        }
    }

    #[test]
    fn wrapped_density_integrates_to_same_mass() {
        // Target: Beta(2,2) density on (0,1). After the logit transform the
        // wrapped density on ℝ must integrate to the same total mass (1).
        let beta = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                0.0
            } else {
                6.0 * p * (1.0 - p)
            }
        };
        let log_beta = move |p: f64| {
            let v = beta(p);
            if v > 0.0 {
                v.ln()
            } else {
                f64::NEG_INFINITY
            }
        };
        let t = Transform::Logit;
        let wrapped = t.wrap_log_density(log_beta);
        // Trapezoid rule over a wide range of y.
        let (a, b, n) = (-12.0, 12.0, 40_000);
        let dy = (b - a) / n as f64;
        let mut total = 0.0;
        for i in 0..=n {
            let y = a + i as f64 * dy;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            total += w * wrapped(y).exp() * dy;
        }
        assert!((total - 1.0).abs() < 1e-6, "mass {total}");
    }
}
