//! The beta process on a discrete base measure (§18.3.1.1).
//!
//! With a discrete base measure `H₀ = Σᵢ qᵢ δ_ωᵢ`, a draw of the beta process
//! `H ~ BP(c, H₀)` has atoms at the same locations with weights
//! `πᵢ ~ Beta(c·qᵢ, c·(1−qᵢ))` (Eq. 18.2) — exactly the representation the
//! pipe models use, where atoms are pipes/segments and weights are failure
//! probabilities. The conjugate posterior update under Bernoulli-process
//! observations is Eq. 18.4.

use crate::Result;
use pipefail_stats::dist::{Beta, Sampler};
use rand::Rng;

/// A discrete beta process: concentration `c` and atom means `q`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteBetaProcess {
    concentration: f64,
    means: Vec<f64>,
}

impl DiscreteBetaProcess {
    /// Create from a concentration and per-atom base means (each in (0,1)).
    pub fn new(concentration: f64, means: Vec<f64>) -> Result<Self> {
        if !(concentration.is_finite() && concentration > 0.0) {
            return Err(crate::CoreError::BadConfig("BP concentration must be > 0"));
        }
        if means.iter().any(|q| !(*q > 0.0 && *q < 1.0)) {
            return Err(crate::CoreError::BadConfig("BP atom means must be in (0,1)"));
        }
        Ok(Self {
            concentration,
            means,
        })
    }

    /// Concentration parameter `c`.
    pub fn concentration(&self) -> f64 {
        self.concentration
    }

    /// Base means `qᵢ`.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// True when the process has no atoms.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Draw the atom weights `πᵢ ~ Beta(c qᵢ, c (1−qᵢ))`.
    pub fn sample_weights<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.means
            .iter()
            .map(|&q| {
                Beta::with_mean_concentration(q, self.concentration)
                    .expect("validated at construction")
                    .sample(rng)
            })
            .collect()
    }

    /// Conjugate posterior after `m` Bernoulli-process draws (Eq. 18.4):
    ///
    /// `H | X₁..m ~ BP(c + m, c/(c+m)·H₀ + 1/(c+m)·Σⱼ Xⱼ)`.
    ///
    /// `successes[i]` is the number of draws in which atom `i` was active
    /// (the row sum of the binary matrix).
    pub fn posterior(&self, successes: &[u64], m: u64) -> Result<Self> {
        if successes.len() != self.means.len() {
            return Err(crate::CoreError::BadConfig(
                "posterior successes length must match atom count",
            ));
        }
        let c = self.concentration;
        let cm = c + m as f64;
        let means = self
            .means
            .iter()
            .zip(successes)
            .map(|(&q, &s)| {
                let post = (c * q + s as f64) / cm;
                // Keep strictly inside (0,1) for downstream Beta parameters.
                post.clamp(1e-12, 1.0 - 1e-12)
            })
            .collect();
        Self::new(cm, means)
    }

    /// Posterior mean of atom `i`'s weight given `s` successes out of `m`
    /// draws: `E[πᵢ | data] = (c qᵢ + s)/(c + m)`.
    pub fn posterior_mean(&self, i: usize, s: u64, m: u64) -> f64 {
        (self.concentration * self.means[i] + s as f64) / (self.concentration + m as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::descriptive::mean;
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiscreteBetaProcess::new(0.0, vec![0.5]).is_err());
        assert!(DiscreteBetaProcess::new(1.0, vec![0.0]).is_err());
        assert!(DiscreteBetaProcess::new(1.0, vec![1.0]).is_err());
    }

    #[test]
    fn sampled_weights_have_base_means() {
        let mut rng = seeded_rng(120);
        let bp = DiscreteBetaProcess::new(20.0, vec![0.1, 0.5, 0.9]).unwrap();
        let n = 20_000;
        let mut acc = [0.0; 3];
        for _ in 0..n {
            for (a, w) in acc.iter_mut().zip(bp.sample_weights(&mut rng)) {
                *a += w;
            }
        }
        for (a, &q) in acc.iter().zip(bp.means()) {
            let emp = a / n as f64;
            assert!((emp - q).abs() < 0.01, "mean {emp} vs {q}");
        }
    }

    #[test]
    fn posterior_update_matches_eq_18_4() {
        let bp = DiscreteBetaProcess::new(2.0, vec![0.3, 0.3]).unwrap();
        // Atom 0 active in 4 of 10 draws; atom 1 never.
        let post = bp.posterior(&[4, 0], 10).unwrap();
        assert!((post.concentration() - 12.0).abs() < 1e-12);
        assert!((post.means()[0] - (2.0 * 0.3 + 4.0) / 12.0).abs() < 1e-12);
        assert!((post.means()[1] - (2.0 * 0.3) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_concentrates_with_data() {
        // With lots of data the posterior mean approaches the empirical rate.
        let bp = DiscreteBetaProcess::new(1.0, vec![0.5]).unwrap();
        let m = 10_000;
        let s = 100; // empirical rate 1%
        let post_mean = bp.posterior_mean(0, s, m);
        assert!((post_mean - 0.01).abs() < 0.001, "{post_mean}");
    }

    #[test]
    fn posterior_sampling_agrees_with_analytic_mean() {
        let mut rng = seeded_rng(121);
        let bp = DiscreteBetaProcess::new(5.0, vec![0.2]).unwrap();
        let post = bp.posterior(&[3], 8).unwrap();
        let draws: Vec<f64> = (0..30_000).map(|_| post.sample_weights(&mut rng)[0]).collect();
        let want = bp.posterior_mean(0, 3, 8);
        assert!((mean(&draws).unwrap() - want).abs() < 0.01);
    }
}
