//! Shared machinery for the hierarchical beta-process models (HBP and
//! DPMHBP): exposure-scaled observation patterns and the marginal
//! Beta–Bernoulli likelihood.
//!
//! A unit (pipe for HBP, segment for DPMHBP) with `s` failure-years and `f`
//! clean exposure-years has, after integrating its failure probability
//! π ~ Beta(c·q, c·(1−q)) out, the marginal likelihood
//!
//! `B(c·q + s, c·(1−q) + f) / B(c·q, c·(1−q))`.
//!
//! Covariates enter by scaling the clean exposure `f → f·e` (the
//! Poisson-offset view of "multiplicative features"); multipliers are
//! quantised to a fixed grid so units collapse into a small set of distinct
//! `(s, f·e)` *patterns* — the trick that keeps Gibbs sweeps O(units ×
//! clusters) with tiny constants even though every likelihood involves six
//! log-gamma evaluations.

use pipefail_stats::special::{ln_beta, ln_gamma};

/// Quantise a hazard multiplier onto a geometric grid (ln-steps of 0.25
/// over [e⁻³, e³]), so pattern tables stay small.
pub fn quantize_multiplier(e: f64) -> f64 {
    let ln_e = e.max(1e-9).ln().clamp(-3.0, 3.0);
    ((ln_e / 0.25).round() * 0.25).exp()
}

/// One distinct observation pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsPattern {
    /// Failure-years.
    pub s: f64,
    /// Exposure-scaled clean years.
    pub f: f64,
}

impl ObsPattern {
    /// Marginal log-likelihood of this pattern under group parameters
    /// `(q, c)`.
    pub fn log_marginal(&self, q: f64, c: f64) -> f64 {
        let a = c * q;
        let b = c * (1.0 - q);
        ln_beta(a + self.s, b + self.f) - ln_beta(a, b)
    }

    /// Posterior mean of the unit's failure probability given `(q, c)`:
    /// `(c·q + s) / (c + s + f)`.
    pub fn posterior_mean(&self, q: f64, c: f64) -> f64 {
        (c * q + self.s) / (c + self.s + self.f)
    }
}

/// Hoisted per-`(q, c)` state for evaluating many pattern marginals under
/// the same group parameters.
///
/// `log_marginal` expands to six log-gamma evaluations per pattern; three of
/// them (`ln Γ(a)`, `ln Γ(b)`, `ln Γ(a+b)`) depend only on `(q, c)` and are
/// hoisted here. The remaining three are *shifted* arguments `ln Γ(x + d)`,
/// and when the shift `d` is a small non-negative integer — failure-years
/// always, exposure-years whenever the covariate multiplier is 1 — the
/// recurrence `ln Γ(x+d) − ln Γ(x) = Σ_{j<d} ln(x+j)` replaces the Lanczos
/// evaluation with `d` plain logs (zero work for the dominant `s = 0` case).
#[derive(Debug, Clone, Copy)]
pub struct MarginalContext {
    a: f64,
    b: f64,
    ab: f64,
    ln_gamma_a: f64,
    ln_gamma_b: f64,
    ln_gamma_ab: f64,
}

impl MarginalContext {
    /// Hoist the `(q, c)`-only log-gammas.
    pub fn new(q: f64, c: f64) -> Self {
        let a = c * q;
        let b = c * (1.0 - q);
        Self {
            a,
            b,
            ab: a + b,
            ln_gamma_a: ln_gamma(a),
            ln_gamma_b: ln_gamma(b),
            ln_gamma_ab: ln_gamma(a + b),
        }
    }

    /// `ln Γ(x + d) − ln Γ(x)` given the cached `ln Γ(x)`.
    #[inline]
    fn ln_gamma_shift(x: f64, ln_gamma_x: f64, d: f64) -> f64 {
        if d == 0.0 {
            return 0.0;
        }
        // Recurrence beats Lanczos up to a few dozen steps; beyond that (or
        // for fractional shifts from covariate-scaled exposure) fall back.
        const MAX_SHIFT: f64 = 48.0;
        if d > 0.0 && d <= MAX_SHIFT && d.fract() == 0.0 {
            let mut acc = 0.0;
            for j in 0..d as usize {
                acc += (x + j as f64).ln();
            }
            acc
        } else {
            ln_gamma(x + d) - ln_gamma_x
        }
    }

    /// Marginal log-likelihood of `pat` under this context's `(q, c)`;
    /// equal to [`ObsPattern::log_marginal`] up to ~1e-13 (the recurrence
    /// and the direct Lanczos path round differently in the last bits).
    pub fn log_marginal(&self, pat: ObsPattern) -> f64 {
        Self::ln_gamma_shift(self.a, self.ln_gamma_a, pat.s)
            + Self::ln_gamma_shift(self.b, self.ln_gamma_b, pat.f)
            - Self::ln_gamma_shift(self.ab, self.ln_gamma_ab, pat.s + pat.f)
    }
}

/// A deduplicated pattern table over `n` units.
#[derive(Debug, Clone)]
pub struct PatternTable {
    patterns: Vec<ObsPattern>,
    index_of: Vec<usize>,
}

impl PatternTable {
    /// Build from per-unit `(failure_years, clean_years, multiplier)`.
    /// Multipliers are quantised; patterns keyed to 1e-9 resolution.
    pub fn build(units: impl Iterator<Item = (f64, f64, f64)>) -> Self {
        let mut patterns: Vec<ObsPattern> = Vec::new();
        let mut keys: std::collections::HashMap<(u64, u64), usize> = std::collections::HashMap::new();
        let mut index_of = Vec::new();
        for (s, f, e) in units {
            let fe = f * quantize_multiplier(e);
            let key = ((s * 1e6).round() as u64, (fe * 1e6).round() as u64);
            let idx = *keys.entry(key).or_insert_with(|| {
                patterns.push(ObsPattern { s, f: fe });
                patterns.len() - 1
            });
            index_of.push(idx);
        }
        Self { patterns, index_of }
    }

    /// Number of units.
    pub fn units(&self) -> usize {
        self.index_of.len()
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern index of unit `i`.
    pub fn pattern_of(&self, i: usize) -> usize {
        self.index_of[i]
    }

    /// Pattern by index.
    pub fn pattern(&self, idx: usize) -> ObsPattern {
        self.patterns[idx]
    }

    /// All patterns.
    pub fn patterns(&self) -> &[ObsPattern] {
        &self.patterns
    }

    /// Sum of `count[p] · log_marginal(p | q, c)` over pattern counts — the
    /// group log-likelihood used when slice-sampling `(q, c)`.
    pub fn group_log_likelihood(&self, counts: &[f64], q: f64, c: f64) -> f64 {
        debug_assert_eq!(counts.len(), self.patterns.len());
        let ctx = MarginalContext::new(q, c);
        let mut acc = 0.0;
        for (pat, &cnt) in self.patterns.iter().zip(counts) {
            if cnt > 0.0 {
                acc += cnt * ctx.log_marginal(*pat);
            }
        }
        acc
    }

    /// [`group_log_likelihood`](Self::group_log_likelihood) over a sparse
    /// `(pattern index, count)` list, skipping the dense zero scan. The
    /// Gibbs sweeps evaluate this with fixed counts and many `(q, c)`
    /// proposals, and most groups touch a handful of the table's patterns.
    pub fn group_log_likelihood_sparse(&self, sparse: &[(usize, f64)], q: f64, c: f64) -> f64 {
        let ctx = MarginalContext::new(q, c);
        let mut acc = 0.0;
        for &(idx, cnt) in sparse {
            acc += cnt * ctx.log_marginal(self.patterns[idx]);
        }
        acc
    }
}

/// The nonzero `(pattern index, count)` pairs of a dense count vector, for
/// [`PatternTable::group_log_likelihood_sparse`].
pub fn sparse_counts(counts: &[f64]) -> Vec<(usize, f64)> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0.0)
        .map(|(i, &c)| (i, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_idempotent_and_bounded() {
        for &e in &[0.001, 0.1, 0.5, 1.0, 2.7, 100.0] {
            let q = quantize_multiplier(e);
            assert!((quantize_multiplier(q) - q).abs() < 1e-12);
            assert!(q >= (-3.0_f64).exp() - 1e-9 && q <= (3.0_f64).exp() + 1e-9);
        }
        assert_eq!(quantize_multiplier(1.0), 1.0);
    }

    #[test]
    fn log_marginal_matches_direct_integration() {
        // For s=1, f=0: marginal = E[π] = q. For s=0, f=1: = 1 − q.
        let p1 = ObsPattern { s: 1.0, f: 0.0 };
        let p0 = ObsPattern { s: 0.0, f: 1.0 };
        for &(q, c) in &[(0.1, 5.0), (0.7, 2.0), (0.01, 50.0)] {
            assert!((p1.log_marginal(q, c) - q.ln()).abs() < 1e-10);
            assert!((p0.log_marginal(q, c) - (1.0 - q).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn posterior_mean_interpolates_prior_and_data() {
        let pat = ObsPattern { s: 3.0, f: 7.0 };
        // Huge c → prior mean dominates; c → 0 → empirical rate.
        assert!((pat.posterior_mean(0.2, 1e9) - 0.2).abs() < 1e-6);
        assert!((pat.posterior_mean(0.2, 1e-9) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn table_dedupes_patterns() {
        let units = vec![
            (0.0, 11.0, 1.0),
            (0.0, 11.0, 1.0),
            (1.0, 10.0, 1.0),
            (0.0, 11.0, 2.0), // different multiplier → different pattern
        ];
        let t = PatternTable::build(units.into_iter());
        assert_eq!(t.units(), 4);
        assert_eq!(t.len(), 3);
        assert_eq!(t.pattern_of(0), t.pattern_of(1));
        assert_ne!(t.pattern_of(0), t.pattern_of(2));
        assert_ne!(t.pattern_of(0), t.pattern_of(3));
    }

    #[test]
    fn group_log_likelihood_sums_counts() {
        let t = PatternTable::build(vec![(0.0, 5.0, 1.0), (1.0, 4.0, 1.0)].into_iter());
        let counts = vec![3.0, 2.0];
        let direct = 3.0 * t.pattern(0).log_marginal(0.1, 10.0)
            + 2.0 * t.pattern(1).log_marginal(0.1, 10.0);
        assert!((t.group_log_likelihood(&counts, 0.1, 10.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn marginal_context_matches_direct_evaluation() {
        // Integer shifts (the recurrence path), fractional shifts (the
        // fallback path), and the zero-shift fast path must all agree with
        // the straight six-log-gamma evaluation.
        let pats = [
            ObsPattern { s: 0.0, f: 0.0 },
            ObsPattern { s: 0.0, f: 11.0 },
            ObsPattern { s: 3.0, f: 8.0 },
            ObsPattern { s: 1.0, f: 14.127 },
            ObsPattern { s: 0.0, f: 7.77 },
            ObsPattern { s: 47.0, f: 48.0 },
            ObsPattern { s: 60.0, f: 200.0 }, // beyond MAX_SHIFT → fallback
        ];
        for &(q, c) in &[(0.01, 50.0), (0.3, 2.0), (0.9, 0.4), (1e-6, 1e4)] {
            let ctx = MarginalContext::new(q, c);
            for pat in pats {
                let direct = pat.log_marginal(q, c);
                let cached = ctx.log_marginal(pat);
                // The error scale is set by the intermediate ln Γ magnitudes
                // (~c·ln c), not the (possibly tiny, cancellation-prone)
                // result — at c = 1e4 the *direct* path already carries
                // ~1e-11 of cancellation error that the recurrence avoids.
                let tol = 1e-12 * (1.0 + direct.abs() + c);
                assert!(
                    (cached - direct).abs() <= tol,
                    "pat {pat:?} (q={q}, c={c}): cached {cached} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn sparse_group_log_likelihood_matches_dense() {
        let t = PatternTable::build(
            vec![(0.0, 5.0, 1.0), (1.0, 4.0, 1.0), (2.0, 3.0, 1.0), (0.0, 5.0, 2.0)].into_iter(),
        );
        let counts = vec![10.0, 0.0, 2.0, 0.0];
        let sparse = sparse_counts(&counts);
        assert_eq!(sparse, vec![(0, 10.0), (2, 2.0)]);
        for &(q, c) in &[(0.05, 20.0), (0.5, 1.0)] {
            let dense = t.group_log_likelihood(&counts, q, c);
            let sp = t.group_log_likelihood_sparse(&sparse, q, c);
            assert_eq!(sp.to_bits(), dense.to_bits(), "paths must be byte-identical");
        }
    }

    #[test]
    fn sparsity_collapses_thousands_into_few_patterns() {
        // The pipe regime: 12-year windows, almost everyone at (0, 11).
        let units = (0..10_000).map(|i| {
            let s = if i % 97 == 0 { 1.0 } else { 0.0 };
            (s, 11.0 - s, 1.0)
        });
        let t = PatternTable::build(units);
        assert_eq!(t.units(), 10_000);
        assert!(t.len() <= 3, "patterns {}", t.len());
    }
}
