//! Shared machinery for the hierarchical beta-process models (HBP and
//! DPMHBP): exposure-scaled observation patterns and the marginal
//! Beta–Bernoulli likelihood.
//!
//! A unit (pipe for HBP, segment for DPMHBP) with `s` failure-years and `f`
//! clean exposure-years has, after integrating its failure probability
//! π ~ Beta(c·q, c·(1−q)) out, the marginal likelihood
//!
//! `B(c·q + s, c·(1−q) + f) / B(c·q, c·(1−q))`.
//!
//! Covariates enter by scaling the clean exposure `f → f·e` (the
//! Poisson-offset view of "multiplicative features"); multipliers are
//! quantised to a fixed grid so units collapse into a small set of distinct
//! `(s, f·e)` *patterns* — the trick that keeps Gibbs sweeps O(units ×
//! clusters) with tiny constants even though every likelihood involves six
//! log-gamma evaluations.

use pipefail_stats::special::ln_beta;

/// Quantise a hazard multiplier onto a geometric grid (ln-steps of 0.25
/// over [e⁻³, e³]), so pattern tables stay small.
pub fn quantize_multiplier(e: f64) -> f64 {
    let ln_e = e.max(1e-9).ln().clamp(-3.0, 3.0);
    ((ln_e / 0.25).round() * 0.25).exp()
}

/// One distinct observation pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsPattern {
    /// Failure-years.
    pub s: f64,
    /// Exposure-scaled clean years.
    pub f: f64,
}

impl ObsPattern {
    /// Marginal log-likelihood of this pattern under group parameters
    /// `(q, c)`.
    pub fn log_marginal(&self, q: f64, c: f64) -> f64 {
        let a = c * q;
        let b = c * (1.0 - q);
        ln_beta(a + self.s, b + self.f) - ln_beta(a, b)
    }

    /// Posterior mean of the unit's failure probability given `(q, c)`:
    /// `(c·q + s) / (c + s + f)`.
    pub fn posterior_mean(&self, q: f64, c: f64) -> f64 {
        (c * q + self.s) / (c + self.s + self.f)
    }
}

/// A deduplicated pattern table over `n` units.
#[derive(Debug, Clone)]
pub struct PatternTable {
    patterns: Vec<ObsPattern>,
    index_of: Vec<usize>,
}

impl PatternTable {
    /// Build from per-unit `(failure_years, clean_years, multiplier)`.
    /// Multipliers are quantised; patterns keyed to 1e-9 resolution.
    pub fn build(units: impl Iterator<Item = (f64, f64, f64)>) -> Self {
        let mut patterns: Vec<ObsPattern> = Vec::new();
        let mut keys: std::collections::HashMap<(u64, u64), usize> = std::collections::HashMap::new();
        let mut index_of = Vec::new();
        for (s, f, e) in units {
            let fe = f * quantize_multiplier(e);
            let key = ((s * 1e6).round() as u64, (fe * 1e6).round() as u64);
            let idx = *keys.entry(key).or_insert_with(|| {
                patterns.push(ObsPattern { s, f: fe });
                patterns.len() - 1
            });
            index_of.push(idx);
        }
        Self { patterns, index_of }
    }

    /// Number of units.
    pub fn units(&self) -> usize {
        self.index_of.len()
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern index of unit `i`.
    pub fn pattern_of(&self, i: usize) -> usize {
        self.index_of[i]
    }

    /// Pattern by index.
    pub fn pattern(&self, idx: usize) -> ObsPattern {
        self.patterns[idx]
    }

    /// All patterns.
    pub fn patterns(&self) -> &[ObsPattern] {
        &self.patterns
    }

    /// Sum of `count[p] · log_marginal(p | q, c)` over pattern counts — the
    /// group log-likelihood used when slice-sampling `(q, c)`.
    pub fn group_log_likelihood(&self, counts: &[f64], q: f64, c: f64) -> f64 {
        debug_assert_eq!(counts.len(), self.patterns.len());
        let mut acc = 0.0;
        for (pat, &cnt) in self.patterns.iter().zip(counts) {
            if cnt > 0.0 {
                acc += cnt * pat.log_marginal(q, c);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_idempotent_and_bounded() {
        for &e in &[0.001, 0.1, 0.5, 1.0, 2.7, 100.0] {
            let q = quantize_multiplier(e);
            assert!((quantize_multiplier(q) - q).abs() < 1e-12);
            assert!(q >= (-3.0_f64).exp() - 1e-9 && q <= (3.0_f64).exp() + 1e-9);
        }
        assert_eq!(quantize_multiplier(1.0), 1.0);
    }

    #[test]
    fn log_marginal_matches_direct_integration() {
        // For s=1, f=0: marginal = E[π] = q. For s=0, f=1: = 1 − q.
        let p1 = ObsPattern { s: 1.0, f: 0.0 };
        let p0 = ObsPattern { s: 0.0, f: 1.0 };
        for &(q, c) in &[(0.1, 5.0), (0.7, 2.0), (0.01, 50.0)] {
            assert!((p1.log_marginal(q, c) - q.ln()).abs() < 1e-10);
            assert!((p0.log_marginal(q, c) - (1.0 - q).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn posterior_mean_interpolates_prior_and_data() {
        let pat = ObsPattern { s: 3.0, f: 7.0 };
        // Huge c → prior mean dominates; c → 0 → empirical rate.
        assert!((pat.posterior_mean(0.2, 1e9) - 0.2).abs() < 1e-6);
        assert!((pat.posterior_mean(0.2, 1e-9) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn table_dedupes_patterns() {
        let units = vec![
            (0.0, 11.0, 1.0),
            (0.0, 11.0, 1.0),
            (1.0, 10.0, 1.0),
            (0.0, 11.0, 2.0), // different multiplier → different pattern
        ];
        let t = PatternTable::build(units.into_iter());
        assert_eq!(t.units(), 4);
        assert_eq!(t.len(), 3);
        assert_eq!(t.pattern_of(0), t.pattern_of(1));
        assert_ne!(t.pattern_of(0), t.pattern_of(2));
        assert_ne!(t.pattern_of(0), t.pattern_of(3));
    }

    #[test]
    fn group_log_likelihood_sums_counts() {
        let t = PatternTable::build(vec![(0.0, 5.0, 1.0), (1.0, 4.0, 1.0)].into_iter());
        let counts = vec![3.0, 2.0];
        let direct = 3.0 * t.pattern(0).log_marginal(0.1, 10.0)
            + 2.0 * t.pattern(1).log_marginal(0.1, 10.0);
        assert!((t.group_log_likelihood(&counts, 0.1, 10.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn sparsity_collapses_thousands_into_few_patterns() {
        // The pipe regime: 12-year windows, almost everyone at (0, 11).
        let units = (0..10_000).map(|i| {
            let s = if i % 97 == 0 { 1.0 } else { 0.0 };
            (s, 11.0 - s, 1.0)
        });
        let t = PatternTable::build(units);
        assert_eq!(t.units(), 10_000);
        assert!(t.len() <= 3, "patterns {}", t.len());
    }
}
