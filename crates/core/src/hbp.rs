//! The hierarchical beta process with fixed expert groupings (§18.3.1.3).
//!
//! The strongest prior-work baseline [Li et al., Mach. Learn. 95(1), 2014]:
//! pipes are grouped by a heuristic domain attribute (material, diameter
//! band, or laid-year band), a beta process models each group's failure rate
//! `q_k`, and pipe failure probabilities `π_i ~ Beta(c_k q_k, c_k (1−q_k))`
//! shrink toward their group rate — sharing the sparse failure data within
//! groups. Inference is Gibbs with slice-sampling for the non-conjugate
//! `(q_k, c_k)` (Metropolis-within-Gibbs in the paper; our slice kernel is
//! tuning-free and an RW-Metropolis kernel is available for the ablation
//! benches).
//!
//! This model works at *pipe* level and ignores pipe length — exactly the
//! two limitations (§18.3.3) the DPMHBP removes.

use crate::checkpoint::{CheckpointSpec, Fingerprint, Reader, Writer};
use crate::covariates::CovariateAdjuster;
use crate::hier::PatternTable;
use crate::model::{FailureModel, RiskRanking, RiskScore};
use crate::{CoreError, Result};
use pipefail_mcmc::kernel::{KernelKind, UnivariateKernel};
use pipefail_mcmc::rw::RandomWalkMetropolis;
use pipefail_mcmc::transform::Transform;
use pipefail_mcmc::{ChainHealth, HealthConfig, Schedule};
use rand::rngs::StdRng;
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::features::FeatureMask;
use pipefail_network::ids::PipeId;
use pipefail_network::split::TrainTestSplit;
use pipefail_stats::dist::{Beta, ContinuousDist, Gamma};
use pipefail_stats::rng::seeded_rng;

/// How pipes are grouped (the domain-expert heuristics of §18.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupingScheme {
    /// One group per material.
    Material,
    /// Diameter bands (one group per nominal diameter).
    Diameter,
    /// Laid-year bands of the given width in years.
    LaidYear(u32),
}

impl GroupingScheme {
    /// Group key of a pipe under this scheme.
    fn key(&self, pipe: &pipefail_network::dataset::Pipe) -> u64 {
        match self {
            GroupingScheme::Material => pipe.material.code().bytes().fold(0u64, |a, b| a * 31 + b as u64),
            GroupingScheme::Diameter => pipe.diameter_mm.round() as u64,
            GroupingScheme::LaidYear(w) => {
                (pipe.laid_year.max(0) as u64) / (*w).max(1) as u64
            }
        }
    }

    /// Display name for result tables.
    pub fn label(&self) -> String {
        match self {
            GroupingScheme::Material => "material".into(),
            GroupingScheme::Diameter => "diameter".into(),
            GroupingScheme::LaidYear(w) => format!("laid-year/{w}"),
        }
    }
}

/// HBP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HbpConfig {
    /// Fixed grouping scheme.
    pub grouping: GroupingScheme,
    /// MCMC schedule.
    pub schedule: Schedule,
    /// Hyper-prior mean failure rate `q₀`; `None` = empirical rate.
    pub q0: Option<f64>,
    /// Hyper concentration `c₀` of the group-rate prior.
    pub c0: f64,
    /// Gamma prior (shape, rate) on each group concentration `c_k`.
    pub c_prior: (f64, f64),
    /// Multiplicative covariate adjustment; `None` disables it.
    pub covariates: Option<FeatureMask>,
    /// Within-Gibbs kernel for the non-conjugate `(q_k, c_k)` updates:
    /// slice sampling (default) or the paper's random-walk Metropolis.
    pub kernel: KernelKind,
    /// Online chain-health thresholds (divergence budget, stuck detection,
    /// optional wall-clock budget).
    pub health: HealthConfig,
    /// Periodic sampler-state checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for HbpConfig {
    fn default() -> Self {
        Self {
            grouping: GroupingScheme::Material,
            schedule: Schedule::new(300, 700, 1),
            q0: None,
            c0: 5.0,
            c_prior: (2.0, 0.05),
            covariates: Some(FeatureMask::water_mains()),
            kernel: KernelKind::Slice,
            health: HealthConfig::default(),
            checkpoint: None,
        }
    }
}

impl HbpConfig {
    /// A reduced schedule for tests and demos.
    pub fn fast() -> Self {
        Self {
            schedule: Schedule::new(100, 200, 1),
            ..Self::default()
        }
    }
}

/// The HBP failure-prediction model.
#[derive(Debug, Clone)]
pub struct Hbp {
    config: HbpConfig,
    /// Posterior-mean group rates from the last fit, keyed by group label
    /// order (for reports).
    last_group_rates: Vec<f64>,
}

impl Hbp {
    /// Create with a configuration.
    pub fn new(config: HbpConfig) -> Self {
        Self {
            config,
            last_group_rates: Vec::new(),
        }
    }

    /// Posterior-mean group failure rates from the most recent fit.
    pub fn group_rates(&self) -> &[f64] {
        &self.last_group_rates
    }
}

impl FailureModel for Hbp {
    fn name(&self) -> &'static str {
        "HBP"
    }

    fn posterior_summary(&self) -> Vec<crate::snapshot::SummarySection> {
        vec![crate::snapshot::SummarySection::new(format!(
            "group_posterior[{}]",
            self.config.grouping.label()
        ))
        .with_field("rate", self.last_group_rates.clone())]
    }

    fn fit_rank_class(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        class: PipeClass,
        seed: u64,
    ) -> Result<RiskRanking> {
        crate::validate::validate_fit_inputs(dataset, split, class)?;
        let pipes: Vec<&pipefail_network::dataset::Pipe> =
            dataset.pipes_of_class(class).collect();
        if pipes.is_empty() {
            return Err(CoreError::EmptyEvaluationSet("no pipes of requested class"));
        }

        // Pipe-level sufficient statistics over the training window.
        let adjuster = match self.config.covariates {
            Some(mask) => CovariateAdjuster::fit(dataset, split, mask, class)?,
            None => CovariateAdjuster::identity(dataset.segments().len()),
        };

        // Pipe failure-years: distinct (pipe, year) pairs in train.
        let mut pipe_fail_years: std::collections::HashSet<(PipeId, i32)> =
            std::collections::HashSet::new();
        for f in dataset.failures() {
            if split.train.contains(f.year) {
                pipe_fail_years.insert((f.pipe, f.year));
            }
        }
        let mut s_by_pipe = vec![0u32; dataset.pipes().len()];
        for (pid, _) in &pipe_fail_years {
            s_by_pipe[pid.index()] += 1;
        }

        // Group assignment and pattern table rows per evaluated pipe.
        let mut group_keys: Vec<u64> = Vec::with_capacity(pipes.len());
        let mut key_index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut groups: Vec<usize> = Vec::with_capacity(pipes.len());
        let mut multipliers: Vec<f64> = Vec::with_capacity(pipes.len());
        let rows: Vec<(f64, f64, f64)> = pipes
            .iter()
            .map(|p| {
                let key = self.config.grouping.key(p);
                let g = *key_index.entry(key).or_insert_with(|| {
                    group_keys.push(key);
                    group_keys.len() - 1
                });
                groups.push(g);
                let s = s_by_pipe[p.id.index()] as f64;
                let exposure = {
                    let first = split.train.start.max(p.laid_year + 1);
                    (split.train.end - first + 1).max(0) as f64
                }
                .max(s);
                // Pipe multiplier: length-weighted mean of segment multipliers.
                let mut w = 0.0;
                let mut acc = 0.0;
                for &sid in &p.segments {
                    let len = dataset.segment(sid).length_m();
                    acc += len * adjuster.multiplier(sid.index());
                    w += len;
                }
                let e = if w > 0.0 { acc / w } else { 1.0 };
                multipliers.push(crate::hier::quantize_multiplier(e));
                (s, (exposure - s).max(0.0), e)
            })
            .collect();
        let table = PatternTable::build(rows.into_iter());
        let n_groups = group_keys.len();

        // Per-group pattern counts. Groups are fixed for the whole fit, so
        // the sparse nonzero lists the likelihood evaluations iterate are
        // built once here, not per sweep.
        let mut counts = vec![vec![0.0; table.len()]; n_groups];
        for (i, &g) in groups.iter().enumerate() {
            counts[g][table.pattern_of(i)] += 1.0;
        }
        let sparse: Vec<Vec<(usize, f64)>> =
            counts.iter().map(|c| crate::hier::sparse_counts(c)).collect();

        // Empirical hyper mean.
        let q0 = self.config.q0.unwrap_or_else(|| {
            let total_s: f64 = (0..table.units()).map(|i| table.pattern(table.pattern_of(i)).s).sum();
            let total_m: f64 = (0..table.units())
                .map(|i| {
                    let p = table.pattern(table.pattern_of(i));
                    p.s + p.f
                })
                .sum();
            ((total_s + 0.5) / (total_m + 1.0)).clamp(1e-6, 0.5)
        });
        let c0 = self.config.c0;
        let (ca, cb) = self.config.c_prior;
        let q_prior = Beta::with_mean_concentration(q0, c0)
            .map_err(|_| CoreError::BadConfig("invalid (q0, c0) hyper-prior"))?;
        let c_prior = Gamma::new(ca, cb).map_err(|_| CoreError::BadConfig("invalid c prior"))?;

        // Fingerprint ties any checkpoint to this exact (seed, config, data)
        // triple; a stale or foreign checkpoint is silently ignored.
        let fingerprint = {
            let mut fp = Fingerprint::new();
            fp.push_str("hbp").push_u64(seed);
            let s = &self.config.schedule;
            fp.push_usize(s.burn_in).push_usize(s.samples).push_usize(s.thin);
            fp.push_str(&self.config.grouping.label())
                .push_f64(q0)
                .push_f64(c0)
                .push_f64(ca)
                .push_f64(cb)
                .push_str(&format!("{:?}", self.config.kernel))
                .push_str(&format!("{:?}", self.config.covariates))
                .push_usize(table.units())
                .push_usize(table.len())
                .push_usize(n_groups);
            for p in table.patterns() {
                fp.push_f64(p.s).push_f64(p.f);
            }
            for u in 0..table.units() {
                fp.push_usize(table.pattern_of(u));
            }
            for (&g, &m) in groups.iter().zip(&multipliers) {
                fp.push_usize(g).push_f64(m);
            }
            fp.finish()
        };

        // State: per-group (q, c), with one kernel instance per coordinate
        // so random-walk adaptation (if selected) is per-coordinate.
        let mut q = vec![q0; n_groups];
        let mut c = vec![ca / cb; n_groups];
        let mut kernels_q: Vec<UnivariateKernel> = (0..n_groups)
            .map(|_| UnivariateKernel::try_new(self.config.kernel, 1.0))
            .collect::<std::result::Result<_, _>>()?;
        let mut kernels_c: Vec<UnivariateKernel> = (0..n_groups)
            .map(|_| UnivariateKernel::try_new(self.config.kernel, 0.7))
            .collect::<std::result::Result<_, _>>()?;
        let logit = Transform::Logit;
        let log_t = Transform::Log;

        let mut rng = seeded_rng(seed);
        let mut pi_acc = vec![0.0; table.units()];
        let mut retained = 0usize;
        let mut q_acc = vec![0.0; n_groups];
        let mut start_it = 0usize;

        // Resume a matching checkpoint if one is on disk.
        if let Some(spec) = &self.config.checkpoint {
            if let Some(state) = restore_hbp_checkpoint(
                &spec.path,
                fingerprint,
                self.config.kernel,
                n_groups,
                table.units(),
                self.config.schedule.total_iterations(),
            ) {
                rng = state.rng;
                q = state.q;
                c = state.c;
                retained = state.retained;
                pi_acc = state.pi_acc;
                q_acc = state.q_acc;
                kernels_q = state.kernels_q;
                kernels_c = state.kernels_c;
                start_it = state.next_iteration;
            }
        }

        let mut health = ChainHealth::new(self.config.health);
        let sched = self.config.schedule;
        let total = sched.total_iterations();
        for it in start_it..total {
            health.begin_sweep()?;
            for g in 0..n_groups {
                // q_k | rest via slice on logit scale.
                let sparse_g = &sparse[g];
                let c_g = c[g];
                let log_post_q = |y: f64| {
                    let qv = logit.inverse(y);
                    q_prior.ln_pdf(qv)
                        + table.group_log_likelihood_sparse(sparse_g, qv, c_g)
                        + logit.ln_jacobian(y)
                };
                let y = kernels_q[g].try_step(logit.forward(q[g]), &log_post_q, &mut rng)?;
                q[g] = logit.inverse(y).clamp(1e-9, 1.0 - 1e-9);
                // c_k | rest via slice on log scale.
                let q_g = q[g];
                let log_post_c = |y: f64| {
                    let cv = log_t.inverse(y);
                    if !(cv.is_finite() && cv > 0.0) {
                        return f64::NEG_INFINITY;
                    }
                    c_prior.ln_pdf(cv)
                        + table.group_log_likelihood_sparse(sparse_g, q_g, cv)
                        + log_t.ln_jacobian(y)
                };
                let y = kernels_c[g].try_step(log_t.forward(c[g]), &log_post_c, &mut rng)?;
                c[g] = log_t.inverse(y).clamp(1e-6, 1e9);
            }
            if it + 1 == sched.burn_in {
                // End of burn-in: freeze random-walk adaptation so the
                // retained samples come from an exactly Markovian kernel.
                for k in kernels_q.iter_mut().chain(kernels_c.iter_mut()) {
                    k.freeze();
                }
            }
            // Online health: group-mean rate as the scalar monitor, plus the
            // aggregate Metropolis acceptance when the RW kernel is in use.
            health.observe_monitor(q.iter().sum::<f64>() / n_groups as f64)?;
            if self.config.kernel == KernelKind::RandomWalk {
                let (mut acc, mut att) = (0u64, 0u64);
                for k in kernels_q.iter().chain(kernels_c.iter()) {
                    if let UnivariateKernel::RandomWalk(rw) = k {
                        acc += rw.accepted();
                        att += rw.steps();
                    }
                }
                health.record_acceptance(acc, att)?;
            }
            if sched.keep(it) {
                retained += 1;
                for (i, &g) in groups.iter().enumerate() {
                    pi_acc[i] += table.pattern(table.pattern_of(i)).posterior_mean(q[g], c[g]);
                }
                for g in 0..n_groups {
                    q_acc[g] += q[g];
                }
            }
            if let Some(spec) = &self.config.checkpoint {
                if (it + 1).is_multiple_of(spec.every.max(1)) && it + 1 < total {
                    save_hbp_checkpoint(
                        &spec.path,
                        fingerprint,
                        it + 1,
                        &rng,
                        &q,
                        &c,
                        retained,
                        &pi_acc,
                        &q_acc,
                        &kernels_q,
                        &kernels_c,
                    )?;
                }
            }
        }
        if retained == 0 {
            return Err(CoreError::BadConfig("schedule retained zero samples"));
        }
        // The chain finished: a leftover checkpoint would be stale, so drop it.
        if let Some(spec) = &self.config.checkpoint {
            let _ = std::fs::remove_file(&spec.path);
        }
        self.last_group_rates = q_acc.iter().map(|v| v / retained as f64).collect();

        // Prediction applies the covariate multiplier back: the posterior
        // mean is the *base* annual failure probability (exposure was scaled
        // during inference), so the next-year risk of a pipe with hazard
        // multiplier e is 1 − (1 − ρ̄)^e.
        let scores = pipes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let base = (pi_acc[i] / retained as f64).clamp(0.0, 1.0 - 1e-12);
                RiskScore {
                    pipe: p.id,
                    score: 1.0 - (1.0 - base).powf(multipliers[i]),
                }
            })
            .collect();
        RiskRanking::try_new(scores)
    }
}

/// Chain state reconstructed from an HBP checkpoint file.
struct HbpResumed {
    rng: StdRng,
    q: Vec<f64>,
    c: Vec<f64>,
    retained: usize,
    pi_acc: Vec<f64>,
    q_acc: Vec<f64>,
    kernels_q: Vec<UnivariateKernel>,
    kernels_c: Vec<UnivariateKernel>,
    next_iteration: usize,
}

/// Encode the adaptation state of a kernel bank into parallel columns.
/// Slice kernels are stateless (width comes from config) so only the
/// random-walk bank writes anything.
fn put_kernel_bank(w: &mut Writer, prefix: &str, kernels: &[UnivariateKernel]) {
    let mut ln_scale = Vec::new();
    let mut target = Vec::new();
    let mut adapting = Vec::new();
    let mut steps = Vec::new();
    let mut accepted = Vec::new();
    let mut divergences = Vec::new();
    for k in kernels {
        if let UnivariateKernel::RandomWalk(rw) = k {
            let (ls, t, a, s, acc, d) = rw.to_raw_state();
            ln_scale.push(ls);
            target.push(t);
            adapting.push(a as usize);
            steps.push(s);
            accepted.push(acc);
            divergences.push(d);
        }
    }
    w.put_f64_slice(&format!("{prefix}_ln_scale"), &ln_scale);
    w.put_f64_slice(&format!("{prefix}_target"), &target);
    w.put_usize_slice(&format!("{prefix}_adapting"), &adapting);
    w.put_u64_slice(&format!("{prefix}_steps"), &steps);
    w.put_u64_slice(&format!("{prefix}_accepted"), &accepted);
    w.put_u64_slice(&format!("{prefix}_divergences"), &divergences);
}

/// Decode a kernel bank written by [`put_kernel_bank`]. For the slice kind
/// fresh kernels are rebuilt from `width`; for random walk every column must
/// have exactly `n` entries.
fn read_kernel_bank(
    r: &Reader,
    prefix: &str,
    kind: KernelKind,
    n: usize,
    width: f64,
) -> Option<Vec<UnivariateKernel>> {
    match kind {
        KernelKind::Slice => (0..n).map(|_| UnivariateKernel::try_new(kind, width).ok()).collect(),
        KernelKind::RandomWalk => {
            let ln_scale = r.f64_slice(&format!("{prefix}_ln_scale"))?;
            let target = r.f64_slice(&format!("{prefix}_target"))?;
            let adapting = r.usize_slice(&format!("{prefix}_adapting"))?;
            let steps = r.u64_slice(&format!("{prefix}_steps"))?;
            let accepted = r.u64_slice(&format!("{prefix}_accepted"))?;
            let divergences = r.u64_slice(&format!("{prefix}_divergences"))?;
            if [ln_scale.len(), target.len(), adapting.len(), steps.len(), accepted.len(), divergences.len()]
                .iter()
                .any(|&l| l != n)
            {
                return None;
            }
            Some(
                (0..n)
                    .map(|i| {
                        UnivariateKernel::RandomWalk(RandomWalkMetropolis::from_raw_state((
                            ln_scale[i],
                            target[i],
                            adapting[i] == 1,
                            steps[i],
                            accepted[i],
                            divergences[i],
                        )))
                    })
                    .collect(),
            )
        }
    }
}

/// Serialize the complete HBP chain state after `next_iteration` sweeps.
#[allow(clippy::too_many_arguments)] // flat state snapshot, called from one place
fn save_hbp_checkpoint(
    path: &std::path::Path,
    fingerprint: u64,
    next_iteration: usize,
    rng: &StdRng,
    q: &[f64],
    c: &[f64],
    retained: usize,
    pi_acc: &[f64],
    q_acc: &[f64],
    kernels_q: &[UnivariateKernel],
    kernels_c: &[UnivariateKernel],
) -> Result<()> {
    let mut w = Writer::new(fingerprint);
    w.put_usize("next_iteration", next_iteration);
    w.put_u64_slice("rng", &rng.to_raw_state());
    w.put_f64_slice("q", q);
    w.put_f64_slice("c", c);
    w.put_usize("retained", retained);
    w.put_f64_slice("pi_acc", pi_acc);
    w.put_f64_slice("q_acc", q_acc);
    put_kernel_bank(&mut w, "kq", kernels_q);
    put_kernel_bank(&mut w, "kc", kernels_c);
    w.save(path)
}

/// Rebuild HBP chain state from `path`; `None` means "fit from scratch".
fn restore_hbp_checkpoint(
    path: &std::path::Path,
    fingerprint: u64,
    kind: KernelKind,
    n_groups: usize,
    n_units: usize,
    total_iterations: usize,
) -> Option<HbpResumed> {
    let r = Reader::load(path, fingerprint)?;
    let next_iteration = r.usize("next_iteration")?;
    if next_iteration == 0 || next_iteration > total_iterations {
        return None;
    }
    let raw: [u64; 4] = r.u64_slice("rng")?.try_into().ok()?;
    if raw == [0u64; 4] {
        return None;
    }
    let q = r.f64_slice("q")?;
    let c = r.f64_slice("c")?;
    let pi_acc = r.f64_slice("pi_acc")?;
    let q_acc = r.f64_slice("q_acc")?;
    if q.len() != n_groups || c.len() != n_groups || q_acc.len() != n_groups {
        return None;
    }
    if pi_acc.len() != n_units {
        return None;
    }
    if q.iter().any(|v| !(v.is_finite() && *v > 0.0 && *v < 1.0))
        || c.iter().any(|v| !(v.is_finite() && *v > 0.0))
    {
        return None;
    }
    Some(HbpResumed {
        rng: StdRng::from_raw_state(raw),
        q,
        c,
        retained: r.usize("retained")?,
        pi_acc,
        q_acc,
        kernels_q: read_kernel_bank(&r, "kq", kind, n_groups, 1.0)?,
        kernels_c: read_kernel_bank(&r, "kc", kind, n_groups, 0.7)?,
        next_iteration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_synth::WorldConfig;

    fn demo_region() -> Dataset {
        WorldConfig::paper()
            .scaled(0.02)
            .only_region("Region A")
            .build(5)
            .regions()[0]
            .clone()
    }

    #[test]
    fn ranks_all_cwm_pipes() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut hbp = Hbp::new(HbpConfig::fast());
        let ranking = hbp.fit_rank(&ds, &split, 9).unwrap();
        assert_eq!(
            ranking.len(),
            ds.pipes_of_class(PipeClass::Critical).count()
        );
        // Scores are probabilities.
        for s in ranking.scores() {
            assert!(s.score > 0.0 && s.score < 1.0, "score {}", s.score);
        }
        assert!(!hbp.group_rates().is_empty());
    }

    #[test]
    fn failed_pipes_rank_higher_on_average() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut hbp = Hbp::new(HbpConfig::fast());
        let ranking = hbp.fit_rank(&ds, &split, 9).unwrap();
        let train_failed = ds.pipe_failed_in(split.train);
        let mut failed_scores = Vec::new();
        let mut clean_scores = Vec::new();
        for s in ranking.scores() {
            if train_failed[s.pipe.index()] {
                failed_scores.push(s.score);
            } else {
                clean_scores.push(s.score);
            }
        }
        if !failed_scores.is_empty() && !clean_scores.is_empty() {
            let mf: f64 = failed_scores.iter().sum::<f64>() / failed_scores.len() as f64;
            let mc: f64 = clean_scores.iter().sum::<f64>() / clean_scores.len() as f64;
            assert!(mf > mc, "train-failed pipes should score higher: {mf} vs {mc}");
        }
    }

    #[test]
    fn grouping_schemes_produce_different_rankings() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mk = |g| {
            Hbp::new(HbpConfig {
                grouping: g,
                ..HbpConfig::fast()
            })
            .fit_rank(&ds, &split, 9)
            .unwrap()
        };
        let by_material = mk(GroupingScheme::Material);
        let by_year = mk(GroupingScheme::LaidYear(10));
        // Same pipes, different order (almost surely).
        assert_eq!(by_material.len(), by_year.len());
        let top_m: Vec<_> = by_material.pipes_in_order().take(10).collect();
        let top_y: Vec<_> = by_year.pipes_in_order().take(10).collect();
        assert_ne!(top_m, top_y, "groupings should disagree somewhere");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let a = Hbp::new(HbpConfig::fast()).fit_rank(&ds, &split, 77).unwrap();
        let b = Hbp::new(HbpConfig::fast()).fit_rank(&ds, &split, 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_walk_kernel_agrees_with_slice() {
        // The paper's Metropolis-within-Gibbs kernel must target the same
        // posterior as our default slice kernel: rankings should correlate
        // strongly.
        use pipefail_mcmc::kernel::KernelKind;
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let slice = Hbp::new(HbpConfig::fast()).fit_rank(&ds, &split, 55).unwrap();
        let rw = Hbp::new(HbpConfig {
            kernel: KernelKind::RandomWalk,
            ..HbpConfig::fast()
        })
        .fit_rank(&ds, &split, 55)
        .unwrap();
        assert_eq!(slice.len(), rw.len());
        let xs: Vec<f64> = slice.scores().iter().map(|s| s.score).collect();
        let ys: Vec<f64> = slice
            .scores()
            .iter()
            .map(|s| rw.score_of(s.pipe).expect("same pipe set"))
            .collect();
        let rho = pipefail_stats::descriptive::spearman(&xs, &ys).unwrap();
        assert!(rho > 0.9, "kernel rankings diverge: spearman {rho}");
    }

    #[test]
    fn interrupted_fit_resumes_to_identical_ranking() {
        // Same kill-and-resume protocol as the DPMHBP test, but with the
        // random-walk kernel so the per-coordinate adaptation state
        // (Robbins–Monro scale, step/accept counters) is exercised too.
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let dir = std::env::temp_dir().join("pipefail_hbp_ckpt_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("fit.ckpt");
        std::fs::remove_file(&ckpt).ok();

        let base = HbpConfig {
            kernel: KernelKind::RandomWalk,
            ..HbpConfig::fast()
        };
        let reference = Hbp::new(base.clone()).fit_rank(&ds, &split, 61).unwrap();

        let spec = CheckpointSpec::new(&ckpt, 25);
        let mut timeouts = 0usize;
        for _ in 0..300 {
            let mut m = Hbp::new(HbpConfig {
                checkpoint: Some(spec.clone()),
                health: HealthConfig::default().with_budget_secs(0.03),
                ..base.clone()
            });
            match m.fit_rank(&ds, &split, 61) {
                Err(CoreError::Chain(pipefail_mcmc::McmcError::Timeout { .. })) => timeouts += 1,
                Ok(_) => break,
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        let resumed = Hbp::new(HbpConfig {
            checkpoint: Some(spec),
            ..base
        })
        .fit_rank(&ds, &split, 61)
        .unwrap();
        assert_eq!(resumed, reference, "resume after {timeouts} interruptions diverged");
        assert!(!ckpt.exists(), "checkpoint must be removed after completion");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_on_empty_class() {
        // A dataset whose pipes are all RWM has no critical mains.
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut only_rwm_pipes = Vec::new();
        let mut segs = Vec::new();
        let mut remap = std::collections::HashMap::new();
        for p in ds.pipes_of_class(PipeClass::Reticulation).take(5) {
            let mut p2 = p.clone();
            p2.id = PipeId(only_rwm_pipes.len() as u32);
            let mut new_segs = Vec::new();
            for &sid in &p.segments {
                let mut s2 = ds.segment(sid).clone();
                let nid = pipefail_network::ids::SegmentId(segs.len() as u32);
                remap.insert(sid, nid);
                s2.id = nid;
                s2.pipe = p2.id;
                segs.push(s2);
                new_segs.push(nid);
            }
            p2.segments = new_segs;
            only_rwm_pipes.push(p2);
        }
        let ds2 = Dataset::new(
            "rwm-only",
            ds.region(),
            ds.observation(),
            only_rwm_pipes,
            segs,
            vec![],
        )
        .unwrap();
        let err = Hbp::new(HbpConfig::fast())
            .fit_rank(&ds2, &split, 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::EmptyEvaluationSet(_)));
    }
}
