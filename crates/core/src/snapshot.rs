//! Model snapshots: the frozen, servable output of a fit.
//!
//! A [`Snapshot`] decouples *fitting* from *scoring*: an experiment binary
//! (or `pipefail snapshot`) fits a model once, exports the ranking plus a
//! compact posterior summary, and a serving process (`pipefail serve`,
//! `pipefail-serve`) loads the file and answers top-K / per-pipe queries
//! without ever touching MCMC. The format is hand-rolled binary — the
//! dependency policy of this workspace rules out serde — and is specified
//! byte by byte in `docs/SNAPSHOT_FORMAT.md`; this module is the reference
//! implementation of that spec.
//!
//! Design points, shared with the sibling [`checkpoint`] codec:
//!
//! * **Lossless floats.** Scores and summary values round-trip through
//!   `f64::to_bits`, so a served ranking is *byte-identical* to the
//!   in-process ranking that produced it.
//! * **Integrity first.** A magic string, a format version, and an FNV-1a
//!   checksum over the payload (the same [`checkpoint::Fingerprint`]
//!   hasher) guard the header; loading is *strict* — unlike the forgiving
//!   checkpoint reader, any truncation, bit flip, unsorted ranking, or
//!   trailing garbage is a typed [`SnapshotError`], never a silent
//!   best-effort load, because a serving process must refuse to serve a
//!   corrupt model.
//! * **Atomic writes.** Files are written via
//!   [`checkpoint::atomic_write`], so a crash mid-export never leaves a
//!   half-written snapshot where a server might pick it up.
//!
//! # Examples
//!
//! ```
//! use pipefail_core::model::{RiskRanking, RiskScore};
//! use pipefail_core::snapshot::{Snapshot, SummarySection};
//! use pipefail_network::ids::PipeId;
//!
//! let ranking = RiskRanking::new(vec![
//!     RiskScore { pipe: PipeId(3), score: 0.9 },
//!     RiskScore { pipe: PipeId(1), score: 0.2 },
//! ]);
//! let mut snap = Snapshot::new("DPMHBP", "Region A", 7, &ranking);
//! snap.push_section(
//!     SummarySection::new("clusters").with_scalar("mean_count", 4.5),
//! );
//! let bytes = snap.to_bytes();
//! let back = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(back, snap);
//! assert_eq!(back.ranking().pipes_in_order().next(), Some(PipeId(3)));
//! ```

use crate::checkpoint::{self, Fingerprint};
use crate::model::{FailureModel, RiskRanking, RiskScore};
use crate::Result;
use pipefail_network::ids::PipeId;
use std::path::Path;

/// The six leading bytes of every snapshot file.
pub const MAGIC: [u8; 6] = *b"PFSNAP";

/// Name of the well-known summary section carrying per-pipe asset
/// attributes for aggregation queries (`POST /aggregate`). Its three
/// fields — [`ATTR_LENGTH_M`], [`ATTR_MATERIAL`], [`ATTR_LAID_YEAR`] —
/// are vectors **aligned with the snapshot's score order** (entry `i`
/// describes the pipe at rank `i`). The section is optional: snapshots
/// without it still serve top-K and point lookups, but aggregation
/// queries that need pipe length, material, or age cohorts are refused
/// with a typed error.
pub const ATTRIBUTES_SECTION: &str = "pipe_attributes";

/// Per-pipe length in metres (finite, non-negative).
pub const ATTR_LENGTH_M: &str = "length_m";

/// Per-pipe material, stored as the f64 of its index into the material
/// catalogue (`pipefail_network::attributes::Material::ALL`).
pub const ATTR_MATERIAL: &str = "material";

/// Per-pipe construction year, stored as the f64 of the year.
pub const ATTR_LAID_YEAR: &str = "laid_year";

/// Build the [`ATTRIBUTES_SECTION`] from three equally-long vectors
/// aligned with the snapshot's score order. The caller is responsible for
/// the alignment; serving-side validation rejects misaligned sections at
/// load instead of serving garbage aggregates.
pub fn attributes_section(
    length_m: Vec<f64>,
    material: Vec<f64>,
    laid_year: Vec<f64>,
) -> SummarySection {
    SummarySection::new(ATTRIBUTES_SECTION)
        .with_field(ATTR_LENGTH_M, length_m)
        .with_field(ATTR_MATERIAL, material)
        .with_field(ATTR_LAID_YEAR, laid_year)
}

/// The original (version-1) heap-parsed format (header bytes 6..8,
/// little-endian).
pub const SNAPSHOT_VERSION: u16 = 1;

/// The version-2 mmap-friendly columnar format: fixed-width, 8-byte-aligned
/// sections laid out for zero-copy serving. See the [`v2`] module and
/// `docs/SNAPSHOT_FORMAT.md`.
pub const SNAPSHOT_VERSION_V2: u16 = 2;

/// Fixed header size in bytes: magic (6) + version (2) + checksum (8) +
/// payload length (8). Shared by both format versions.
pub const HEADER_LEN: usize = 24;

/// Which on-disk encoding to write. Both decode through
/// [`Snapshot::from_bytes`], which negotiates on the header version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Version 1: variable-width, heap-parsed.
    V1,
    /// Version 2: aligned columnar, mmap-servable. The default for new
    /// snapshots.
    V2,
}

impl SnapshotFormat {
    /// Short human label (`"v1"` / `"v2"`), as printed by the CLI and the
    /// `/model` endpoint.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotFormat::V1 => "v1",
            SnapshotFormat::V2 => "v2",
        }
    }

    /// Parse a CLI-style label (`"v1"` / `"v2"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" | "1" => Some(SnapshotFormat::V1),
            "v2" | "2" => Some(SnapshotFormat::V2),
            _ => None,
        }
    }

    /// The header version this format writes.
    pub fn version(self) -> u16 {
        match self {
            SnapshotFormat::V1 => SNAPSHOT_VERSION,
            SnapshotFormat::V2 => SNAPSHOT_VERSION_V2,
        }
    }
}

impl std::fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A named vector of posterior-summary values (e.g. `"beta"` for Cox
/// coefficients, `"mean"` for per-pipe posterior means).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryField {
    /// Field name, unique within its section.
    pub name: String,
    /// The values; scalars are length-1 vectors.
    pub values: Vec<f64>,
}

/// A named group of [`SummaryField`]s describing one aspect of a fitted
/// model's posterior (cluster traces, group rates, coefficient vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySection {
    /// Section name (e.g. `"clusters"`, `"group_posterior[material]"`).
    pub name: String,
    /// The section's fields, in export order.
    pub fields: Vec<SummaryField>,
}

impl SummarySection {
    /// An empty section called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// This section with a vector field appended.
    pub fn with_field(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.fields.push(SummaryField {
            name: name.into(),
            values,
        });
        self
    }

    /// This section with a scalar field appended.
    pub fn with_scalar(self, name: impl Into<String>, value: f64) -> Self {
        self.with_field(name, vec![value])
    }

    /// The values of the field called `name`, if present.
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.values.as_slice())
    }
}

/// Why a snapshot failed to load. Every variant means "do not serve this
/// file" — there is deliberately no lenient fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Shorter than the fixed header.
    TooShort {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The first six bytes are not [`MAGIC`].
    BadMagic,
    /// Header version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u16),
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch {
        /// Checksum the header declares.
        declared: u64,
        /// Checksum of the bytes as read.
        actual: u64,
    },
    /// The payload ended mid-field.
    Truncated(&'static str),
    /// A string field is not valid UTF-8.
    BadUtf8(&'static str),
    /// A score is NaN or infinite — a snapshot never stores a poisoned fit.
    NonFiniteScore(u32),
    /// Scores are not in descending order — the ranking invariant is part
    /// of the format, not a load-time courtesy.
    UnsortedScores {
        /// Index of the first out-of-order entry.
        at: usize,
    },
    /// A v2 structure violates the format's 8-byte alignment rules (payload
    /// length or a section offset).
    Misaligned(&'static str),
    /// The v2 section table is malformed: unknown or duplicate kind,
    /// reserved bits set, out-of-bounds, overlapping or gapped sections,
    /// mismatched lengths, or a missing required section.
    BadSectionTable(&'static str),
    /// The v2 binary-search index is not sorted ascending by
    /// `(pipe id, rank)` — point lookups over mapped bytes would be wrong.
    UnsortedIndex {
        /// Index of the first out-of-order entry.
        at: usize,
    },
    /// A v2 attribute column holds a value the serving-side decoder would
    /// reject (negative length, out-of-catalogue material, fractional
    /// year). The writer never emits these, so they always mean corruption.
    BadAttributes(&'static str),
    /// Reading the file itself failed.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort { need, got } => {
                write!(f, "snapshot too short: need {need} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION}, {SNAPSHOT_VERSION_V2})"
                )
            }
            SnapshotError::LengthMismatch { declared, actual } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch { declared, actual } => write!(
                f,
                "checksum mismatch: header declares {declared:016x}, payload hashes to {actual:016x}"
            ),
            SnapshotError::Truncated(what) => write!(f, "payload truncated reading {what}"),
            SnapshotError::BadUtf8(what) => write!(f, "invalid UTF-8 in {what}"),
            SnapshotError::NonFiniteScore(pipe) => {
                write!(f, "non-finite score for pipe {pipe}")
            }
            SnapshotError::UnsortedScores { at } => {
                write!(f, "scores not in descending order at index {at}")
            }
            SnapshotError::Misaligned(what) => write!(f, "misaligned {what}"),
            SnapshotError::BadSectionTable(what) => {
                write!(f, "bad section table: {what}")
            }
            SnapshotError::UnsortedIndex { at } => {
                write!(f, "index not sorted by (pipe id, rank) at entry {at}")
            }
            SnapshotError::BadAttributes(what) => {
                write!(f, "invalid attribute column {what}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A fitted model frozen for serving: identity, the full descending risk
/// ranking, and the posterior summary sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Model display name ("DPMHBP", "Cox", …).
    pub model: String,
    /// Dataset/region the model was fitted on.
    pub region: String,
    /// Master seed of the fit (provenance; replaying the fit with this seed
    /// reproduces the ranking bit for bit).
    pub seed: u64,
    /// `(pipe, score)` pairs in descending score order.
    pub scores: Vec<(PipeId, f64)>,
    /// Posterior summary sections, in export order.
    pub sections: Vec<SummarySection>,
}

impl Snapshot {
    /// Freeze `ranking` under the given identity; summary sections start
    /// empty (see [`Snapshot::push_section`] / [`Snapshot::from_fit`]).
    pub fn new(
        model: impl Into<String>,
        region: impl Into<String>,
        seed: u64,
        ranking: &RiskRanking,
    ) -> Self {
        Self {
            model: model.into(),
            region: region.into(),
            seed,
            scores: ranking.scores().iter().map(|s| (s.pipe, s.score)).collect(),
            sections: Vec::new(),
        }
    }

    /// Freeze a fitted model: takes the display name and posterior summary
    /// from the model itself ([`FailureModel::posterior_summary`]).
    pub fn from_fit(
        model: &dyn FailureModel,
        region: impl Into<String>,
        seed: u64,
        ranking: &RiskRanking,
    ) -> Self {
        let mut snap = Self::new(model.name(), region, seed, ranking);
        snap.sections = model.posterior_summary();
        snap
    }

    /// Append a posterior summary section.
    pub fn push_section(&mut self, section: SummarySection) {
        self.sections.push(section);
    }

    /// The section called `name`, if present.
    pub fn section(&self, name: &str) -> Option<&SummarySection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no pipes are ranked.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Reconstruct the [`RiskRanking`]. Scores are stored sorted, so this
    /// is exactly the ranking that was frozen (stable re-sort of an
    /// already-sorted vector).
    pub fn ranking(&self) -> RiskRanking {
        RiskRanking::new(
            self.scores
                .iter()
                .map(|&(pipe, score)| RiskScore { pipe, score })
                .collect(),
        )
    }

    /// Serialize to the on-disk byte format (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, &self.model);
        put_str(&mut payload, &self.region);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        put_u32(&mut payload, self.scores.len() as u32);
        for &(pipe, score) in &self.scores {
            put_u32(&mut payload, pipe.0);
            payload.extend_from_slice(&score.to_bits().to_le_bytes());
        }
        put_sections(&mut payload, &self.sections);

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Serialize to the version-2 aligned columnar format (see [`v2`]).
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        v2::encode(self)
    }

    /// Serialize in the requested format.
    pub fn to_bytes_as(&self, format: SnapshotFormat) -> Vec<u8> {
        match format {
            SnapshotFormat::V1 => self.to_bytes(),
            SnapshotFormat::V2 => self.to_bytes_v2(),
        }
    }

    /// Parse and fully validate the byte format. Strict: any malformation
    /// is an error, and the scores' descending-order invariant is checked
    /// so a loaded snapshot can be served without re-sorting.
    pub fn from_bytes(bytes: &[u8]) -> std::result::Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::TooShort {
                need: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[..6] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        match version {
            SNAPSHOT_VERSION => {}
            SNAPSHOT_VERSION_V2 => return v2::decode(bytes),
            v => return Err(SnapshotError::UnsupportedVersion(v)),
        }
        let declared_sum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let declared_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if declared_len != payload.len() as u64 {
            return Err(SnapshotError::LengthMismatch {
                declared: declared_len,
                actual: payload.len() as u64,
            });
        }
        let actual_sum = fnv_bytes(payload);
        if actual_sum != declared_sum {
            return Err(SnapshotError::ChecksumMismatch {
                declared: declared_sum,
                actual: actual_sum,
            });
        }

        let mut cur = Cursor { buf: payload, pos: 0 };
        let model = cur.str("model name")?;
        let region = cur.str("region name")?;
        let seed = cur.u64("seed")?;
        let n_scores = cur.count("score count", 12)?;
        let mut scores = Vec::with_capacity(n_scores);
        for i in 0..n_scores {
            let pipe = cur.u32("score pipe id")?;
            let score = f64::from_bits(cur.u64("score value")?);
            if !score.is_finite() {
                return Err(SnapshotError::NonFiniteScore(pipe));
            }
            if let Some(&(_, prev)) = scores.last() {
                if score > prev {
                    return Err(SnapshotError::UnsortedScores { at: i });
                }
            }
            scores.push((PipeId(pipe), score));
        }
        let sections = read_sections(&mut cur)?;
        if cur.pos != payload.len() {
            return Err(SnapshotError::Truncated("trailing bytes after payload"));
        }
        Ok(Self {
            model,
            region,
            seed,
            scores,
            sections,
        })
    }

    /// Write atomically to `path` (via [`checkpoint::atomic_write`]).
    pub fn save(&self, path: &Path) -> Result<()> {
        checkpoint::atomic_write(path, &self.to_bytes())
    }

    /// Write atomically in the requested format.
    pub fn save_as(&self, path: &Path, format: SnapshotFormat) -> Result<()> {
        checkpoint::atomic_write(path, &self.to_bytes_as(format))
    }

    /// Load and validate a snapshot file.
    pub fn load(path: &Path) -> std::result::Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

/// FNV-1a over raw bytes, via the checkpoint fingerprint hasher.
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_bytes(bytes);
    fp.finish()
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Encode a section list (count + sections) in the v1 wire shape. Used for
/// the v1 payload tail and for the v2 `SUMMARY` blob.
fn put_sections(buf: &mut Vec<u8>, sections: &[SummarySection]) {
    put_u32(buf, sections.len() as u32);
    for section in sections {
        put_str(buf, &section.name);
        put_u32(buf, section.fields.len() as u32);
        for field in &section.fields {
            put_str(buf, &field.name);
            put_u32(buf, field.values.len() as u32);
            for v in &field.values {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
}

/// Decode a section list written by [`put_sections`].
fn read_sections(cur: &mut Cursor<'_>) -> std::result::Result<Vec<SummarySection>, SnapshotError> {
    let n_sections = cur.count("section count", 8)?;
    let mut sections = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let name = cur.str("section name")?;
        let n_fields = cur.count("field count", 8)?;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let fname = cur.str("field name")?;
            let n_values = cur.count("value count", 8)?;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                values.push(f64::from_bits(cur.u64("field value")?));
            }
            fields.push(SummaryField { name: fname, values });
        }
        sections.push(SummarySection { name, fields });
    }
    Ok(sections)
}

/// Bounds-checked little-endian reader over the payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &'static str) -> std::result::Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated(what))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &'static str) -> std::result::Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> std::result::Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an element count and pre-validate that `count * min_elem_bytes`
    /// still fits in the remaining payload, so a corrupted count can never
    /// drive a huge allocation.
    fn count(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> std::result::Result<usize, SnapshotError> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(SnapshotError::Truncated(what));
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> std::result::Result<String, SnapshotError> {
        let len = self.count(what, 1)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8(what))
    }
}

pub mod v2 {
    //! The version-2 mmap-friendly snapshot layout.
    //!
    //! The payload (everything after the shared 24-byte header) is built
    //! from fixed-width, 8-byte-aligned pieces so a serving process can map
    //! the file and binary-search / scan it in place:
    //!
    //! * a 32-byte **preamble**: `seed u64`, `n_pipes u64`, `n_sections
    //!   u64`, `attr_pos u64` (original index of the extracted attribute
    //!   section among the snapshot's summary sections, or
    //!   [`NO_ATTRIBUTES`]);
    //! * a **section table** of `n_sections` 32-byte entries: `kind u32`,
    //!   `reserved u32` (zero), `offset u64` (payload-relative, 8-aligned),
    //!   `count u64` (elements), `byte_len u64`;
    //! * the section **data blobs**, contiguous in table order, each padded
    //!   with zero bytes to the next 8-byte boundary.
    //!
    //! Sections `MODEL..=INDEX_RANKS` are mandatory; the three attribute
    //! columns are all-or-none; `SUMMARY` (the remaining posterior sections
    //! in the v1 wire shape) is optional. The checksum is FNV-1a folded
    //! over little-endian 8-byte words ([`fnv1a_words`]) — the payload
    //! length is a multiple of 8 by construction — so the one-pass
    //! integrity check stays cheap enough to run on every map.
    //!
    //! [`validate`] is the single strict validator: both the heap decoder
    //! ([`decode`], reached through [`Snapshot::from_bytes`]) and the
    //! serving-side mmap loader run it over the raw bytes, so the two
    //! loaders accept exactly the same set of files.

    use super::*;
    use pipefail_network::attributes::Material;
    use std::ops::Range;

    /// Preamble length in bytes (seed, n_pipes, n_sections, attr_pos).
    pub const PREAMBLE_LEN: usize = 32;

    /// Section-table entry length in bytes (kind, reserved, offset, count,
    /// byte_len).
    pub const SECTION_ENTRY_LEN: usize = 32;

    /// `attr_pos` sentinel: the snapshot has no extracted attribute columns.
    pub const NO_ATTRIBUTES: u64 = u64::MAX;

    /// Model name, UTF-8 bytes.
    pub const KIND_MODEL: u32 = 1;
    /// Region name, UTF-8 bytes.
    pub const KIND_REGION: u32 = 2;
    /// Pipe ids in rank order, `u32` little-endian.
    pub const KIND_PIPE_IDS: u32 = 3;
    /// Risk scores in descending order, `f64` bits little-endian.
    pub const KIND_SCORES: u32 = 4;
    /// Binary-search index: pipe ids sorted ascending by `(id, rank)`.
    pub const KIND_INDEX_IDS: u32 = 5;
    /// Binary-search index: rank of the pipe at the same position of
    /// [`KIND_INDEX_IDS`].
    pub const KIND_INDEX_RANKS: u32 = 6;
    /// Per-pipe length in metres, rank order, `f64`.
    pub const KIND_ATTR_LENGTH_M: u32 = 7;
    /// Per-pipe material catalogue index, rank order, `f64`.
    pub const KIND_ATTR_MATERIAL: u32 = 8;
    /// Per-pipe construction year, rank order, `f64`.
    pub const KIND_ATTR_LAID_YEAR: u32 = 9;
    /// Remaining posterior summary sections, v1 wire shape.
    pub const KIND_SUMMARY: u32 = 10;

    const KIND_MAX: u32 = KIND_SUMMARY;

    /// Element width in bytes for a section kind.
    fn elem_len(kind: u32) -> usize {
        match kind {
            KIND_MODEL | KIND_REGION | KIND_SUMMARY => 1,
            KIND_PIPE_IDS | KIND_INDEX_IDS | KIND_INDEX_RANKS => 4,
            _ => 8,
        }
    }

    /// FNV-1a folded over little-endian 8-byte words, four interleaved
    /// lanes. `bytes.len()` must be a multiple of 8 (the v2 payload always
    /// is). Lane `i` folds words `i, i+4, i+8, …`; trailing words (when
    /// the word count is not a multiple of 4) feed the lanes in order.
    ///
    /// Why lanes: the plain FNV chain is one serial xor→multiply
    /// dependency per word, which caps the scan far below memory
    /// bandwidth; four independent chains let the multiplies overlap, and
    /// cold-start validation of a large mapped snapshot is dominated by
    /// exactly this scan. Integrity is unchanged: each lane's step is
    /// bijective on `u64` (xor, then multiply by the odd FNV prime), and
    /// the final combine — xor of lane digests, each first multiplied
    /// once more — is a bijection of each lane holding the others fixed.
    /// So any single-bit flip changes exactly one lane's digest and
    /// therefore the result (exhaustively asserted in the bit-flip tests).
    pub fn fnv1a_words(bytes: &[u8]) -> u64 {
        debug_assert_eq!(bytes.len() % 8, 0);
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        const LANES: usize = 4;
        // Distinct per-lane bases (BASIS·PRIMEⁱ) so a word contributes
        // differently by position even across lane-sized swaps.
        let mut lanes = [0u64; LANES];
        let mut basis = BASIS;
        for lane in &mut lanes {
            *lane = basis;
            basis = basis.wrapping_mul(PRIME);
        }
        let mut chunks = bytes.chunks_exact(8 * LANES);
        for block in &mut chunks {
            for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
                *lane ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
                *lane = lane.wrapping_mul(PRIME);
            }
        }
        for (lane, word) in lanes.iter_mut().zip(chunks.remainder().chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
            *lane = lane.wrapping_mul(PRIME);
        }
        lanes
            .into_iter()
            .fold(0u64, |acc, lane| acc ^ lane.wrapping_mul(PRIME))
    }

    /// Round `n` up to the next multiple of 8.
    pub fn align8(n: usize) -> usize {
        n.div_ceil(8) * 8
    }

    /// Byte ranges (into the full file buffer) of the three attribute
    /// columns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct AttrColumns {
        /// [`KIND_ATTR_LENGTH_M`] data.
        pub length_m: Range<usize>,
        /// [`KIND_ATTR_MATERIAL`] data.
        pub material: Range<usize>,
        /// [`KIND_ATTR_LAID_YEAR`] data.
        pub laid_year: Range<usize>,
    }

    /// The validated shape of a v2 snapshot: byte ranges into the full file
    /// buffer for every zero-copy column, plus the (small) decoded summary
    /// sections. Produced by [`validate`]; consumed by the heap decoder and
    /// the serving-side mmap scorer.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Layout {
        /// Master seed of the fit.
        pub seed: u64,
        /// Number of ranked pipes.
        pub n_pipes: usize,
        /// Model name bytes (validated UTF-8).
        pub model: Range<usize>,
        /// Region name bytes (validated UTF-8).
        pub region: Range<usize>,
        /// Pipe-id column, rank order.
        pub pipe_ids: Range<usize>,
        /// Score column, descending.
        pub scores: Range<usize>,
        /// Index id column, ascending by `(id, rank)`.
        pub index_ids: Range<usize>,
        /// Index rank column, parallel to `index_ids`.
        pub index_ranks: Range<usize>,
        /// Attribute columns, when the writer extracted them.
        pub attrs: Option<AttrColumns>,
        /// Where the attribute section sat among the original summary
        /// sections (an insertion position into `summary`).
        pub attr_pos: Option<usize>,
        /// The non-extracted posterior summary sections, decoded.
        pub summary: Vec<SummarySection>,
    }

    /// Read the little-endian `u32` at element position `i` of a column.
    pub fn u32_at(col: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(col[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
    }

    /// Read the little-endian `f64` at element position `i` of a column.
    pub fn f64_at(col: &[u8], i: usize) -> f64 {
        f64::from_bits(u64::from_le_bytes(
            col[i * 8..i * 8 + 8].try_into().expect("8 bytes"),
        ))
    }

    /// True when the three attribute vectors satisfy every rule the
    /// serving-side decoder enforces: finite non-negative lengths, integral
    /// in-catalogue material indices, integral years in `i32` range. The
    /// writer only extracts columns that pass; the validator rejects
    /// columns that don't.
    pub fn attr_values_valid(length_m: &[f64], material: &[f64], laid_year: &[f64]) -> bool {
        length_m.iter().all(|&v| valid_length_m(v))
            && material.iter().all(|&v| valid_material(v))
            && laid_year.iter().all(|&v| valid_laid_year(v))
    }

    // The three attribute predicates below are shared by the writer-side
    // column extraction and the validator's full-column scans, so both
    // accept exactly the same set of values. They are phrased for the
    // scan's inner loop: `v <= f64::MAX` stands in for `is_finite` once
    // negatives are excluded, and a cast round-trip (`v as i32 as f64 ==
    // v`) stands in for `is_finite && fract() == 0 && in i32 range` —
    // the saturating cast collapses NaN, infinities, non-integral, and
    // out-of-range values to something that fails the round-trip. The
    // equivalences are asserted exhaustively over the edge cases in the
    // tests below; `fract()` itself was measurably the single hottest
    // call in cold-start validation of a million-pipe snapshot.

    /// Finite and non-negative.
    pub(crate) fn valid_length_m(v: f64) -> bool {
        (0.0..=f64::MAX).contains(&v)
    }

    /// Integral index into the material catalogue.
    pub(crate) fn valid_material(v: f64) -> bool {
        let i = v as i32;
        i as f64 == v && i >= 0 && (i as usize) < Material::ALL.len()
    }

    /// Integral year representable as `i32`.
    pub(crate) fn valid_laid_year(v: f64) -> bool {
        v as i32 as f64 == v
    }

    /// Payload size at or above which [`validate`] fans its checksum and
    /// column scans out over scoped threads. Below it the spawns cost more
    /// than they save and everything runs serially.
    const PARALLEL_VALIDATE_MIN_BYTES: usize = 4 << 20;

    /// One strict pass over a full v2 file: header, checksum, preamble,
    /// section table (alignment, bounds, contiguity, uniqueness), column
    /// invariants (UTF-8, finiteness, descending scores, sorted consistent
    /// index, attribute value rules), and the summary blob. Any
    /// malformation is a typed [`SnapshotError`]; nothing proportional to
    /// the pipe count is allocated.
    ///
    /// On payloads of `PARALLEL_VALIDATE_MIN_BYTES` (4 MiB) or more, the
    /// full-payload checksum and the independent column scans run on
    /// scoped threads so a large mapped snapshot validates in roughly the
    /// wall time of its slowest single scan. The reported error is
    /// identical either way: a checksum mismatch always wins, and scan
    /// errors surface in the serial order (scores, index, attributes).
    pub fn validate(bytes: &[u8]) -> std::result::Result<Layout, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::TooShort {
                need: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[..6] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION_V2 {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let declared_sum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let declared_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if declared_len != payload.len() as u64 {
            return Err(SnapshotError::LengthMismatch {
                declared: declared_len,
                actual: payload.len() as u64,
            });
        }
        if !payload.len().is_multiple_of(8) {
            return Err(SnapshotError::Misaligned("payload length"));
        }
        if payload.len() < PARALLEL_VALIDATE_MIN_BYTES {
            let actual_sum = fnv1a_words(payload);
            if actual_sum != declared_sum {
                return Err(SnapshotError::ChecksumMismatch {
                    declared: declared_sum,
                    actual: actual_sum,
                });
            }
            validate_structure(bytes, false)
        } else {
            std::thread::scope(|s| {
                let sum = s.spawn(|| fnv1a_words(payload));
                let structure = validate_structure(bytes, true);
                let actual_sum = sum.join().expect("checksum thread");
                if actual_sum != declared_sum {
                    return Err(SnapshotError::ChecksumMismatch {
                        declared: declared_sum,
                        actual: actual_sum,
                    });
                }
                structure
            })
        }
    }

    /// Everything [`validate`] checks after the header and checksum:
    /// preamble, section table, column invariants, summary blob. With
    /// `parallel` the three independent column scans run on scoped
    /// threads; results are collected in the serial scan order so the
    /// reported error is the same either way.
    fn validate_structure(
        bytes: &[u8],
        parallel: bool,
    ) -> std::result::Result<Layout, SnapshotError> {
        let payload = &bytes[HEADER_LEN..];
        if payload.len() < PREAMBLE_LEN {
            return Err(SnapshotError::Truncated("v2 preamble"));
        }
        let word = |i: usize| u64::from_le_bytes(payload[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let seed = word(0);
        let n_pipes_raw = word(1);
        let n_sections = word(2);
        let attr_pos_raw = word(3);
        if n_pipes_raw > u32::MAX as u64 {
            return Err(SnapshotError::BadSectionTable("pipe count exceeds u32"));
        }
        let n_pipes = n_pipes_raw as usize;
        let table_end = (n_sections as usize)
            .checked_mul(SECTION_ENTRY_LEN)
            .and_then(|t| t.checked_add(PREAMBLE_LEN))
            .filter(|&e| e <= payload.len())
            .ok_or(SnapshotError::Truncated("section table"))?;

        // Walk the table: every section strictly contiguous (offset equals
        // the aligned end of its predecessor), aligned, in bounds, unique.
        let mut ranges: [Option<(Range<usize>, usize)>; KIND_MAX as usize + 1] =
            Default::default();
        let mut cursor = table_end;
        for s in 0..n_sections as usize {
            let base = PREAMBLE_LEN + s * SECTION_ENTRY_LEN;
            let entry = &payload[base..base + SECTION_ENTRY_LEN];
            let kind = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let reserved = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let count = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
            let byte_len = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
            if reserved != 0 {
                return Err(SnapshotError::BadSectionTable("reserved bits set"));
            }
            if kind == 0 || kind > KIND_MAX {
                return Err(SnapshotError::BadSectionTable("unknown section kind"));
            }
            if ranges[kind as usize].is_some() {
                return Err(SnapshotError::BadSectionTable("duplicate section kind"));
            }
            if offset % 8 != 0 {
                return Err(SnapshotError::Misaligned("section offset"));
            }
            let offset = usize::try_from(offset)
                .map_err(|_| SnapshotError::Truncated("section data"))?;
            if offset != cursor {
                return Err(SnapshotError::BadSectionTable(
                    "sections overlap or leave a gap",
                ));
            }
            let byte_len = usize::try_from(byte_len)
                .map_err(|_| SnapshotError::Truncated("section data"))?;
            let end = offset
                .checked_add(byte_len)
                .filter(|&e| e <= payload.len())
                .ok_or(SnapshotError::Truncated("section data"))?;
            if count
                .checked_mul(elem_len(kind) as u64)
                .is_none_or(|b| b != byte_len as u64)
            {
                return Err(SnapshotError::BadSectionTable("section byte length mismatch"));
            }
            ranges[kind as usize] =
                Some((HEADER_LEN + offset..HEADER_LEN + end, count as usize));
            cursor = align8(end);
        }
        if cursor != payload.len() {
            return Err(SnapshotError::BadSectionTable("trailing bytes after sections"));
        }

        let required = |kind: u32| {
            ranges[kind as usize]
                .clone()
                .ok_or(SnapshotError::BadSectionTable("missing required section"))
        };
        let (model, _) = required(KIND_MODEL)?;
        let (region, _) = required(KIND_REGION)?;
        let column = |kind: u32| -> std::result::Result<Range<usize>, SnapshotError> {
            let (range, count) = required(kind)?;
            if count != n_pipes {
                return Err(SnapshotError::BadSectionTable("column length mismatch"));
            }
            Ok(range)
        };
        let pipe_ids = column(KIND_PIPE_IDS)?;
        let scores = column(KIND_SCORES)?;
        let index_ids = column(KIND_INDEX_IDS)?;
        let index_ranks = column(KIND_INDEX_RANKS)?;

        let attr_kinds = [KIND_ATTR_LENGTH_M, KIND_ATTR_MATERIAL, KIND_ATTR_LAID_YEAR];
        let present = attr_kinds
            .iter()
            .filter(|&&k| ranges[k as usize].is_some())
            .count();
        let attrs = match present {
            0 => None,
            3 => Some(AttrColumns {
                length_m: column(KIND_ATTR_LENGTH_M)?,
                material: column(KIND_ATTR_MATERIAL)?,
                laid_year: column(KIND_ATTR_LAID_YEAR)?,
            }),
            _ => return Err(SnapshotError::BadSectionTable("partial attribute columns")),
        };

        std::str::from_utf8(&bytes[model.clone()])
            .map_err(|_| SnapshotError::BadUtf8("model name"))?;
        std::str::from_utf8(&bytes[region.clone()])
            .map_err(|_| SnapshotError::BadUtf8("region name"))?;

        // Column scans: each is independent of the others, so on large
        // snapshots they can run concurrently. Results are collected in
        // the serial order (scores, index, attributes) so which error is
        // reported does not depend on thread timing.
        let score_col = &bytes[scores.clone()];
        let id_col = &bytes[pipe_ids.clone()];
        let ix_id_col = &bytes[index_ids.clone()];
        let ix_rank_col = &bytes[index_ranks.clone()];
        let attr_cols = attrs.as_ref().map(|c| {
            (
                &bytes[c.length_m.clone()],
                &bytes[c.material.clone()],
                &bytes[c.laid_year.clone()],
            )
        });
        if parallel {
            std::thread::scope(|s| {
                let sc = s.spawn(|| scan_scores(score_col, id_col, n_pipes));
                let ix = s.spawn(|| scan_index(ix_id_col, ix_rank_col, id_col, n_pipes));
                let at = scan_attrs(attr_cols, n_pipes);
                sc.join().expect("score scan thread")?;
                ix.join().expect("index scan thread")?;
                at
            })?;
        } else {
            scan_scores(score_col, id_col, n_pipes)?;
            scan_index(ix_id_col, ix_rank_col, id_col, n_pipes)?;
            scan_attrs(attr_cols, n_pipes)?;
        }

        // Summary blob: decode eagerly (posterior summaries are small) and
        // insist it is self-delimiting.
        let summary = match &ranges[KIND_SUMMARY as usize] {
            Some((range, _)) => {
                let mut cur = Cursor { buf: &bytes[range.clone()], pos: 0 };
                let sections = read_sections(&mut cur)?;
                if cur.pos != range.len() {
                    return Err(SnapshotError::Truncated("trailing bytes after summary"));
                }
                sections
            }
            None => Vec::new(),
        };

        let attr_pos = if attrs.is_some() {
            let pos = usize::try_from(attr_pos_raw)
                .ok()
                .filter(|&p| p <= summary.len())
                .ok_or(SnapshotError::BadSectionTable("attribute position out of range"))?;
            Some(pos)
        } else {
            if attr_pos_raw != NO_ATTRIBUTES {
                return Err(SnapshotError::BadSectionTable("stray attribute position"));
            }
            None
        };

        Ok(Layout {
            seed,
            n_pipes,
            model,
            region,
            pipe_ids,
            scores,
            index_ids,
            index_ranks,
            attrs,
            attr_pos,
            summary,
        })
    }

    // The column scans iterate `chunks_exact` rather than indexing
    // element-at-a-time: on a million-pipe mapped snapshot these scans
    // (not the table walk) are the cold-start cost, and per-element
    // bounds checks measurably slow them down.

    /// Score column: finite, descending (ties allowed).
    fn scan_scores(
        score_col: &[u8],
        id_col: &[u8],
        n_pipes: usize,
    ) -> std::result::Result<(), SnapshotError> {
        let mut prev = f64::INFINITY;
        for (i, word) in score_col.chunks_exact(8).take(n_pipes).enumerate() {
            let score = f64::from_le_bytes(word.try_into().expect("8 bytes"));
            if !score.is_finite() {
                return Err(SnapshotError::NonFiniteScore(u32_at(id_col, i)));
            }
            if score > prev {
                return Err(SnapshotError::UnsortedScores { at: i });
            }
            prev = score;
        }
        Ok(())
    }

    /// Index columns: strictly ascending by (id, rank), every rank in
    /// range, and consistent with the id column — together with the
    /// matched lengths this makes the index a permutation of the ranks.
    fn scan_index(
        ix_id_col: &[u8],
        ix_rank_col: &[u8],
        id_col: &[u8],
        n_pipes: usize,
    ) -> std::result::Result<(), SnapshotError> {
        let mut prev_pair = None;
        for (i, (id_word, rank_word)) in ix_id_col
            .chunks_exact(4)
            .zip(ix_rank_col.chunks_exact(4))
            .take(n_pipes)
            .enumerate()
        {
            let id = u32::from_le_bytes(id_word.try_into().expect("4 bytes"));
            let rank = u32::from_le_bytes(rank_word.try_into().expect("4 bytes"));
            if (rank as usize) >= n_pipes {
                return Err(SnapshotError::BadSectionTable("index rank out of range"));
            }
            if prev_pair.is_some_and(|p| (id, rank) <= p) {
                return Err(SnapshotError::UnsortedIndex { at: i });
            }
            prev_pair = Some((id, rank));
            if u32_at(id_col, rank as usize) != id {
                return Err(SnapshotError::BadSectionTable("index does not match pipe ids"));
            }
        }
        Ok(())
    }

    /// Attribute columns: enforce the serving-side decoder's value rules
    /// (the same predicates the writer's column extraction uses). Generic
    /// over the predicate so each column's check inlines into its own
    /// tight loop (a shared `fn(f64) -> bool` pointer costs an indirect
    /// call per element — millions on a large snapshot).
    fn scan_attrs(
        cols: Option<(&[u8], &[u8], &[u8])>,
        n_pipes: usize,
    ) -> std::result::Result<(), SnapshotError> {
        fn check_col<F: Fn(f64) -> bool>(
            col: &[u8],
            n: usize,
            what: &'static str,
            ok: F,
        ) -> std::result::Result<(), SnapshotError> {
            for word in col.chunks_exact(8).take(n) {
                if !ok(f64::from_le_bytes(word.try_into().expect("8 bytes"))) {
                    return Err(SnapshotError::BadAttributes(what));
                }
            }
            Ok(())
        }
        let Some((length_m, material, laid_year)) = cols else {
            return Ok(());
        };
        check_col(length_m, n_pipes, ATTR_LENGTH_M, valid_length_m)?;
        check_col(material, n_pipes, ATTR_MATERIAL, valid_material)?;
        check_col(laid_year, n_pipes, ATTR_LAID_YEAR, valid_laid_year)?;
        Ok(())
    }

    /// The attribute section's canonical shape: exactly the three
    /// well-known fields in [`attributes_section`] order, each aligned with
    /// the ranking, with values the decoder accepts. Only such sections are
    /// extracted into columns; anything else rides along verbatim in the
    /// summary blob so both loaders agree on what the snapshot contains.
    fn extractable_attrs(snap: &Snapshot) -> Option<usize> {
        let n = snap.scores.len();
        let (pos, section) = snap
            .sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == ATTRIBUTES_SECTION)?;
        let names: Vec<&str> = section.fields.iter().map(|f| f.name.as_str()).collect();
        if names != [ATTR_LENGTH_M, ATTR_MATERIAL, ATTR_LAID_YEAR] {
            return None;
        }
        if section.fields.iter().any(|f| f.values.len() != n) {
            return None;
        }
        if !attr_values_valid(
            &section.fields[0].values,
            &section.fields[1].values,
            &section.fields[2].values,
        ) {
            return None;
        }
        Some(pos)
    }

    /// Serialize a snapshot into the v2 byte format.
    pub fn encode(snap: &Snapshot) -> Vec<u8> {
        let n = snap.scores.len();
        assert!(n <= u32::MAX as usize, "snapshot exceeds u32 pipe count");
        let attr_pos = extractable_attrs(snap);

        let mut index: Vec<(u32, u32)> = snap
            .scores
            .iter()
            .enumerate()
            .map(|(rank, &(pipe, _))| (pipe.0, rank as u32))
            .collect();
        index.sort_unstable();

        let mut blobs: Vec<(u32, u64, Vec<u8>)> = Vec::new();
        let mut push = |kind: u32, count: usize, data: Vec<u8>| {
            blobs.push((kind, count as u64, data));
        };
        push(KIND_MODEL, snap.model.len(), snap.model.as_bytes().to_vec());
        push(KIND_REGION, snap.region.len(), snap.region.as_bytes().to_vec());
        let mut ids = Vec::with_capacity(n * 4);
        let mut scores = Vec::with_capacity(n * 8);
        for &(pipe, score) in &snap.scores {
            ids.extend_from_slice(&pipe.0.to_le_bytes());
            scores.extend_from_slice(&score.to_bits().to_le_bytes());
        }
        push(KIND_PIPE_IDS, n, ids);
        push(KIND_SCORES, n, scores);
        let mut ix_ids = Vec::with_capacity(n * 4);
        let mut ix_ranks = Vec::with_capacity(n * 4);
        for &(id, rank) in &index {
            ix_ids.extend_from_slice(&id.to_le_bytes());
            ix_ranks.extend_from_slice(&rank.to_le_bytes());
        }
        push(KIND_INDEX_IDS, n, ix_ids);
        push(KIND_INDEX_RANKS, n, ix_ranks);
        if let Some(pos) = attr_pos {
            let section = &snap.sections[pos];
            for (kind, field) in [
                (KIND_ATTR_LENGTH_M, &section.fields[0]),
                (KIND_ATTR_MATERIAL, &section.fields[1]),
                (KIND_ATTR_LAID_YEAR, &section.fields[2]),
            ] {
                let mut col = Vec::with_capacity(n * 8);
                for v in &field.values {
                    col.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                push(kind, n, col);
            }
        }
        let summary: Vec<&SummarySection> = snap
            .sections
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != attr_pos)
            .map(|(_, s)| s)
            .collect();
        if !summary.is_empty() {
            let owned: Vec<SummarySection> = summary.iter().map(|s| (*s).clone()).collect();
            let mut blob = Vec::new();
            put_sections(&mut blob, &owned);
            let len = blob.len();
            push(KIND_SUMMARY, len, blob);
        }

        let table_end = PREAMBLE_LEN + blobs.len() * SECTION_ENTRY_LEN;
        let mut payload = Vec::new();
        payload.extend_from_slice(&snap.seed.to_le_bytes());
        payload.extend_from_slice(&(n as u64).to_le_bytes());
        payload.extend_from_slice(&(blobs.len() as u64).to_le_bytes());
        // attr_pos is the section's index among the *summary* sections it
        // would be re-inserted into (its original index, since everything
        // before it stays in the summary blob).
        payload.extend_from_slice(
            &attr_pos.map_or(NO_ATTRIBUTES, |p| p as u64).to_le_bytes(),
        );
        let mut offset = table_end;
        for (kind, count, data) in &blobs {
            payload.extend_from_slice(&kind.to_le_bytes());
            payload.extend_from_slice(&0u32.to_le_bytes());
            payload.extend_from_slice(&(offset as u64).to_le_bytes());
            payload.extend_from_slice(&count.to_le_bytes());
            payload.extend_from_slice(&(data.len() as u64).to_le_bytes());
            offset = align8(offset + data.len());
        }
        for (_, _, data) in &blobs {
            payload.extend_from_slice(data);
            payload.resize(align8(payload.len()), 0);
        }
        debug_assert_eq!(payload.len(), offset);

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION_V2.to_le_bytes());
        bytes.extend_from_slice(&fnv1a_words(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Validate and heap-decode a v2 file into a [`Snapshot`], the exact
    /// inverse of [`encode`].
    pub fn decode(bytes: &[u8]) -> std::result::Result<Snapshot, SnapshotError> {
        let layout = validate(bytes)?;
        let n = layout.n_pipes;
        let model = std::str::from_utf8(&bytes[layout.model.clone()])
            .expect("validated utf8")
            .to_string();
        let region = std::str::from_utf8(&bytes[layout.region.clone()])
            .expect("validated utf8")
            .to_string();
        let id_col = &bytes[layout.pipe_ids.clone()];
        let score_col = &bytes[layout.scores.clone()];
        let scores: Vec<(PipeId, f64)> = (0..n)
            .map(|i| (PipeId(u32_at(id_col, i)), f64_at(score_col, i)))
            .collect();
        let mut sections = layout.summary;
        if let (Some(cols), Some(pos)) = (&layout.attrs, layout.attr_pos) {
            let col_vec = |range: &Range<usize>| -> Vec<f64> {
                let col = &bytes[range.clone()];
                (0..n).map(|i| f64_at(col, i)).collect()
            };
            sections.insert(
                pos,
                attributes_section(
                    col_vec(&cols.length_m),
                    col_vec(&cols.material),
                    col_vec(&cols.laid_year),
                ),
            );
        }
        Ok(Snapshot {
            model,
            region,
            seed: layout.seed,
            scores,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let ranking = RiskRanking::new(vec![
            RiskScore { pipe: PipeId(5), score: 0.75 },
            RiskScore { pipe: PipeId(0), score: 0.5 },
            RiskScore { pipe: PipeId(9), score: 0.5 },
            RiskScore { pipe: PipeId(2), score: -1.25 },
        ]);
        let mut snap = Snapshot::new("DPMHBP", "Region A", 42, &ranking);
        snap.push_section(
            SummarySection::new("clusters")
                .with_scalar("mean_count", 3.5)
                .with_field("alpha_trace", vec![0.9, 1.1, 1.0]),
        );
        snap.push_section(SummarySection::new("empty"));
        snap
    }

    #[test]
    fn fast_attribute_predicates_match_the_definitional_forms() {
        // The scan predicates are phrased for speed (compare-only
        // finiteness, cast round-trips); this pins them to the slow,
        // definitional forms across every edge-case family: NaN,
        // infinities, signed zero, subnormals, non-integral values,
        // integral values inside and outside the accepted ranges, and the
        // exact range boundaries with their f64 neighbours.
        let edges = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            -f64::MIN_POSITIVE,
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.0,
            -1.0,
            8.0,
            8.5,
            9.0,
            1900.0,
            1900.25,
            -4000.0,
            1e15 + 0.5,
            1e300,
            -1e300,
            i32::MIN as f64,
            (i32::MIN as f64) - 1.0,
            i32::MAX as f64,
            (i32::MAX as f64) + 1.0,
            (1u64 << 53) as f64,
            (1u64 << 63) as f64,
            u64::MAX as f64,
        ];
        for v in edges.into_iter().flat_map(|v| [v, v.next_up(), v.next_down()]) {
            assert_eq!(
                v2::valid_length_m(v),
                v.is_finite() && v >= 0.0,
                "length_m predicate diverges at {v:?}"
            );
            assert_eq!(
                v2::valid_material(v),
                v.is_finite()
                    && v.fract() == 0.0
                    && v >= 0.0
                    && (v as usize) < pipefail_network::attributes::Material::ALL.len(),
                "material predicate diverges at {v:?}"
            );
            assert_eq!(
                v2::valid_laid_year(v),
                v.is_finite()
                    && v.fract() == 0.0
                    && v >= i32::MIN as f64
                    && v <= i32::MAX as f64,
                "laid_year predicate diverges at {v:?}"
            );
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("valid snapshot");
        assert_eq!(back, snap);
        // Scores survive bit-for-bit.
        for ((pa, sa), (pb, sb)) in snap.scores.iter().zip(&back.scores) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        assert_eq!(back.section("clusters").unwrap().field("mean_count"), Some(&[3.5][..]));
        assert_eq!(back.section("absent"), None);
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join("pipefail_snapshot_test_file");
        let path = dir.join("model.pfsnap");
        let snap = sample();
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back, snap);
        assert!(Snapshot::load(&dir.join("absent.pfsnap")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn header_corruptions_are_typed() {
        let good = sample().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bad_magic), Err(SnapshotError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[6] = 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(_))
        ));

        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&trailing),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unsorted_and_nonfinite_scores_are_rejected() {
        // Hand-build an unsorted payload by swapping two score entries and
        // re-stamping the checksum (so only the ordering check can fire).
        let snap = sample();
        let mut bytes = snap.to_bytes();
        let scores_off = HEADER_LEN + 4 + snap.model.len() + 4 + snap.region.len() + 8 + 4;
        let entry = 12;
        let (a, b) = (scores_off, scores_off + entry);
        for i in 0..entry {
            bytes.swap(a + i, b + i);
        }
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsortedScores { at: 1 })
        ));

        let mut bytes = snap.to_bytes();
        bytes[scores_off + 4..scores_off + 12]
            .copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::NonFiniteScore(5))
        ));
    }

    fn restamp(bytes: &mut [u8]) {
        let sum = fnv_bytes(&bytes[HEADER_LEN..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn huge_declared_count_fails_fast_without_allocating() {
        // 4 GiB worth of scores declared in a 50-byte payload must be a
        // clean Truncated error (the count pre-check), not an OOM attempt.
        let mut snap = sample();
        snap.scores.clear();
        let mut bytes = snap.to_bytes();
        let count_off = HEADER_LEN + 4 + snap.model.len() + 4 + snap.region.len() + 8;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated(_))
        ));
    }

    #[test]
    fn attributes_section_round_trips_with_well_known_names() {
        let mut snap = sample();
        snap.push_section(attributes_section(
            vec![12.5, 80.0, 3.25, 200.0],
            vec![0.0, 4.0, 8.0, 1.0],
            vec![1923.0, 1950.0, 1987.0, 2004.0],
        ));
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("valid snapshot");
        let section = back.section(ATTRIBUTES_SECTION).expect("attributes section");
        assert_eq!(section.field(ATTR_LENGTH_M), Some(&[12.5, 80.0, 3.25, 200.0][..]));
        assert_eq!(section.field(ATTR_MATERIAL), Some(&[0.0, 4.0, 8.0, 1.0][..]));
        assert_eq!(
            section.field(ATTR_LAID_YEAR),
            Some(&[1923.0, 1950.0, 1987.0, 2004.0][..])
        );
    }

    fn sample_with_attrs() -> Snapshot {
        let mut snap = sample();
        snap.push_section(attributes_section(
            vec![12.5, 80.0, 3.25, 200.0],
            vec![0.0, 4.0, 8.0, 1.0],
            vec![1923.0, 1950.0, 1987.0, 2004.0],
        ));
        snap.push_section(SummarySection::new("tail").with_scalar("z", -0.25));
        snap
    }

    fn restamp_v2(bytes: &mut [u8]) {
        let sum = v2::fnv1a_words(&bytes[HEADER_LEN..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn v2_bytes_round_trip_exactly() {
        for snap in [sample(), sample_with_attrs()] {
            let bytes = snap.to_bytes_v2();
            assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), SNAPSHOT_VERSION_V2);
            let back = Snapshot::from_bytes(&bytes).expect("valid v2 snapshot");
            assert_eq!(back, snap);
            for ((pa, sa), (pb, sb)) in snap.scores.iter().zip(&back.scores) {
                assert_eq!(pa, pb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn v2_payload_is_word_aligned_and_sections_are_contiguous() {
        let bytes = sample_with_attrs().to_bytes_v2();
        assert_eq!((bytes.len() - HEADER_LEN) % 8, 0);
        let layout = v2::validate(&bytes).expect("valid layout");
        for range in [
            &layout.pipe_ids,
            &layout.scores,
            &layout.index_ids,
            &layout.index_ranks,
        ] {
            assert_eq!((range.start - HEADER_LEN) % 8, 0, "column start must be 8-aligned");
        }
        assert!(layout.attrs.is_some());
        assert_eq!(layout.attr_pos, Some(2));
        assert_eq!(layout.summary.len(), 3);
    }

    #[test]
    fn v2_noncanonical_attribute_sections_stay_in_summary() {
        // A shuffled-field attribute section is not extractable; it must
        // round-trip verbatim through the summary blob instead.
        let mut snap = sample();
        snap.push_section(
            SummarySection::new(ATTRIBUTES_SECTION)
                .with_field(ATTR_MATERIAL, vec![0.0; 4])
                .with_field(ATTR_LENGTH_M, vec![1.0; 4])
                .with_field(ATTR_LAID_YEAR, vec![1950.0; 4]),
        );
        let bytes = snap.to_bytes_v2();
        let layout = v2::validate(&bytes).expect("valid layout");
        assert!(layout.attrs.is_none());
        assert_eq!(Snapshot::from_bytes(&bytes).expect("valid"), snap);
    }

    #[test]
    fn v2_every_truncation_is_rejected() {
        let bytes = sample_with_attrs().to_bytes_v2();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn v2_every_single_bit_flip_is_rejected() {
        let good = sample_with_attrs().to_bytes_v2();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&bad).is_err(),
                    "bit flip at byte {byte} bit {bit} must not parse"
                );
            }
        }
    }

    #[test]
    fn v2_structural_corruptions_are_typed() {
        let snap = sample_with_attrs();
        let good = snap.to_bytes_v2();

        // Misaligned section offset: the first table entry's offset field.
        let entry0 = HEADER_LEN + v2::PREAMBLE_LEN;
        let mut bad = good.clone();
        let off = u64::from_le_bytes(bad[entry0 + 8..entry0 + 16].try_into().unwrap());
        bad[entry0 + 8..entry0 + 16].copy_from_slice(&(off + 4).to_le_bytes());
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::Misaligned("section offset"))
        );

        // Overlapping sections: pull the second section's offset backwards.
        let entry1 = entry0 + v2::SECTION_ENTRY_LEN;
        let mut bad = good.clone();
        let off = u64::from_le_bytes(bad[entry1 + 8..entry1 + 16].try_into().unwrap());
        bad[entry1 + 8..entry1 + 16].copy_from_slice(&(off - 8).to_le_bytes());
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadSectionTable("sections overlap or leave a gap"))
        );

        // Unknown section kind.
        let mut bad = good.clone();
        bad[entry0..entry0 + 4].copy_from_slice(&99u32.to_le_bytes());
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadSectionTable("unknown section kind"))
        );

        // Reserved bits set.
        let mut bad = good.clone();
        bad[entry0 + 4] = 1;
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadSectionTable("reserved bits set"))
        );
    }

    #[test]
    fn v2_column_corruptions_are_typed() {
        let snap = sample_with_attrs();
        let good = snap.to_bytes_v2();
        let layout = v2::validate(&good).expect("valid layout");

        // Swap the first two scores: descending order breaks at index 1.
        let mut bad = good.clone();
        let s = layout.scores.start;
        for i in 0..8 {
            bad.swap(s + i, s + 8 + i);
        }
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsortedScores { at: 1 })
        );

        // NaN score carries the pipe id from the id column.
        let mut bad = good.clone();
        bad[s..s + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::NonFiniteScore(5))
        );

        // Swap the first two index entries (ids and ranks together): the
        // (id, rank) order breaks at entry 1.
        let mut bad = good.clone();
        let (ii, ir) = (layout.index_ids.start, layout.index_ranks.start);
        for i in 0..4 {
            bad.swap(ii + i, ii + 4 + i);
            bad.swap(ir + i, ir + 4 + i);
        }
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsortedIndex { at: 1 })
        );

        // A negative pipe length in the attribute column.
        let attrs = layout.attrs.as_ref().expect("attrs present");
        let mut bad = good.clone();
        let a = attrs.length_m.start;
        bad[a..a + 8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        restamp_v2(&mut bad);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadAttributes(ATTR_LENGTH_M))
        );
    }

    #[test]
    fn format_labels_parse_and_negotiate() {
        assert_eq!(SnapshotFormat::parse("v1"), Some(SnapshotFormat::V1));
        assert_eq!(SnapshotFormat::parse("v2"), Some(SnapshotFormat::V2));
        assert_eq!(SnapshotFormat::parse("v3"), None);
        assert_eq!(SnapshotFormat::V2.label(), "v2");
        assert_eq!(SnapshotFormat::V1.version(), SNAPSHOT_VERSION);
        assert_eq!(SnapshotFormat::V2.version(), SNAPSHOT_VERSION_V2);

        let snap = sample();
        let dir = std::env::temp_dir().join("pipefail_snapshot_test_formats");
        for format in [SnapshotFormat::V1, SnapshotFormat::V2] {
            let path = dir.join(format!("m_{format}.pfsnap"));
            snap.save_as(&path, format).expect("save");
            assert_eq!(Snapshot::load(&path).expect("load"), snap);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ranking_round_trips_identically() {
        let ranking = sample().ranking();
        let snap = Snapshot::new("m", "r", 0, &ranking);
        assert_eq!(snap.ranking(), ranking);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert!(Snapshot::new("m", "r", 0, &RiskRanking::new(vec![])).is_empty());
    }
}
