//! Model snapshots: the frozen, servable output of a fit.
//!
//! A [`Snapshot`] decouples *fitting* from *scoring*: an experiment binary
//! (or `pipefail snapshot`) fits a model once, exports the ranking plus a
//! compact posterior summary, and a serving process (`pipefail serve`,
//! `pipefail-serve`) loads the file and answers top-K / per-pipe queries
//! without ever touching MCMC. The format is hand-rolled binary — the
//! dependency policy of this workspace rules out serde — and is specified
//! byte by byte in `docs/SNAPSHOT_FORMAT.md`; this module is the reference
//! implementation of that spec.
//!
//! Design points, shared with the sibling [`checkpoint`] codec:
//!
//! * **Lossless floats.** Scores and summary values round-trip through
//!   `f64::to_bits`, so a served ranking is *byte-identical* to the
//!   in-process ranking that produced it.
//! * **Integrity first.** A magic string, a format version, and an FNV-1a
//!   checksum over the payload (the same [`checkpoint::Fingerprint`]
//!   hasher) guard the header; loading is *strict* — unlike the forgiving
//!   checkpoint reader, any truncation, bit flip, unsorted ranking, or
//!   trailing garbage is a typed [`SnapshotError`], never a silent
//!   best-effort load, because a serving process must refuse to serve a
//!   corrupt model.
//! * **Atomic writes.** Files are written via
//!   [`checkpoint::atomic_write`], so a crash mid-export never leaves a
//!   half-written snapshot where a server might pick it up.
//!
//! # Examples
//!
//! ```
//! use pipefail_core::model::{RiskRanking, RiskScore};
//! use pipefail_core::snapshot::{Snapshot, SummarySection};
//! use pipefail_network::ids::PipeId;
//!
//! let ranking = RiskRanking::new(vec![
//!     RiskScore { pipe: PipeId(3), score: 0.9 },
//!     RiskScore { pipe: PipeId(1), score: 0.2 },
//! ]);
//! let mut snap = Snapshot::new("DPMHBP", "Region A", 7, &ranking);
//! snap.push_section(
//!     SummarySection::new("clusters").with_scalar("mean_count", 4.5),
//! );
//! let bytes = snap.to_bytes();
//! let back = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(back, snap);
//! assert_eq!(back.ranking().pipes_in_order().next(), Some(PipeId(3)));
//! ```

use crate::checkpoint::{self, Fingerprint};
use crate::model::{FailureModel, RiskRanking, RiskScore};
use crate::Result;
use pipefail_network::ids::PipeId;
use std::path::Path;

/// The six leading bytes of every snapshot file.
pub const MAGIC: [u8; 6] = *b"PFSNAP";

/// Name of the well-known summary section carrying per-pipe asset
/// attributes for aggregation queries (`POST /aggregate`). Its three
/// fields — [`ATTR_LENGTH_M`], [`ATTR_MATERIAL`], [`ATTR_LAID_YEAR`] —
/// are vectors **aligned with the snapshot's score order** (entry `i`
/// describes the pipe at rank `i`). The section is optional: snapshots
/// without it still serve top-K and point lookups, but aggregation
/// queries that need pipe length, material, or age cohorts are refused
/// with a typed error.
pub const ATTRIBUTES_SECTION: &str = "pipe_attributes";

/// Per-pipe length in metres (finite, non-negative).
pub const ATTR_LENGTH_M: &str = "length_m";

/// Per-pipe material, stored as the f64 of its index into the material
/// catalogue (`pipefail_network::attributes::Material::ALL`).
pub const ATTR_MATERIAL: &str = "material";

/// Per-pipe construction year, stored as the f64 of the year.
pub const ATTR_LAID_YEAR: &str = "laid_year";

/// Build the [`ATTRIBUTES_SECTION`] from three equally-long vectors
/// aligned with the snapshot's score order. The caller is responsible for
/// the alignment; serving-side validation rejects misaligned sections at
/// load instead of serving garbage aggregates.
pub fn attributes_section(
    length_m: Vec<f64>,
    material: Vec<f64>,
    laid_year: Vec<f64>,
) -> SummarySection {
    SummarySection::new(ATTRIBUTES_SECTION)
        .with_field(ATTR_LENGTH_M, length_m)
        .with_field(ATTR_MATERIAL, material)
        .with_field(ATTR_LAID_YEAR, laid_year)
}

/// Current snapshot format version (header bytes 6..8, little-endian).
pub const SNAPSHOT_VERSION: u16 = 1;

/// Fixed header size in bytes: magic (6) + version (2) + checksum (8) +
/// payload length (8).
pub const HEADER_LEN: usize = 24;

/// A named vector of posterior-summary values (e.g. `"beta"` for Cox
/// coefficients, `"mean"` for per-pipe posterior means).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryField {
    /// Field name, unique within its section.
    pub name: String,
    /// The values; scalars are length-1 vectors.
    pub values: Vec<f64>,
}

/// A named group of [`SummaryField`]s describing one aspect of a fitted
/// model's posterior (cluster traces, group rates, coefficient vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySection {
    /// Section name (e.g. `"clusters"`, `"group_posterior[material]"`).
    pub name: String,
    /// The section's fields, in export order.
    pub fields: Vec<SummaryField>,
}

impl SummarySection {
    /// An empty section called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// This section with a vector field appended.
    pub fn with_field(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.fields.push(SummaryField {
            name: name.into(),
            values,
        });
        self
    }

    /// This section with a scalar field appended.
    pub fn with_scalar(self, name: impl Into<String>, value: f64) -> Self {
        self.with_field(name, vec![value])
    }

    /// The values of the field called `name`, if present.
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.values.as_slice())
    }
}

/// Why a snapshot failed to load. Every variant means "do not serve this
/// file" — there is deliberately no lenient fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Shorter than the fixed header.
    TooShort {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The first six bytes are not [`MAGIC`].
    BadMagic,
    /// Header version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u16),
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch {
        /// Checksum the header declares.
        declared: u64,
        /// Checksum of the bytes as read.
        actual: u64,
    },
    /// The payload ended mid-field.
    Truncated(&'static str),
    /// A string field is not valid UTF-8.
    BadUtf8(&'static str),
    /// A score is NaN or infinite — a snapshot never stores a poisoned fit.
    NonFiniteScore(u32),
    /// Scores are not in descending order — the ranking invariant is part
    /// of the format, not a load-time courtesy.
    UnsortedScores {
        /// Index of the first out-of-order entry.
        at: usize,
    },
    /// Reading the file itself failed.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort { need, got } => {
                write!(f, "snapshot too short: need {need} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::LengthMismatch { declared, actual } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch { declared, actual } => write!(
                f,
                "checksum mismatch: header declares {declared:016x}, payload hashes to {actual:016x}"
            ),
            SnapshotError::Truncated(what) => write!(f, "payload truncated reading {what}"),
            SnapshotError::BadUtf8(what) => write!(f, "invalid UTF-8 in {what}"),
            SnapshotError::NonFiniteScore(pipe) => {
                write!(f, "non-finite score for pipe {pipe}")
            }
            SnapshotError::UnsortedScores { at } => {
                write!(f, "scores not in descending order at index {at}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A fitted model frozen for serving: identity, the full descending risk
/// ranking, and the posterior summary sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Model display name ("DPMHBP", "Cox", …).
    pub model: String,
    /// Dataset/region the model was fitted on.
    pub region: String,
    /// Master seed of the fit (provenance; replaying the fit with this seed
    /// reproduces the ranking bit for bit).
    pub seed: u64,
    /// `(pipe, score)` pairs in descending score order.
    pub scores: Vec<(PipeId, f64)>,
    /// Posterior summary sections, in export order.
    pub sections: Vec<SummarySection>,
}

impl Snapshot {
    /// Freeze `ranking` under the given identity; summary sections start
    /// empty (see [`Snapshot::push_section`] / [`Snapshot::from_fit`]).
    pub fn new(
        model: impl Into<String>,
        region: impl Into<String>,
        seed: u64,
        ranking: &RiskRanking,
    ) -> Self {
        Self {
            model: model.into(),
            region: region.into(),
            seed,
            scores: ranking.scores().iter().map(|s| (s.pipe, s.score)).collect(),
            sections: Vec::new(),
        }
    }

    /// Freeze a fitted model: takes the display name and posterior summary
    /// from the model itself ([`FailureModel::posterior_summary`]).
    pub fn from_fit(
        model: &dyn FailureModel,
        region: impl Into<String>,
        seed: u64,
        ranking: &RiskRanking,
    ) -> Self {
        let mut snap = Self::new(model.name(), region, seed, ranking);
        snap.sections = model.posterior_summary();
        snap
    }

    /// Append a posterior summary section.
    pub fn push_section(&mut self, section: SummarySection) {
        self.sections.push(section);
    }

    /// The section called `name`, if present.
    pub fn section(&self, name: &str) -> Option<&SummarySection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no pipes are ranked.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Reconstruct the [`RiskRanking`]. Scores are stored sorted, so this
    /// is exactly the ranking that was frozen (stable re-sort of an
    /// already-sorted vector).
    pub fn ranking(&self) -> RiskRanking {
        RiskRanking::new(
            self.scores
                .iter()
                .map(|&(pipe, score)| RiskScore { pipe, score })
                .collect(),
        )
    }

    /// Serialize to the on-disk byte format (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, &self.model);
        put_str(&mut payload, &self.region);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        put_u32(&mut payload, self.scores.len() as u32);
        for &(pipe, score) in &self.scores {
            put_u32(&mut payload, pipe.0);
            payload.extend_from_slice(&score.to_bits().to_le_bytes());
        }
        put_u32(&mut payload, self.sections.len() as u32);
        for section in &self.sections {
            put_str(&mut payload, &section.name);
            put_u32(&mut payload, section.fields.len() as u32);
            for field in &section.fields {
                put_str(&mut payload, &field.name);
                put_u32(&mut payload, field.values.len() as u32);
                for v in &field.values {
                    payload.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Parse and fully validate the byte format. Strict: any malformation
    /// is an error, and the scores' descending-order invariant is checked
    /// so a loaded snapshot can be served without re-sorting.
    pub fn from_bytes(bytes: &[u8]) -> std::result::Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::TooShort {
                need: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[..6] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let declared_sum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let declared_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if declared_len != payload.len() as u64 {
            return Err(SnapshotError::LengthMismatch {
                declared: declared_len,
                actual: payload.len() as u64,
            });
        }
        let actual_sum = fnv_bytes(payload);
        if actual_sum != declared_sum {
            return Err(SnapshotError::ChecksumMismatch {
                declared: declared_sum,
                actual: actual_sum,
            });
        }

        let mut cur = Cursor { buf: payload, pos: 0 };
        let model = cur.str("model name")?;
        let region = cur.str("region name")?;
        let seed = cur.u64("seed")?;
        let n_scores = cur.count("score count", 12)?;
        let mut scores = Vec::with_capacity(n_scores);
        for i in 0..n_scores {
            let pipe = cur.u32("score pipe id")?;
            let score = f64::from_bits(cur.u64("score value")?);
            if !score.is_finite() {
                return Err(SnapshotError::NonFiniteScore(pipe));
            }
            if let Some(&(_, prev)) = scores.last() {
                if score > prev {
                    return Err(SnapshotError::UnsortedScores { at: i });
                }
            }
            scores.push((PipeId(pipe), score));
        }
        let n_sections = cur.count("section count", 8)?;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = cur.str("section name")?;
            let n_fields = cur.count("field count", 8)?;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                let fname = cur.str("field name")?;
                let n_values = cur.count("value count", 8)?;
                let mut values = Vec::with_capacity(n_values);
                for _ in 0..n_values {
                    values.push(f64::from_bits(cur.u64("field value")?));
                }
                fields.push(SummaryField { name: fname, values });
            }
            sections.push(SummarySection { name, fields });
        }
        if cur.pos != payload.len() {
            return Err(SnapshotError::Truncated("trailing bytes after payload"));
        }
        Ok(Self {
            model,
            region,
            seed,
            scores,
            sections,
        })
    }

    /// Write atomically to `path` (via [`checkpoint::atomic_write`]).
    pub fn save(&self, path: &Path) -> Result<()> {
        checkpoint::atomic_write(path, &self.to_bytes())
    }

    /// Load and validate a snapshot file.
    pub fn load(path: &Path) -> std::result::Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

/// FNV-1a over raw bytes, via the checkpoint fingerprint hasher.
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_bytes(bytes);
    fp.finish()
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over the payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &'static str) -> std::result::Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated(what))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &'static str) -> std::result::Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> std::result::Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an element count and pre-validate that `count * min_elem_bytes`
    /// still fits in the remaining payload, so a corrupted count can never
    /// drive a huge allocation.
    fn count(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> std::result::Result<usize, SnapshotError> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(SnapshotError::Truncated(what));
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> std::result::Result<String, SnapshotError> {
        let len = self.count(what, 1)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let ranking = RiskRanking::new(vec![
            RiskScore { pipe: PipeId(5), score: 0.75 },
            RiskScore { pipe: PipeId(0), score: 0.5 },
            RiskScore { pipe: PipeId(9), score: 0.5 },
            RiskScore { pipe: PipeId(2), score: -1.25 },
        ]);
        let mut snap = Snapshot::new("DPMHBP", "Region A", 42, &ranking);
        snap.push_section(
            SummarySection::new("clusters")
                .with_scalar("mean_count", 3.5)
                .with_field("alpha_trace", vec![0.9, 1.1, 1.0]),
        );
        snap.push_section(SummarySection::new("empty"));
        snap
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("valid snapshot");
        assert_eq!(back, snap);
        // Scores survive bit-for-bit.
        for ((pa, sa), (pb, sb)) in snap.scores.iter().zip(&back.scores) {
            assert_eq!(pa, pb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        assert_eq!(back.section("clusters").unwrap().field("mean_count"), Some(&[3.5][..]));
        assert_eq!(back.section("absent"), None);
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join("pipefail_snapshot_test_file");
        let path = dir.join("model.pfsnap");
        let snap = sample();
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back, snap);
        assert!(Snapshot::load(&dir.join("absent.pfsnap")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn header_corruptions_are_typed() {
        let good = sample().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bad_magic), Err(SnapshotError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[6] = 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(_))
        ));

        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&trailing),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unsorted_and_nonfinite_scores_are_rejected() {
        // Hand-build an unsorted payload by swapping two score entries and
        // re-stamping the checksum (so only the ordering check can fire).
        let snap = sample();
        let mut bytes = snap.to_bytes();
        let scores_off = HEADER_LEN + 4 + snap.model.len() + 4 + snap.region.len() + 8 + 4;
        let entry = 12;
        let (a, b) = (scores_off, scores_off + entry);
        for i in 0..entry {
            bytes.swap(a + i, b + i);
        }
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsortedScores { at: 1 })
        ));

        let mut bytes = snap.to_bytes();
        bytes[scores_off + 4..scores_off + 12]
            .copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::NonFiniteScore(5))
        ));
    }

    fn restamp(bytes: &mut [u8]) {
        let sum = fnv_bytes(&bytes[HEADER_LEN..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn huge_declared_count_fails_fast_without_allocating() {
        // 4 GiB worth of scores declared in a 50-byte payload must be a
        // clean Truncated error (the count pre-check), not an OOM attempt.
        let mut snap = sample();
        snap.scores.clear();
        let mut bytes = snap.to_bytes();
        let count_off = HEADER_LEN + 4 + snap.model.len() + 4 + snap.region.len() + 8;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated(_))
        ));
    }

    #[test]
    fn attributes_section_round_trips_with_well_known_names() {
        let mut snap = sample();
        snap.push_section(attributes_section(
            vec![12.5, 80.0, 3.25, 200.0],
            vec![0.0, 4.0, 8.0, 1.0],
            vec![1923.0, 1950.0, 1987.0, 2004.0],
        ));
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("valid snapshot");
        let section = back.section(ATTRIBUTES_SECTION).expect("attributes section");
        assert_eq!(section.field(ATTR_LENGTH_M), Some(&[12.5, 80.0, 3.25, 200.0][..]));
        assert_eq!(section.field(ATTR_MATERIAL), Some(&[0.0, 4.0, 8.0, 1.0][..]));
        assert_eq!(
            section.field(ATTR_LAID_YEAR),
            Some(&[1923.0, 1950.0, 1987.0, 2004.0][..])
        );
    }

    #[test]
    fn ranking_round_trips_identically() {
        let ranking = sample().ranking();
        let snap = Snapshot::new("m", "r", 0, &ranking);
        assert_eq!(snap.ranking(), ranking);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert!(Snapshot::new("m", "r", 0, &RiskRanking::new(vec![])).is_empty());
    }
}
