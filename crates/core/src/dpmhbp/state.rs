//! Sampler state for the DPMHBP: clusters in stable slots.
//!
//! Clusters are created and destroyed constantly during the CRP sweep; to
//! keep `z` indices stable (and avoid O(L) remaps on every removal) clusters
//! live in a slot arena with a free list. Each cluster caches its marginal
//! log-likelihood per observation pattern, invalidated whenever its `(q, c)`
//! are resampled.

use crate::hier::{MarginalContext, PatternTable};

/// One mixture component: group parameters plus member bookkeeping.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Group failure rate `q_k`.
    pub q: f64,
    /// Group concentration `c_k`.
    pub c: f64,
    /// Number of member segments.
    pub n: usize,
    /// Member count per observation pattern.
    pub pattern_counts: Vec<f64>,
    /// Cached `log_marginal(pattern | q, c)` per pattern.
    pub loglik: Vec<f64>,
}

impl Cluster {
    /// Create an empty cluster with parameters `(q, c)`, caching its
    /// likelihood column.
    pub fn new(q: f64, c: f64, table: &PatternTable) -> Self {
        let mut cl = Self {
            q,
            c,
            n: 0,
            pattern_counts: vec![0.0; table.len()],
            loglik: vec![0.0; table.len()],
        };
        cl.refresh_cache(table);
        cl
    }

    /// Recompute the likelihood cache after a `(q, c)` update. The shared
    /// `(q, c)` log-gammas are hoisted once for the whole column.
    pub fn refresh_cache(&mut self, table: &PatternTable) {
        let ctx = MarginalContext::new(self.q, self.c);
        for (idx, pat) in table.patterns().iter().enumerate() {
            self.loglik[idx] = ctx.log_marginal(*pat);
        }
    }

    /// Largest deviation between the cached likelihood column and a
    /// from-scratch recompute at the current `(q, c)` — zero unless the
    /// cache went stale. Used by the debug cross-check and the cache tests
    /// (both compiled only in debug builds).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub fn cache_error(&self, table: &PatternTable) -> f64 {
        let ctx = MarginalContext::new(self.q, self.c);
        table
            .patterns()
            .iter()
            .enumerate()
            .map(|(idx, pat)| (self.loglik[idx] - ctx.log_marginal(*pat)).abs())
            .fold(0.0, f64::max)
    }
}

/// Slot arena of clusters.
#[derive(Debug, Clone, Default)]
pub struct ClusterSlots {
    slots: Vec<Option<Cluster>>,
    free: Vec<usize>,
    occupied: usize,
}

impl ClusterSlots {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live clusters.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no cluster is live.
    #[allow(dead_code)] // used by unit tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Insert a cluster, returning its slot id.
    pub fn insert(&mut self, cluster: Cluster) -> usize {
        self.occupied += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot] = Some(cluster);
            slot
        } else {
            self.slots.push(Some(cluster));
            self.slots.len() - 1
        }
    }

    /// Remove the cluster in `slot` (must be live).
    pub fn remove(&mut self, slot: usize) -> Cluster {
        let c = self.slots[slot].take().expect("remove of live slot");
        self.free.push(slot);
        self.occupied -= 1;
        c
    }

    /// Immutable access (must be live).
    pub fn get(&self, slot: usize) -> &Cluster {
        self.slots[slot].as_ref().expect("live slot")
    }

    /// Mutable access (must be live).
    pub fn get_mut(&mut self, slot: usize) -> &mut Cluster {
        self.slots[slot].as_mut().expect("live slot")
    }

    /// Iterate `(slot, cluster)` over live clusters.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Cluster)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }

    /// Live slot ids (collected; used where mutation happens inside a loop).
    pub fn live_slots(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect()
    }

    /// Cluster sizes of live clusters (for diagnostics).
    #[allow(dead_code)] // used by unit tests and kept for API symmetry
    pub fn sizes(&self) -> Vec<usize> {
        self.iter().map(|(_, c)| c.n).collect()
    }

    /// Raw arena view for checkpointing: `(slots, free_list)`. The free-list
    /// *order* matters — slot reuse order affects which slot ids future
    /// clusters get, and resume must replay it exactly.
    pub fn raw_parts(&self) -> (&[Option<Cluster>], &[usize]) {
        (&self.slots, &self.free)
    }

    /// Rebuild an arena from checkpointed raw parts.
    pub fn from_raw_parts(slots: Vec<Option<Cluster>>, free: Vec<usize>) -> Self {
        let occupied = slots.iter().filter(|s| s.is_some()).count();
        Self {
            slots,
            free,
            occupied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PatternTable {
        PatternTable::build(vec![(0.0, 11.0, 1.0), (1.0, 10.0, 1.0)].into_iter())
    }

    #[test]
    fn cluster_cache_matches_direct() {
        let t = table();
        let c = Cluster::new(0.05, 20.0, &t);
        for (i, pat) in t.patterns().iter().enumerate() {
            assert!((c.loglik[i] - pat.log_marginal(0.05, 20.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn slots_reuse_freed_entries() {
        let t = table();
        let mut slots = ClusterSlots::new();
        let a = slots.insert(Cluster::new(0.1, 5.0, &t));
        let b = slots.insert(Cluster::new(0.2, 5.0, &t));
        assert_eq!(slots.len(), 2);
        slots.remove(a);
        assert_eq!(slots.len(), 1);
        let c = slots.insert(Cluster::new(0.3, 5.0, &t));
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(slots.len(), 2);
        let live = slots.live_slots();
        assert!(live.contains(&b) && live.contains(&c));
    }

    #[test]
    fn iter_skips_dead_slots() {
        let t = table();
        let mut slots = ClusterSlots::new();
        let a = slots.insert(Cluster::new(0.1, 5.0, &t));
        slots.insert(Cluster::new(0.2, 5.0, &t));
        slots.remove(a);
        assert_eq!(slots.iter().count(), 1);
        assert_eq!(slots.sizes().len(), 1);
    }
}
