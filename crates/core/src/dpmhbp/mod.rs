//! The Dirichlet process mixture of hierarchical beta processes (§18.3.3,
//! Eq. 18.7) — the paper's proposed model.
//!
//! Failure probability is modelled on three levels:
//!
//! * **segment-group level** — group failure rates `q_k ~ Beta(c₀q₀,
//!   c₀(1−q₀))`, with the number of groups unbounded (CRP prior on
//!   assignments `z_l`);
//! * **segment level** — `ρ_l ~ Beta(c_k q_k, c_k(1−q_k))`, with annual
//!   failure events `y_{l,j} ~ Bernoulli(ρ_l)` (sufficient statistics only;
//!   the binary matrix is never materialised);
//! * **pipe level** — `π_i = 1 − Π_l (1 − ρ_l)` over the pipe's segments in
//!   series, which is where pipe length enters (longer pipes have more
//!   segments).
//!
//! Inference is Metropolis-within-Gibbs: segment assignments by **Neal's
//! Algorithm 8** (auxiliary prior draws stand in for the intractable
//! new-cluster integral), group parameters `(q_k, c_k)` by slice-within-Gibbs
//! on transformed scales, and the DP concentration `α` by the Escobar–West
//! auxiliary-variable step. Covariates enter as exposure multipliers fitted
//! by Poisson regression (see [`crate::covariates`]).

mod state;

use crate::checkpoint::{CheckpointSpec, Fingerprint, Reader, Writer};
use crate::covariates::CovariateAdjuster;
use crate::crp::resample_alpha;
use crate::hier::{MarginalContext, PatternTable};
use crate::model::{FailureModel, RiskRanking, RiskScore};
use crate::{CoreError, Result};
use pipefail_mcmc::slice::SliceSampler;
use pipefail_mcmc::transform::Transform;
use pipefail_mcmc::{ChainHealth, HealthConfig, Schedule};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::features::FeatureMask;
use pipefail_network::split::TrainTestSplit;
use pipefail_stats::dist::{sample_from_log_weights, Beta, ContinuousDist, Gamma, Sampler};
use pipefail_stats::rng::seeded_rng;
use rand::rngs::StdRng;
use state::{Cluster, ClusterSlots};

/// DPMHBP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DpmhbpConfig {
    /// MCMC schedule.
    pub schedule: Schedule,
    /// Initial DP concentration α.
    pub alpha: f64,
    /// Resample α by Escobar–West each sweep.
    pub sample_alpha: bool,
    /// Gamma prior (shape, rate) on α when sampled.
    pub alpha_prior: (f64, f64),
    /// Hyper-prior mean failure rate `q₀`; `None` = empirical.
    pub q0: Option<f64>,
    /// Hyper concentration `c₀`.
    pub c0: f64,
    /// Gamma prior (shape, rate) on the group concentrations `c_k`.
    pub c_prior: (f64, f64),
    /// Number of auxiliary components in Neal's Algorithm 8.
    pub aux_m: usize,
    /// Multiplicative covariate adjustment; `None` disables it.
    pub covariates: Option<FeatureMask>,
    /// Online chain-health thresholds (divergence budget, stuck detection,
    /// optional wall-clock budget).
    pub health: HealthConfig,
    /// Periodic sampler-state checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for DpmhbpConfig {
    fn default() -> Self {
        Self {
            schedule: Schedule::new(300, 700, 1),
            alpha: 1.0,
            sample_alpha: true,
            alpha_prior: (2.0, 0.5),
            q0: None,
            c0: 5.0,
            c_prior: (2.0, 0.05),
            aux_m: 3,
            covariates: Some(FeatureMask::water_mains()),
            health: HealthConfig::default(),
            checkpoint: None,
        }
    }
}

impl DpmhbpConfig {
    /// A reduced schedule for tests, demos and benches.
    pub fn fast() -> Self {
        Self {
            schedule: Schedule::new(80, 150, 1),
            ..Self::default()
        }
    }
}

/// A pipe's posterior risk summary: Monte Carlo mean and standard
/// deviation of π across retained sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskPosterior {
    /// The pipe.
    pub pipe: pipefail_network::ids::PipeId,
    /// Posterior mean of the next-year failure probability.
    pub mean: f64,
    /// Posterior standard deviation (MCMC, parameter uncertainty only).
    pub sd: f64,
}

/// Convergence/diagnostic traces from a fit.
#[derive(Debug, Clone, Default)]
pub struct DpmhbpDiagnostics {
    /// Number of live clusters at each retained sweep.
    pub clusters: Vec<f64>,
    /// DP concentration α at each retained sweep.
    pub alpha: Vec<f64>,
    /// Size-weighted mean group rate at each retained sweep.
    pub mean_q: Vec<f64>,
}

/// The DPMHBP failure-prediction model.
#[derive(Debug, Clone)]
pub struct Dpmhbp {
    config: DpmhbpConfig,
    diagnostics: DpmhbpDiagnostics,
    posterior: Vec<RiskPosterior>,
}

impl Dpmhbp {
    /// Create with a configuration.
    pub fn new(config: DpmhbpConfig) -> Self {
        Self {
            config,
            diagnostics: DpmhbpDiagnostics::default(),
            posterior: Vec::new(),
        }
    }

    /// Per-pipe posterior risk summaries (mean ± sd) from the most recent
    /// fit, in the evaluated pipes' order.
    pub fn risk_posterior(&self) -> &[RiskPosterior] {
        &self.posterior
    }

    /// Diagnostics of the most recent fit.
    pub fn diagnostics(&self) -> &DpmhbpDiagnostics {
        &self.diagnostics
    }

    /// Posterior-mean number of clusters from the most recent fit.
    pub fn mean_cluster_count(&self) -> Option<f64> {
        pipefail_stats::descriptive::mean(&self.diagnostics.clusters).ok()
    }
}

struct Sampler8<'a> {
    table: &'a PatternTable,
    slots: ClusterSlots,
    z: Vec<usize>,
    alpha: f64,
    q_prior: Beta,
    c_prior_dist: Gamma,
    aux_m: usize,
    slice_q: SliceSampler,
    slice_c: SliceSampler,
    // scratch buffers to avoid per-unit allocation
    weight_slots: Vec<usize>,
    weights: Vec<f64>,
    aux_params: Vec<(f64, f64)>,
}

impl<'a> Sampler8<'a> {
    fn new(table: &'a PatternTable, config: &DpmhbpConfig, q0: f64, rng: &mut StdRng) -> Result<Self> {
        let q_prior = Beta::with_mean_concentration(q0, config.c0)
            .map_err(|_| CoreError::BadConfig("invalid (q0, c0) hyper-prior"))?;
        let c_prior_dist = Gamma::new(config.c_prior.0, config.c_prior.1)
            .map_err(|_| CoreError::BadConfig("invalid c prior"))?;
        let mut s = Self {
            table,
            slots: ClusterSlots::new(),
            z: vec![usize::MAX; table.units()],
            alpha: config.alpha,
            q_prior,
            c_prior_dist,
            aux_m: config.aux_m.max(1),
            slice_q: SliceSampler::new(1.0),
            slice_c: SliceSampler::new(0.7),
            weight_slots: Vec::new(),
            weights: Vec::new(),
            aux_params: Vec::new(),
        };
        // Initialise: everyone in one cluster drawn from the prior.
        let q = s.q_prior.sample(rng);
        let c = s.c_prior_dist.sample(rng).max(1e-3);
        let slot = s.slots.insert(Cluster::new(q, c, table));
        for l in 0..table.units() {
            s.assign(l, slot);
        }
        Ok(s)
    }

    fn assign(&mut self, unit: usize, slot: usize) {
        let pat = self.table.pattern_of(unit);
        let c = self.slots.get_mut(slot);
        c.n += 1;
        c.pattern_counts[pat] += 1.0;
        self.z[unit] = slot;
    }

    fn unassign(&mut self, unit: usize) {
        let slot = self.z[unit];
        let pat = self.table.pattern_of(unit);
        let dead = {
            let c = self.slots.get_mut(slot);
            c.n -= 1;
            c.pattern_counts[pat] -= 1.0;
            c.n == 0
        };
        if dead {
            self.slots.remove(slot);
        }
        self.z[unit] = usize::MAX;
    }

    /// One CRP sweep over all units (Neal's Algorithm 8 with `aux_m`
    /// auxiliary components redrawn per unit).
    fn sweep_assignments(&mut self, rng: &mut StdRng) {
        for unit in 0..self.table.units() {
            self.unassign(unit);
            let pat = self.table.pattern_of(unit);
            self.weight_slots.clear();
            self.weights.clear();
            self.aux_params.clear();
            for (slot, cluster) in self.slots.iter() {
                self.weight_slots.push(slot);
                self.weights
                    .push((cluster.n as f64).ln() + cluster.loglik[pat]);
            }
            let ln_alpha_m = (self.alpha / self.aux_m as f64).ln();
            let pat_obj = self.table.pattern(pat);
            for _ in 0..self.aux_m {
                let q = self.q_prior.sample(rng);
                let c = self.c_prior_dist.sample(rng).max(1e-3);
                self.aux_params.push((q, c));
                // Context evaluation halves the log-gamma count even for a
                // single pattern (3 hoisted + integer-shift recurrences
                // instead of 6 direct).
                self.weights
                    .push(ln_alpha_m + MarginalContext::new(q, c).log_marginal(pat_obj));
            }
            let choice = sample_from_log_weights(&self.weights, rng);
            let slot = if choice < self.weight_slots.len() {
                self.weight_slots[choice]
            } else {
                let (q, c) = self.aux_params[choice - self.weight_slots.len()];
                self.slots.insert(Cluster::new(q, c, self.table))
            };
            self.assign(unit, slot);
        }
    }

    /// Slice-update `(q_k, c_k)` for every live cluster and refresh caches.
    /// Errors (instead of panicking) when a cluster's current parameters
    /// have non-finite posterior density.
    fn sweep_parameters(&mut self, rng: &mut StdRng) -> Result<()> {
        let logit = Transform::Logit;
        let log_t = Transform::Log;
        for slot in self.slots.live_slots() {
            // The slice proposals evaluate the likelihood many times with
            // these fixed counts; the sparse nonzero list skips the dense
            // zero scan on every evaluation.
            let (q_cur, c_cur, counts) = {
                let cl = self.slots.get(slot);
                (cl.q, cl.c, crate::hier::sparse_counts(&cl.pattern_counts))
            };
            let table = self.table;
            let q_prior = self.q_prior;
            let c_prior = self.c_prior_dist;
            // q | rest
            let c_fixed = c_cur;
            let log_post_q = |y: f64| {
                let q = logit.inverse(y);
                q_prior.ln_pdf(q)
                    + table.group_log_likelihood_sparse(&counts, q, c_fixed)
                    + logit.ln_jacobian(y)
            };
            let y = self.slice_q.try_step(
                logit.forward(q_cur.clamp(1e-9, 1.0 - 1e-9)),
                &log_post_q,
                rng,
            )?;
            let q_new = logit.inverse(y).clamp(1e-9, 1.0 - 1e-9);
            // c | rest
            let log_post_c = |y: f64| {
                let c = log_t.inverse(y);
                if !(c.is_finite() && c > 0.0) {
                    return f64::NEG_INFINITY;
                }
                c_prior.ln_pdf(c)
                    + table.group_log_likelihood_sparse(&counts, q_new, c)
                    + log_t.ln_jacobian(y)
            };
            let y = self.slice_c.try_step(log_t.forward(c_cur), &log_post_c, rng)?;
            let c_new = log_t.inverse(y).clamp(1e-6, 1e9);
            let cl = self.slots.get_mut(slot);
            cl.q = q_new;
            cl.c = c_new;
            cl.refresh_cache(table);
        }
        Ok(())
    }

    fn sweep_alpha(&mut self, prior: (f64, f64), rng: &mut StdRng) {
        self.alpha = resample_alpha(
            self.alpha,
            self.slots.len(),
            self.table.units(),
            prior.0,
            prior.1,
            rng,
        );
    }

    /// Write the posterior mean of every unit's ρ under the current state
    /// into `out`.
    fn current_rho(&self, out: &mut [f64]) {
        for (unit, &slot) in self.z.iter().enumerate() {
            let cl = self.slots.get(slot);
            out[unit] = self
                .table
                .pattern(self.table.pattern_of(unit))
                .posterior_mean(cl.q, cl.c);
        }
    }

    /// Debug cross-check of the incremental caches: every live cluster's
    /// likelihood column must match a from-scratch recompute at its current
    /// `(q, c)`, and its membership bookkeeping must match a from-scratch
    /// histogram of `z`. Compiled away in release builds.
    #[cfg(debug_assertions)]
    fn debug_validate_caches(&self) {
        let mut n_by_slot: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut counts_by_slot: std::collections::HashMap<usize, Vec<f64>> =
            std::collections::HashMap::new();
        for (unit, &slot) in self.z.iter().enumerate() {
            *n_by_slot.entry(slot).or_insert(0) += 1;
            counts_by_slot
                .entry(slot)
                .or_insert_with(|| vec![0.0; self.table.len()])[self.table.pattern_of(unit)] += 1.0;
        }
        for (slot, cl) in self.slots.iter() {
            let err = cl.cache_error(self.table);
            debug_assert!(
                err <= 1e-12,
                "stale likelihood cache in slot {slot}: max deviation {err:e}"
            );
            debug_assert_eq!(n_by_slot.get(&slot).copied(), Some(cl.n));
            debug_assert_eq!(counts_by_slot.get(&slot), Some(&cl.pattern_counts));
        }
        debug_assert_eq!(n_by_slot.len(), self.slots.len());
    }

    fn size_weighted_mean_q(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (_, cl) in self.slots.iter() {
            num += cl.n as f64 * cl.q;
            den += cl.n as f64;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

impl Dpmhbp {
    /// Fit and rank, also returning diagnostics (the trait method keeps them
    /// on `self`).
    pub fn fit_rank_detailed(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        class: PipeClass,
        seed: u64,
    ) -> Result<RiskRanking> {
        crate::validate::validate_fit_inputs(dataset, split, class)?;
        let pipes: Vec<&pipefail_network::dataset::Pipe> =
            dataset.pipes_of_class(class).collect();
        if pipes.is_empty() {
            return Err(CoreError::EmptyEvaluationSet("no pipes of requested class"));
        }

        // Segment-level sufficient statistics, exposure-scaled by covariates.
        let seg_stats = dataset.segment_stats(split.train);
        let adjuster = match self.config.covariates {
            Some(mask) => CovariateAdjuster::fit(dataset, split, mask, class)?,
            None => CovariateAdjuster::identity(dataset.segments().len()),
        };
        // Units: all segments of evaluated pipes, in pipe order.
        let mut unit_pipe: Vec<usize> = Vec::new();
        let mut unit_multiplier: Vec<f64> = Vec::new();
        let mut rows: Vec<(f64, f64, f64)> = Vec::new();
        for (pi, pipe) in pipes.iter().enumerate() {
            for &sid in &pipe.segments {
                let st = seg_stats[sid.index()];
                let e = adjuster.multiplier(sid.index());
                rows.push((st.failure_years as f64, st.clean_years() as f64, e));
                unit_pipe.push(pi);
                unit_multiplier.push(crate::hier::quantize_multiplier(e));
            }
        }
        let table = PatternTable::build(rows.into_iter());

        // Empirical hyper mean over units.
        let q0 = self.config.q0.unwrap_or_else(|| {
            let mut s = 0.0;
            let mut m = 0.0;
            for u in 0..table.units() {
                let p = table.pattern(table.pattern_of(u));
                s += p.s;
                m += p.s + p.f;
            }
            ((s + 0.5) / (m + 1.0)).clamp(1e-6, 0.5)
        });

        // Fingerprint ties any checkpoint to this exact (seed, config, data)
        // triple; a stale or foreign checkpoint is silently ignored.
        let fingerprint = {
            let mut fp = Fingerprint::new();
            fp.push_str("dpmhbp").push_u64(seed);
            let s = &self.config.schedule;
            fp.push_usize(s.burn_in).push_usize(s.samples).push_usize(s.thin);
            fp.push_f64(self.config.alpha)
                .push_usize(self.config.sample_alpha as usize)
                .push_f64(self.config.alpha_prior.0)
                .push_f64(self.config.alpha_prior.1)
                .push_f64(q0)
                .push_f64(self.config.c0)
                .push_f64(self.config.c_prior.0)
                .push_f64(self.config.c_prior.1)
                .push_usize(self.config.aux_m)
                .push_str(&format!("{:?}", self.config.covariates))
                .push_usize(table.units())
                .push_usize(table.len());
            for p in table.patterns() {
                fp.push_f64(p.s).push_f64(p.f);
            }
            for u in 0..table.units() {
                fp.push_usize(table.pattern_of(u));
            }
            for (&pi, &m) in unit_pipe.iter().zip(&unit_multiplier) {
                fp.push_usize(pi).push_f64(m);
            }
            fp.finish()
        };

        let mut rng = seeded_rng(seed);
        let mut sampler = Sampler8::new(&table, &self.config, q0, &mut rng)?;

        let sched = self.config.schedule;
        let total = sched.total_iterations();
        let mut rho_t = vec![0.0; table.units()];
        let mut pipe_sum = vec![0.0; pipes.len()];
        let mut pipe_sq = vec![0.0; pipes.len()];
        let mut log_survive_t = vec![0.0; pipes.len()];
        let mut retained = 0usize;
        let mut start_it = 0usize;
        self.diagnostics = DpmhbpDiagnostics::default();

        // Resume a matching checkpoint if one is on disk. All chain state —
        // RNG counters, cluster arena (including free-list order), α,
        // accumulators — is restored bit-for-bit, so the resumed run is
        // indistinguishable from an uninterrupted one.
        if let Some(spec) = &self.config.checkpoint {
            if let Some(state) =
                restore_checkpoint(&spec.path, fingerprint, &table, pipes.len(), total)
            {
                rng = state.rng;
                sampler.slots = state.slots;
                sampler.z = state.z;
                sampler.alpha = state.alpha;
                pipe_sum = state.pipe_sum;
                pipe_sq = state.pipe_sq;
                retained = state.retained;
                start_it = state.next_iteration;
                self.diagnostics = state.diagnostics;
            }
        }

        let mut health = ChainHealth::new(self.config.health);
        for it in start_it..total {
            health.begin_sweep()?;
            sampler.sweep_assignments(&mut rng);
            sampler.sweep_parameters(&mut rng)?;
            #[cfg(debug_assertions)]
            sampler.debug_validate_caches();
            if self.config.sample_alpha {
                sampler.sweep_alpha(self.config.alpha_prior, &mut rng);
            }
            health.observe_monitor(sampler.size_weighted_mean_q())?;
            if sched.keep(it) {
                retained += 1;
                // Pipe-level combination at the current posterior draw:
                // π_i = 1 − Π (1 − ρ̂_l), where each segment's predicted
                // probability re-applies its covariate hazard multiplier
                // (inference scaled the exposure, so ρ is the *base* rate):
                // (1 − ρ̂) = (1 − ρ)^e. Accumulating π per sweep gives the
                // exact Monte Carlo posterior mean plus an uncertainty.
                sampler.current_rho(&mut rho_t);
                log_survive_t.iter_mut().for_each(|v| *v = 0.0);
                for (unit, &pi) in unit_pipe.iter().enumerate() {
                    let rho = rho_t[unit].clamp(0.0, 1.0 - 1e-12);
                    log_survive_t[pi] += unit_multiplier[unit] * (1.0 - rho).ln();
                }
                for (pi, ls) in log_survive_t.iter().enumerate() {
                    let p = 1.0 - ls.exp();
                    pipe_sum[pi] += p;
                    pipe_sq[pi] += p * p;
                }
                self.diagnostics.clusters.push(sampler.slots.len() as f64);
                self.diagnostics.alpha.push(sampler.alpha);
                self.diagnostics.mean_q.push(sampler.size_weighted_mean_q());
            }
            if let Some(spec) = &self.config.checkpoint {
                if (it + 1).is_multiple_of(spec.every.max(1)) && it + 1 < total {
                    save_checkpoint(
                        &spec.path,
                        fingerprint,
                        it + 1,
                        &rng,
                        &sampler,
                        retained,
                        &pipe_sum,
                        &pipe_sq,
                        &self.diagnostics,
                    )?;
                }
            }
        }
        if retained == 0 {
            return Err(CoreError::BadConfig("schedule retained zero samples"));
        }
        // The chain finished: a leftover checkpoint would be stale, so drop it.
        if let Some(spec) = &self.config.checkpoint {
            let _ = std::fs::remove_file(&spec.path);
        }

        let n = retained as f64;
        self.posterior = pipes
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                let mean = pipe_sum[pi] / n;
                let var = (pipe_sq[pi] / n - mean * mean).max(0.0);
                RiskPosterior {
                    pipe: p.id,
                    mean,
                    sd: var.sqrt(),
                }
            })
            .collect();
        let scores = self
            .posterior
            .iter()
            .map(|rp| RiskScore {
                pipe: rp.pipe,
                score: rp.mean,
            })
            .collect();
        RiskRanking::try_new(scores)
    }
}

/// Chain state reconstructed from a checkpoint file.
struct ResumedFit {
    rng: StdRng,
    slots: ClusterSlots,
    z: Vec<usize>,
    alpha: f64,
    retained: usize,
    pipe_sum: Vec<f64>,
    pipe_sq: Vec<f64>,
    diagnostics: DpmhbpDiagnostics,
    next_iteration: usize,
}

/// Serialize the complete chain state after `next_iteration` sweeps.
#[allow(clippy::too_many_arguments)] // flat state snapshot, called from one place
fn save_checkpoint(
    path: &std::path::Path,
    fingerprint: u64,
    next_iteration: usize,
    rng: &StdRng,
    sampler: &Sampler8<'_>,
    retained: usize,
    pipe_sum: &[f64],
    pipe_sq: &[f64],
    diag: &DpmhbpDiagnostics,
) -> Result<()> {
    let mut w = Writer::new(fingerprint);
    w.put_usize("next_iteration", next_iteration);
    w.put_u64_slice("rng", &rng.to_raw_state());
    w.put_f64("alpha", sampler.alpha);
    w.put_usize_slice("z", &sampler.z);
    let (slots, free) = sampler.slots.raw_parts();
    w.put_usize("n_slots", slots.len());
    w.put_usize_slice("free", free);
    let live: Vec<usize> = slots.iter().map(|s| s.is_some() as usize).collect();
    w.put_usize_slice("slot_live", &live);
    let mut qs = Vec::with_capacity(slots.len());
    let mut cs = Vec::with_capacity(slots.len());
    let mut ns = Vec::with_capacity(slots.len());
    let mut counts_flat = Vec::new();
    for s in slots {
        match s {
            Some(c) => {
                qs.push(c.q);
                cs.push(c.c);
                ns.push(c.n);
                counts_flat.extend_from_slice(&c.pattern_counts);
            }
            None => {
                qs.push(0.0);
                cs.push(0.0);
                ns.push(0);
            }
        }
    }
    w.put_f64_slice("slot_q", &qs);
    w.put_f64_slice("slot_c", &cs);
    w.put_usize_slice("slot_n", &ns);
    w.put_f64_slice("pattern_counts", &counts_flat);
    w.put_usize("retained", retained);
    w.put_f64_slice("pipe_sum", pipe_sum);
    w.put_f64_slice("pipe_sq", pipe_sq);
    w.put_f64_slice("diag_clusters", &diag.clusters);
    w.put_f64_slice("diag_alpha", &diag.alpha);
    w.put_f64_slice("diag_mean_q", &diag.mean_q);
    w.save(path)
}

/// Rebuild chain state from `path`, or `None` when the file is absent,
/// corrupt, from a different (seed, config, data), or internally
/// inconsistent — all of which mean "fit from scratch".
fn restore_checkpoint(
    path: &std::path::Path,
    fingerprint: u64,
    table: &PatternTable,
    n_pipes: usize,
    total_iterations: usize,
) -> Option<ResumedFit> {
    let r = Reader::load(path, fingerprint)?;
    let next_iteration = r.usize("next_iteration")?;
    if next_iteration == 0 || next_iteration > total_iterations {
        return None;
    }
    let raw: [u64; 4] = r.u64_slice("rng")?.try_into().ok()?;
    if raw == [0u64; 4] {
        return None; // xoshiro cannot be in the all-zero state
    }
    let rng = StdRng::from_raw_state(raw);
    let alpha = r.f64("alpha")?;
    if !(alpha.is_finite() && alpha > 0.0) {
        return None;
    }
    let z = r.usize_slice("z")?;
    if z.len() != table.units() {
        return None;
    }
    let n_slots = r.usize("n_slots")?;
    let live = r.usize_slice("slot_live")?;
    let qs = r.f64_slice("slot_q")?;
    let cs = r.f64_slice("slot_c")?;
    let ns = r.usize_slice("slot_n")?;
    let counts_flat = r.f64_slice("pattern_counts")?;
    if live.len() != n_slots || qs.len() != n_slots || cs.len() != n_slots || ns.len() != n_slots {
        return None;
    }
    let n_live = live.iter().filter(|&&l| l == 1).count();
    if counts_flat.len() != n_live * table.len() {
        return None;
    }
    let mut slot_vec: Vec<Option<Cluster>> = Vec::with_capacity(n_slots);
    let mut k = 0;
    for i in 0..n_slots {
        if live[i] == 1 {
            if !(qs[i].is_finite() && qs[i] > 0.0 && qs[i] < 1.0 && cs[i].is_finite() && cs[i] > 0.0)
            {
                return None;
            }
            let mut cl = Cluster {
                q: qs[i],
                c: cs[i],
                n: ns[i],
                pattern_counts: counts_flat[k * table.len()..(k + 1) * table.len()].to_vec(),
                loglik: vec![0.0; table.len()],
            };
            cl.refresh_cache(table);
            slot_vec.push(Some(cl));
            k += 1;
        } else {
            slot_vec.push(None);
        }
    }
    let free = r.usize_slice("free")?;
    if free.iter().any(|&f| f >= n_slots || live[f] == 1) {
        return None;
    }
    if z.iter().any(|&s| s >= n_slots || live[s] == 0) {
        return None;
    }
    let pipe_sum = r.f64_slice("pipe_sum")?;
    let pipe_sq = r.f64_slice("pipe_sq")?;
    if pipe_sum.len() != n_pipes || pipe_sq.len() != n_pipes {
        return None;
    }
    Some(ResumedFit {
        rng,
        slots: ClusterSlots::from_raw_parts(slot_vec, free),
        z,
        alpha,
        retained: r.usize("retained")?,
        pipe_sum,
        pipe_sq,
        diagnostics: DpmhbpDiagnostics {
            clusters: r.f64_slice("diag_clusters")?,
            alpha: r.f64_slice("diag_alpha")?,
            mean_q: r.f64_slice("diag_mean_q")?,
        },
        next_iteration,
    })
}

impl FailureModel for Dpmhbp {
    fn name(&self) -> &'static str {
        "DPMHBP"
    }

    fn fit_rank_class(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        class: PipeClass,
        seed: u64,
    ) -> Result<RiskRanking> {
        self.fit_rank_detailed(dataset, split, class, seed)
    }

    fn posterior_summary(&self) -> Vec<crate::snapshot::SummarySection> {
        use crate::snapshot::SummarySection;
        let d = &self.diagnostics;
        let mut clusters = SummarySection::new("clusters")
            .with_field("count_trace", d.clusters.clone())
            .with_field("alpha_trace", d.alpha.clone())
            .with_field("mean_q_trace", d.mean_q.clone());
        if let Some(mean) = self.mean_cluster_count() {
            clusters = clusters.with_scalar("mean_count", mean);
        }
        let pipe_posterior = SummarySection::new("pipe_posterior")
            .with_field("pipe", self.posterior.iter().map(|p| p.pipe.0 as f64).collect())
            .with_field("mean", self.posterior.iter().map(|p| p.mean).collect())
            .with_field("sd", self.posterior.iter().map(|p| p.sd).collect());
        vec![clusters, pipe_posterior]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_synth::WorldConfig;

    fn demo_region() -> Dataset {
        WorldConfig::paper()
            .scaled(0.02)
            .only_region("Region A")
            .build(5)
            .regions()[0]
            .clone()
    }

    #[test]
    fn ranks_all_cwm_pipes_with_probability_scores() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        let ranking = model.fit_rank(&ds, &split, 11).unwrap();
        assert_eq!(
            ranking.len(),
            ds.pipes_of_class(PipeClass::Critical).count()
        );
        for s in ranking.scores() {
            assert!(s.score > 0.0 && s.score < 1.0, "score {}", s.score);
        }
    }

    #[test]
    fn diagnostics_are_recorded() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        model.fit_rank(&ds, &split, 11).unwrap();
        let d = model.diagnostics();
        assert_eq!(d.clusters.len(), DpmhbpConfig::fast().schedule.retained());
        assert!(model.mean_cluster_count().unwrap() >= 1.0);
        assert!(d.alpha.iter().all(|a| *a > 0.0));
    }

    #[test]
    fn discovers_multiple_clusters_on_heterogeneous_data() {
        // The synthetic world has multi-modal cohort hazards; the CRP should
        // open more than one table.
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        model.fit_rank(&ds, &split, 13).unwrap();
        assert!(
            model.mean_cluster_count().unwrap() > 1.2,
            "mean clusters {}",
            model.mean_cluster_count().unwrap()
        );
    }

    #[test]
    fn longer_pipes_of_equal_rate_score_higher() {
        // π_i = 1 − Π(1 − ρ̄) rises with segment count; verify the pipe-level
        // combination respects length.
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        let ranking = model.fit_rank(&ds, &split, 17).unwrap();
        // Compare average score of the longest vs shortest quartile of
        // *clean* pipes (no train failures) — length should matter.
        let failed = ds.pipe_failed_in(split.train);
        let mut clean: Vec<(f64, f64)> = ranking
            .scores()
            .iter()
            .filter(|s| !failed[s.pipe.index()])
            .map(|s| (ds.pipe_length_m(s.pipe), s.score))
            .collect();
        clean.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let quarter = clean.len() / 4;
        if quarter >= 5 {
            let short: f64 =
                clean[..quarter].iter().map(|x| x.1).sum::<f64>() / quarter as f64;
            let long: f64 = clean[clean.len() - quarter..]
                .iter()
                .map(|x| x.1)
                .sum::<f64>()
                / quarter as f64;
            assert!(long > short, "long {long} vs short {short}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let a = Dpmhbp::new(DpmhbpConfig::fast())
            .fit_rank(&ds, &split, 99)
            .unwrap();
        let b = Dpmhbp::new(DpmhbpConfig::fast())
            .fit_rank(&ds, &split, 99)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn posterior_summaries_are_consistent_with_scores() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig::fast());
        let ranking = model.fit_rank(&ds, &split, 23).unwrap();
        let post = model.risk_posterior();
        assert_eq!(post.len(), ranking.len());
        for rp in post {
            assert!(rp.mean > 0.0 && rp.mean < 1.0);
            assert!(rp.sd >= 0.0 && rp.sd < 0.5, "sd {}", rp.sd);
            assert_eq!(ranking.score_of(rp.pipe), Some(rp.mean));
        }
        // MCMC uncertainty should be non-trivial for at least some pipes.
        assert!(post.iter().any(|rp| rp.sd > 1e-6));
    }

    #[test]
    fn interrupted_fit_resumes_to_identical_ranking() {
        // Kill-and-resume determinism: repeatedly run the fit under a tiny
        // wall-clock budget (each attempt times out mid-chain but leaves a
        // checkpoint), then finish with no budget. The final ranking must be
        // bit-identical to an uninterrupted reference run.
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let dir = std::env::temp_dir().join("pipefail_dpmhbp_ckpt_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("fit.ckpt");
        std::fs::remove_file(&ckpt).ok();

        let mut reference_model = Dpmhbp::new(DpmhbpConfig::fast());
        let reference = reference_model.fit_rank(&ds, &split, 41).unwrap();

        let spec = CheckpointSpec::new(&ckpt, 20);
        let mut timeouts = 0usize;
        for _ in 0..300 {
            let mut m = Dpmhbp::new(DpmhbpConfig {
                checkpoint: Some(spec.clone()),
                health: HealthConfig::default().with_budget_secs(0.05),
                ..DpmhbpConfig::fast()
            });
            match m.fit_rank(&ds, &split, 41) {
                Err(CoreError::Chain(pipefail_mcmc::McmcError::Timeout { .. })) => timeouts += 1,
                Ok(_) => break,
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        let mut resumed_model = Dpmhbp::new(DpmhbpConfig {
            checkpoint: Some(spec.clone()),
            ..DpmhbpConfig::fast()
        });
        let resumed = resumed_model.fit_rank(&ds, &split, 41).unwrap();
        assert_eq!(resumed, reference, "resume after {timeouts} interruptions diverged");
        // Diagnostics traces must also be identical, bit for bit.
        let (a, b) = (resumed_model.diagnostics(), reference_model.diagnostics());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.mean_q, b.mean_q);
        assert!(!ckpt.exists(), "checkpoint must be removed after completion");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_foreign_checkpoint_is_ignored() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let dir = std::env::temp_dir().join("pipefail_dpmhbp_ckpt_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("fit.ckpt");

        let reference = Dpmhbp::new(DpmhbpConfig::fast())
            .fit_rank(&ds, &split, 43)
            .unwrap();

        // Corrupt file: not even key=value.
        std::fs::write(&ckpt, "garbage\u{0} bytes \n\n===").unwrap();
        let got = Dpmhbp::new(DpmhbpConfig {
            checkpoint: Some(CheckpointSpec::new(&ckpt, 50)),
            ..DpmhbpConfig::fast()
        })
        .fit_rank(&ds, &split, 43)
        .unwrap();
        assert_eq!(got, reference);

        // Foreign checkpoint: valid format, different fit (other seed).
        let mut other = Dpmhbp::new(DpmhbpConfig {
            checkpoint: Some(CheckpointSpec::new(&ckpt, 20)),
            health: HealthConfig::default().with_budget_secs(0.05),
            ..DpmhbpConfig::fast()
        });
        let _ = other.fit_rank(&ds, &split, 999); // may time out, leaving a checkpoint
        let got = Dpmhbp::new(DpmhbpConfig {
            checkpoint: Some(CheckpointSpec::new(&ckpt, 50)),
            ..DpmhbpConfig::fast()
        })
        .fit_rank(&ds, &split, 43)
        .unwrap();
        assert_eq!(got, reference, "checkpoint from another seed must not be resumed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_cluster_logliks_stay_fresh_across_sweeps() {
        // The incremental-cache contract: after every assignment and
        // parameter sweep, each live cluster's cached likelihood column
        // matches a from-scratch recompute at its current (q, c) to 1e-12,
        // and its membership counts match a from-scratch histogram of z.
        let table = PatternTable::build(
            (0..600)
                .map(|i| {
                    let s = if i % 23 == 0 { 1.0 } else { 0.0 };
                    let e = if i % 5 == 0 { 1.4 } else { 1.0 };
                    (s, 11.0 - s, e)
                }),
        );
        let config = DpmhbpConfig::fast();
        let mut rng = seeded_rng(321);
        let mut s = Sampler8::new(&table, &config, 0.01, &mut rng).unwrap();
        for sweep in 0..60 {
            s.sweep_assignments(&mut rng);
            s.sweep_parameters(&mut rng).unwrap();
            s.sweep_alpha(config.alpha_prior, &mut rng);
            let mut counts_by_slot: std::collections::HashMap<usize, Vec<f64>> =
                std::collections::HashMap::new();
            for (unit, &slot) in s.z.iter().enumerate() {
                counts_by_slot
                    .entry(slot)
                    .or_insert_with(|| vec![0.0; table.len()])[table.pattern_of(unit)] += 1.0;
            }
            for (slot, cl) in s.slots.iter() {
                let err = cl.cache_error(&table);
                assert!(
                    err <= 1e-12,
                    "sweep {sweep}, slot {slot}: cached loglik deviates by {err:e}"
                );
                assert_eq!(
                    counts_by_slot.get(&slot),
                    Some(&cl.pattern_counts),
                    "sweep {sweep}, slot {slot}: stale pattern counts"
                );
            }
        }
    }

    #[test]
    fn covariate_free_variant_runs() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = Dpmhbp::new(DpmhbpConfig {
            covariates: None,
            ..DpmhbpConfig::fast()
        });
        let ranking = model.fit_rank(&ds, &split, 3).unwrap();
        assert!(!ranking.is_empty());
    }
}
