//! The Chinese restaurant process (§18.3.2, Eq. 18.6).
//!
//! The constructive representation of the Dirichlet process used for
//! flexible pipe grouping: customer `l` joins occupied table `r` with
//! probability ∝ `n_r`, or a new table with probability ∝ `α`. This module
//! provides the prior-predictive weights the Gibbs sampler needs, sequential
//! generation (for prior simulation and tests), partition bookkeeping, and
//! the Escobar–West resampling step for `α`.

use pipefail_stats::dist::{Beta as BetaDist, Gamma, Sampler};
use pipefail_stats::special::ln_gamma;
use rand::Rng;

/// CRP seating state: cluster sizes plus total customer count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Seating {
    sizes: Vec<usize>,
    total: usize,
}

impl Seating {
    /// Empty restaurant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cluster sizes (occupied tables only; zero-size tables are removed).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of occupied tables.
    pub fn tables(&self) -> usize {
        self.sizes.len()
    }

    /// Number of seated customers.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Seat a customer at table `t` (may equal `tables()` to open a new
    /// table). Returns the table index.
    pub fn seat(&mut self, t: usize) -> usize {
        assert!(t <= self.sizes.len(), "table index out of range");
        if t == self.sizes.len() {
            self.sizes.push(0);
        }
        self.sizes[t] += 1;
        self.total += 1;
        t
    }

    /// Remove a customer from table `t`; returns `Some(t_removed)` if the
    /// table became empty and was deleted (indices above shift down).
    pub fn unseat(&mut self, t: usize) -> Option<usize> {
        assert!(self.sizes[t] > 0, "unseat from empty table");
        self.sizes[t] -= 1;
        self.total -= 1;
        if self.sizes[t] == 0 {
            self.sizes.remove(t);
            Some(t)
        } else {
            None
        }
    }

    /// Prior log-weights for the next customer: `ln n_r` for each occupied
    /// table followed by `ln α` for a new one (the shared normaliser
    /// `n − 1 + α` cancels in Gibbs sampling and is omitted).
    pub fn log_prior_weights(&self, alpha: f64, out: &mut Vec<f64>) {
        out.clear();
        for &n in &self.sizes {
            out.push((n as f64).ln());
        }
        out.push(alpha.ln());
    }
}

/// Simulate a CRP partition of `n` customers with concentration `alpha`.
/// Returns cluster assignments `z[l]`.
pub fn simulate<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Vec<usize> {
    assert!(alpha > 0.0, "CRP concentration must be positive");
    let mut seating = Seating::new();
    let mut z = Vec::with_capacity(n);
    for l in 0..n {
        let t = if l == 0 {
            0
        } else {
            let u: f64 = rng.gen::<f64>() * (l as f64 + alpha);
            let mut acc = 0.0;
            let mut chosen = seating.tables();
            for (i, &s) in seating.sizes().iter().enumerate() {
                acc += s as f64;
                if u < acc {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        z.push(seating.seat(t));
    }
    z
}

/// Expected number of tables for `n` customers: `α·(ψ(α+n) − ψ(α)) ≈
/// α·ln(1 + n/α)`.
pub fn expected_tables(n: usize, alpha: f64) -> f64 {
    use pipefail_stats::special::digamma;
    alpha * (digamma(alpha + n as f64) - digamma(alpha))
}

/// Log-probability of a partition with cluster sizes `sizes` under CRP(α)
/// (exchangeable partition probability function).
pub fn log_partition_probability(sizes: &[usize], alpha: f64) -> f64 {
    let n: usize = sizes.iter().sum();
    let k = sizes.len();
    let mut lp = k as f64 * alpha.ln() + ln_gamma(alpha) - ln_gamma(alpha + n as f64);
    for &s in sizes {
        lp += ln_gamma(s as f64);
    }
    lp
}

/// One Escobar–West update of the DP concentration `α` under a
/// `Gamma(a, b)` prior (rate parameterisation), given `k` occupied tables
/// and `n` customers.
pub fn resample_alpha<R: Rng + ?Sized>(
    alpha: f64,
    k: usize,
    n: usize,
    prior_shape: f64,
    prior_rate: f64,
    rng: &mut R,
) -> f64 {
    if n == 0 || k == 0 {
        return alpha;
    }
    // Auxiliary eta ~ Beta(alpha + 1, n)
    let eta = BetaDist::new(alpha + 1.0, n as f64)
        .expect("valid")
        .sample(rng);
    // Mixture weight for the "shape + k" component.
    let a = prior_shape;
    let b = prior_rate;
    let odds = (a + k as f64 - 1.0) / (n as f64 * (b - eta.ln()));
    let pi = odds / (1.0 + odds);
    let shape = if rng.gen::<f64>() < pi { a + k as f64 } else { a + k as f64 - 1.0 };
    Gamma::new(shape.max(1e-3), b - eta.ln())
        .expect("positive rate since eta<1")
        .sample(rng)
        .max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn seating_bookkeeping() {
        let mut s = Seating::new();
        assert_eq!(s.seat(0), 0);
        assert_eq!(s.seat(0), 0);
        assert_eq!(s.seat(1), 1);
        assert_eq!(s.sizes(), &[2, 1]);
        assert_eq!(s.total(), 3);
        assert_eq!(s.unseat(0), None);
        assert_eq!(s.unseat(1), Some(1));
        assert_eq!(s.sizes(), &[1]);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn log_weights_shape() {
        let mut s = Seating::new();
        s.seat(0);
        s.seat(0);
        s.seat(1);
        let mut w = Vec::new();
        s.log_prior_weights(0.5, &mut w);
        assert_eq!(w.len(), 3);
        assert!((w[0] - 2.0_f64.ln()).abs() < 1e-12);
        assert!((w[1] - 0.0).abs() < 1e-12);
        assert!((w[2] - 0.5_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn simulate_produces_valid_partition() {
        let mut rng = seeded_rng(130);
        let z = simulate(500, 2.0, &mut rng);
        assert_eq!(z.len(), 500);
        // Assignments are dense: max + 1 == number of distinct clusters.
        let k = z.iter().copied().max().unwrap() + 1;
        let distinct: std::collections::HashSet<_> = z.iter().collect();
        assert_eq!(distinct.len(), k);
    }

    #[test]
    fn table_count_grows_logarithmically() {
        let mut rng = seeded_rng(131);
        let alpha = 3.0;
        let n = 2_000;
        let reps = 40;
        let mut tables = 0.0;
        for _ in 0..reps {
            let z = simulate(n, alpha, &mut rng);
            tables += (z.iter().copied().max().unwrap() + 1) as f64;
        }
        let avg = tables / reps as f64;
        let want = expected_tables(n, alpha);
        assert!(
            (avg - want).abs() < 0.15 * want,
            "avg tables {avg} vs expected {want}"
        );
    }

    #[test]
    fn higher_alpha_means_more_tables() {
        let mut rng = seeded_rng(132);
        let k_small: usize = (0..20)
            .map(|_| *simulate(300, 0.5, &mut rng).iter().max().unwrap() + 1)
            .sum();
        let k_large: usize = (0..20)
            .map(|_| *simulate(300, 10.0, &mut rng).iter().max().unwrap() + 1)
            .sum();
        assert!(k_large > 2 * k_small, "{k_small} vs {k_large}");
    }

    #[test]
    fn partition_probabilities_sum_to_one_for_n3() {
        // All partitions of 3 customers: {3}, {2,1}×3 labelings, {1,1,1}.
        let alpha = 1.7;
        let p3 = log_partition_probability(&[3], alpha).exp();
        let p21 = log_partition_probability(&[2, 1], alpha).exp();
        let p111 = log_partition_probability(&[1, 1, 1], alpha).exp();
        let total = p3 + 3.0 * p21 + p111;
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn alpha_resampling_tracks_table_count() {
        let mut rng = seeded_rng(133);
        // Many tables → alpha should drift upward from a small start.
        let mut alpha = 0.5;
        let mut acc = 0.0;
        let reps = 400;
        for _ in 0..reps {
            alpha = resample_alpha(alpha, 60, 500, 1.0, 1.0, &mut rng);
            acc += alpha;
        }
        let avg = acc / reps as f64;
        assert!(avg > 3.0, "alpha stayed low: {avg}");
        // Few tables → alpha drifts down.
        let mut alpha = 10.0;
        let mut acc = 0.0;
        for _ in 0..reps {
            alpha = resample_alpha(alpha, 2, 500, 1.0, 1.0, &mut rng);
            acc += alpha;
        }
        let avg = acc / reps as f64;
        assert!(avg < 3.0, "alpha stayed high: {avg}");
    }
}
