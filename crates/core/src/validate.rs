//! Shared fit-input validation.
//!
//! Real utility records are dirty: NaN covariates from failed sensor joins,
//! laid years after the observation window (data-entry slips), regions with
//! no recorded failures at all. Every [`crate::model::FailureModel`]
//! implementation calls [`validate_fit_inputs`] before touching the data, so
//! each corruption degrades to one typed [`CoreError`] instead of a panic
//! (or worse, a silently wrong ranking) somewhere deep inside a fit.
//!
//! Referential corruption (orphan failure records, wrong pipe attribution)
//! is rejected earlier, by `Dataset::new` / the CSV reader — by the time a
//! `Dataset` exists, references are sound. This module covers the *value*
//! faults that construction cannot see.

use crate::{CoreError, Result};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::split::TrainTestSplit;

/// Validate `dataset` as training input for ranking pipes of `class`.
///
/// Checks, in order:
/// * at least one pipe of `class` exists (`EmptyEvaluationSet` otherwise);
/// * the dataset records at least one failure (`DataFault`: a zero-failure
///   region gives every model a degenerate likelihood and every ranking an
///   undefined AUC);
/// * every pipe has a finite positive diameter and a laid year no later
///   than the observation window's end (`DataFault`: a pipe laid after the
///   window has negative age throughout, i.e. inconsistent records);
/// * every segment's covariates (intersection distance, tree canopy, soil
///   moisture) and geometry coordinates are finite (`DataFault`).
///
/// The scan is O(pipes + segments) — noise next to any fit.
pub fn validate_fit_inputs(
    dataset: &Dataset,
    _split: &TrainTestSplit,
    class: PipeClass,
) -> Result<()> {
    if dataset.pipes_of_class(class).next().is_none() {
        return Err(CoreError::EmptyEvaluationSet("no pipes of requested class"));
    }
    if dataset.failures().is_empty() {
        return Err(CoreError::DataFault(format!(
            "{}: zero failure records over {:?} — nothing to fit",
            dataset.name(),
            dataset.observation()
        )));
    }
    let obs_end = dataset.observation().end;
    for p in dataset.pipes() {
        if !(p.diameter_mm.is_finite() && p.diameter_mm > 0.0) {
            return Err(CoreError::DataFault(format!(
                "pipe {}: diameter {} is not a positive finite number",
                p.id, p.diameter_mm
            )));
        }
        if p.laid_year > obs_end {
            return Err(CoreError::DataFault(format!(
                "pipe {}: laid year {} is after the observation window end {obs_end} (negative age)",
                p.id, p.laid_year
            )));
        }
    }
    for s in dataset.segments() {
        if !s.dist_to_intersection_m.is_finite()
            || !s.tree_canopy.is_finite()
            || !s.soil_moisture.is_finite()
        {
            return Err(CoreError::DataFault(format!(
                "segment {}: non-finite covariate (dist {}, canopy {}, moisture {})",
                s.id, s.dist_to_intersection_m, s.tree_canopy, s.soil_moisture
            )));
        }
        if s.geometry.points().iter().any(|pt| !pt.x.is_finite() || !pt.y.is_finite()) {
            return Err(CoreError::DataFault(format!(
                "segment {}: non-finite geometry coordinate",
                s.id
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_network::dataset::test_helpers::three_pipe_dataset;
    use pipefail_network::dataset::Dataset;
    use pipefail_network::ids::RegionId;
    use pipefail_network::split::TrainTestSplit;

    fn rebuild(
        ds: &Dataset,
        f: impl FnOnce(
            &mut Vec<pipefail_network::dataset::Pipe>,
            &mut Vec<pipefail_network::dataset::Segment>,
            &mut Vec<pipefail_network::failure::FailureRecord>,
        ),
    ) -> Dataset {
        let mut pipes = ds.pipes().to_vec();
        let mut segments = ds.segments().to_vec();
        let mut failures = ds.failures().to_vec();
        f(&mut pipes, &mut segments, &mut failures);
        Dataset::new(ds.name(), RegionId(0), ds.observation(), pipes, segments, failures)
            .expect("referentially sound")
    }

    #[test]
    fn clean_fixture_passes() {
        let ds = three_pipe_dataset();
        assert!(validate_fit_inputs(&ds, &TrainTestSplit::paper_protocol(), PipeClass::Critical)
            .is_ok());
    }

    #[test]
    fn empty_class_is_typed() {
        let ds = three_pipe_dataset();
        let err = validate_fit_inputs(
            &ds,
            &TrainTestSplit::paper_protocol(),
            PipeClass::Reticulation,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EmptyEvaluationSet(_)));
    }

    #[test]
    fn value_faults_are_typed_data_faults() {
        let split = TrainTestSplit::paper_protocol();
        let base = three_pipe_dataset();
        let nan_diameter = rebuild(&base, |p, _, _| p[0].diameter_mm = f64::NAN);
        let future_pipe = rebuild(&base, |p, _, _| p[1].laid_year = 2050);
        let nan_covariate = rebuild(&base, |_, s, _| s[2].soil_moisture = f64::INFINITY);
        let no_failures = rebuild(&base, |_, _, f| f.clear());
        for (label, ds) in [
            ("nan diameter", nan_diameter),
            ("future laid year", future_pipe),
            ("nan covariate", nan_covariate),
            ("zero failures", no_failures),
        ] {
            let err = validate_fit_inputs(&ds, &split, PipeClass::Critical).unwrap_err();
            assert!(matches!(err, CoreError::DataFault(_)), "{label}: {err}");
        }
    }
}
