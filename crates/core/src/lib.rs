// Library code must surface failures as typed `CoreError`s, never unwrap
// its way into a panic; tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Every public item carries documentation; rustdoc builds warning-clean
// (CI runs `cargo doc` with `-D warnings`).
#![warn(missing_docs)]

//! # pipefail-core
//!
//! The papers' contributions, implemented from scratch:
//!
//! * [`beta_process`] / [`bernoulli_process`] — the Beta–Bernoulli machinery
//!   of §18.3.1: discrete beta processes, conjugate posterior updates
//!   (Eq. 18.4), and the sparse binary failure matrices of Fig. 18.3;
//! * [`crp`] — the Chinese restaurant process (Eq. 18.6), the constructive
//!   Dirichlet-process prior used for flexible pipe grouping;
//! * [`hbp`] — the hierarchical beta process with *fixed expert groupings*
//!   (material / diameter / laid-year), the strongest prior-work baseline
//!   [Li et al., Mach. Learn. 95(1)];
//! * [`dpmhbp`] — the proposed Dirichlet-process mixture of hierarchical
//!   beta processes (Eq. 18.7), fitted by Metropolis-within-Gibbs (Neal's
//!   Algorithm 8 for assignments, slice sampling for group parameters,
//!   Escobar–West for the DP concentration);
//! * [`ranking`] — the rank-based data-mining method of the ICDE'13 paper
//!   (Eq. 18.10): a linear scoring function optimised for AUC, via pairwise
//!   hinge SGD and an evolution-strategy direct optimiser;
//! * [`covariates`] — the multiplicative covariate adjustment ("features are
//!   applied multiplicatively", §18.4.3) shared by the Bayesian models;
//! * [`model`] — the [`model::FailureModel`] trait every predictor
//!   implements, producing a [`model::RiskRanking`] over pipes;
//! * [`snapshot`] — the versioned, checksummed model-snapshot format that
//!   freezes a fitted model (ranking + posterior summary) for the serving
//!   layer (`pipefail-serve`); spec in `docs/SNAPSHOT_FORMAT.md`.

pub mod bernoulli_process;
pub mod beta_process;
pub mod checkpoint;
pub mod covariates;
pub mod crp;
pub mod dpmhbp;
pub mod hbp;
pub mod hier;
pub mod model;
pub mod ranking;
pub mod snapshot;
pub mod validate;

use pipefail_network::NetworkError;
// Re-exported so downstream crates can match on `CoreError::Chain(..)`
// variants without a direct pipefail-mcmc dependency.
pub use pipefail_mcmc::McmcError;

/// Errors from model fitting and the experiment pipeline around it.
///
/// `Clone + PartialEq` are kept so retry policies can compare and store
/// failures; wrapped I/O errors are therefore carried as strings.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration value.
    BadConfig(&'static str),
    /// The dataset lacks what the model needs (e.g. no pipes of the class).
    EmptyEvaluationSet(&'static str),
    /// An optimisation failed to make progress.
    FitFailed(String),
    /// The input data is corrupt in a way fitting cannot tolerate
    /// (non-finite covariates, negative ages, dangling references, …).
    DataFault(String),
    /// An MCMC chain failed (diverged, stuck, non-finite posterior, timeout).
    Chain(McmcError),
    /// A network-dataset error (CSV I/O, referential integrity).
    Network(NetworkError),
    /// An I/O error outside the dataset layer (checkpoints, artefacts).
    Io(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadConfig(s) => write!(f, "bad config: {s}"),
            CoreError::EmptyEvaluationSet(s) => write!(f, "empty evaluation set: {s}"),
            CoreError::FitFailed(s) => write!(f, "fit failed: {s}"),
            CoreError::DataFault(s) => write!(f, "data fault: {s}"),
            CoreError::Chain(e) => write!(f, "chain failure: {e}"),
            CoreError::Network(e) => write!(f, "network dataset error: {e}"),
            CoreError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Chain(e) => Some(e),
            CoreError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<McmcError> for CoreError {
    fn from(e: McmcError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<NetworkError> for CoreError {
    fn from(e: NetworkError) -> Self {
        CoreError::Network(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn question_mark_converts_across_crates() {
        fn chain() -> Result<()> {
            Err(McmcError::BadKernelConfig("w"))?
        }
        fn io() -> Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))?
        }
        fn network() -> Result<()> {
            Err(NetworkError::Invalid("bad row".into()))?
        }
        assert!(matches!(chain(), Err(CoreError::Chain(_))));
        assert!(matches!(io(), Err(CoreError::Io(_))));
        assert!(matches!(network(), Err(CoreError::Network(_))));
    }

    #[test]
    fn source_exposes_the_underlying_error() {
        use std::error::Error;
        let e = CoreError::Chain(McmcError::ChainStuck {
            sweep: 10,
            detail: "flat".into(),
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("chain failure"));
    }
}
