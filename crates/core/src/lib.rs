//! # pipefail-core
//!
//! The papers' contributions, implemented from scratch:
//!
//! * [`beta_process`] / [`bernoulli_process`] — the Beta–Bernoulli machinery
//!   of §18.3.1: discrete beta processes, conjugate posterior updates
//!   (Eq. 18.4), and the sparse binary failure matrices of Fig. 18.3;
//! * [`crp`] — the Chinese restaurant process (Eq. 18.6), the constructive
//!   Dirichlet-process prior used for flexible pipe grouping;
//! * [`hbp`] — the hierarchical beta process with *fixed expert groupings*
//!   (material / diameter / laid-year), the strongest prior-work baseline
//!   [Li et al., Mach. Learn. 95(1)];
//! * [`dpmhbp`] — the proposed Dirichlet-process mixture of hierarchical
//!   beta processes (Eq. 18.7), fitted by Metropolis-within-Gibbs (Neal's
//!   Algorithm 8 for assignments, slice sampling for group parameters,
//!   Escobar–West for the DP concentration);
//! * [`ranking`] — the rank-based data-mining method of the ICDE'13 paper
//!   (Eq. 18.10): a linear scoring function optimised for AUC, via pairwise
//!   hinge SGD and an evolution-strategy direct optimiser;
//! * [`covariates`] — the multiplicative covariate adjustment ("features are
//!   applied multiplicatively", §18.4.3) shared by the Bayesian models;
//! * [`model`] — the [`model::FailureModel`] trait every predictor
//!   implements, producing a [`model::RiskRanking`] over pipes.

pub mod bernoulli_process;
pub mod beta_process;
pub mod covariates;
pub mod crp;
pub mod dpmhbp;
pub mod hbp;
pub mod hier;
pub mod model;
pub mod ranking;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration value.
    BadConfig(&'static str),
    /// The dataset lacks what the model needs (e.g. no pipes of the class).
    EmptyEvaluationSet(&'static str),
    /// An optimisation failed to make progress.
    FitFailed(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadConfig(s) => write!(f, "bad config: {s}"),
            CoreError::EmptyEvaluationSet(s) => write!(f, "empty evaluation set: {s}"),
            CoreError::FitFailed(s) => write!(f, "fit failed: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
