//! The rank-based data-mining method (Wang et al., ICDE 2013; Eq. 18.10).
//!
//! Failure prediction as a *ranking* problem: learn a real-valued scoring
//! function `H(z) = wᵀz` maximising
//!
//! `Σ_{z∈P, z'∈N} I(H(z) > H(z')) / (|P|·|N|)`
//!
//! — the AUC of failed (`P`) vs non-failed (`N`) pipes — without estimating
//! failure probabilities at all. Two optimisers are provided:
//!
//! * [`Optimizer::PairwiseHinge`] — stochastic gradient descent on the
//!   pairwise hinge surrogate (the RankSVM relaxation with a linear kernel,
//!   the form §18.4.3 compares against);
//! * [`Optimizer::EvolutionStrategy`] — a (μ+λ) evolution strategy that
//!   optimises the exact, non-differentiable AUC objective directly, matching
//!   the ICDE paper's data-mining treatment of Eq. 18.10.

use crate::model::{FailureModel, RiskRanking, RiskScore};
use crate::{CoreError, Result};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::features::{FeatureEncoder, FeatureMask};
use pipefail_network::split::TrainTestSplit;
use pipefail_stats::descriptive::ranks;
use pipefail_stats::dist::Normal;
use pipefail_stats::rng::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// Which optimiser drives the ranking objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimizer {
    /// SGD on the pairwise hinge surrogate (RankSVM, linear kernel).
    PairwiseHinge,
    /// (μ+λ) evolution strategy on the exact AUC (Eq. 18.10).
    EvolutionStrategy,
}

/// RankSVM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSvmConfig {
    /// Optimiser choice.
    pub optimizer: Optimizer,
    /// Feature groups to use.
    pub features: FeatureMask,
    /// SGD epochs (pairwise hinge) or ES generations.
    pub iterations: usize,
    /// Sampled pairs per epoch (hinge) or offspring per generation (ES).
    pub batch: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for RankSvmConfig {
    fn default() -> Self {
        Self {
            optimizer: Optimizer::PairwiseHinge,
            features: FeatureMask::water_mains(),
            iterations: 60,
            batch: 4_000,
            learning_rate: 0.05,
            l2: 1e-4,
        }
    }
}

impl RankSvmConfig {
    /// Reduced effort for tests and demos.
    pub fn fast() -> Self {
        Self {
            iterations: 20,
            batch: 1_000,
            ..Self::default()
        }
    }

    /// The ICDE-faithful variant: direct AUC optimisation.
    pub fn evolution() -> Self {
        Self {
            optimizer: Optimizer::EvolutionStrategy,
            iterations: 80,
            batch: 24,
            ..Self::default()
        }
    }
}

/// The rank-based failure predictor.
#[derive(Debug, Clone)]
pub struct RankSvm {
    config: RankSvmConfig,
    weights: Vec<f64>,
}

impl RankSvm {
    /// Create with a configuration.
    pub fn new(config: RankSvmConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
        }
    }

    /// The learned weight vector of the most recent fit.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn fit_hinge(
        x: &[Vec<f64>],
        pos: &[usize],
        neg: &[usize],
        cfg: &RankSvmConfig,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let d = x[0].len();
        let mut w = vec![0.0; d];
        let mut avg = vec![0.0; d];
        let mut steps = 0.0;
        for epoch in 0..cfg.iterations {
            let lr = cfg.learning_rate / (1.0 + epoch as f64 * 0.1);
            for _ in 0..cfg.batch {
                let p = &x[pos[rng.gen_range(0..pos.len())]];
                let n = &x[neg[rng.gen_range(0..neg.len())]];
                let margin: f64 = w
                    .iter()
                    .zip(p.iter().zip(n))
                    .map(|(wi, (pi, ni))| wi * (pi - ni))
                    .sum();
                if margin < 1.0 {
                    for ((wi, pi), ni) in w.iter_mut().zip(p).zip(n) {
                        *wi += lr * (pi - ni);
                    }
                }
                for wi in w.iter_mut() {
                    *wi *= 1.0 - lr * cfg.l2;
                }
                steps += 1.0;
                for (a, wi) in avg.iter_mut().zip(&w) {
                    *a += (wi - *a) / steps;
                }
            }
        }
        avg
    }

    fn fit_es(
        x: &[Vec<f64>],
        pos: &[usize],
        neg: &[usize],
        cfg: &RankSvmConfig,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let d = x[0].len();
        // Start from the class-mean difference direction — a sensible
        // initial ranking direction.
        let mut w: Vec<f64> = (0..d)
            .map(|j| {
                let mp: f64 = pos.iter().map(|&i| x[i][j]).sum::<f64>() / pos.len() as f64;
                let mn: f64 = neg.iter().map(|&i| x[i][j]).sum::<f64>() / neg.len() as f64;
                mp - mn
            })
            .collect();
        let mut best_auc = training_auc(x, pos, neg, &w);
        let mut sigma = 0.5;
        for _ in 0..cfg.iterations {
            let mut improved = false;
            for _ in 0..cfg.batch {
                let cand: Vec<f64> = w
                    .iter()
                    .map(|wi| wi + sigma * Normal::sample_standard(rng))
                    .collect();
                let auc = training_auc(x, pos, neg, &cand);
                if auc > best_auc {
                    best_auc = auc;
                    w = cand;
                    improved = true;
                }
            }
            // 1/5th-style success rule on the generation level.
            sigma *= if improved { 1.1 } else { 0.8 };
            if sigma < 1e-4 {
                break;
            }
        }
        w
    }
}

/// Exact AUC of scores `wᵀx` for positives vs negatives, ties counted half
/// (the Mann–Whitney estimator of Eq. 18.10's objective).
pub fn training_auc(x: &[Vec<f64>], pos: &[usize], neg: &[usize], w: &[f64]) -> f64 {
    let score = |i: usize| -> f64 { w.iter().zip(&x[i]).map(|(a, b)| a * b).sum() };
    let mut all: Vec<f64> = Vec::with_capacity(pos.len() + neg.len());
    for &i in pos {
        all.push(score(i));
    }
    for &i in neg {
        all.push(score(i));
    }
    let r = ranks(&all).expect("non-empty");
    let pos_rank_sum: f64 = r[..pos.len()].iter().sum();
    let np = pos.len() as f64;
    let nn = neg.len() as f64;
    (pos_rank_sum - np * (np + 1.0) / 2.0) / (np * nn)
}

impl FailureModel for RankSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn posterior_summary(&self) -> Vec<crate::snapshot::SummarySection> {
        vec![crate::snapshot::SummarySection::new("coefficients")
            .with_field("weights", self.weights.clone())]
    }

    fn fit_rank_class(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        class: PipeClass,
        seed: u64,
    ) -> Result<RiskRanking> {
        crate::validate::validate_fit_inputs(dataset, split, class)?;
        let pipes: Vec<&pipefail_network::dataset::Pipe> =
            dataset.pipes_of_class(class).collect();
        if pipes.is_empty() {
            return Err(CoreError::EmptyEvaluationSet("no pipes of requested class"));
        }
        let encoder = FeatureEncoder::fit(dataset, self.config.features, split.prediction_year());
        let x: Vec<Vec<f64>> = pipes.iter().map(|p| encoder.encode_pipe(dataset, p)).collect();
        let failed = dataset.pipe_failed_in(split.train);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (i, p) in pipes.iter().enumerate() {
            if failed[p.id.index()] {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        if pos.is_empty() || neg.is_empty() {
            return Err(CoreError::FitFailed(
                "ranking needs both failed and non-failed training pipes".into(),
            ));
        }
        let mut rng = seeded_rng(seed);
        let w = match self.config.optimizer {
            Optimizer::PairwiseHinge => Self::fit_hinge(&x, &pos, &neg, &self.config, &mut rng),
            Optimizer::EvolutionStrategy => Self::fit_es(&x, &pos, &neg, &self.config, &mut rng),
        };
        self.weights = w;
        let scores = pipes
            .iter()
            .zip(&x)
            .map(|(p, xi)| RiskScore {
                pipe: p.id,
                score: self.weights.iter().zip(xi).map(|(a, b)| a * b).sum(),
            })
            .collect();
        RiskRanking::try_new(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_synth::WorldConfig;

    fn demo_region() -> Dataset {
        WorldConfig::paper()
            .scaled(0.02)
            .only_region("Region A")
            .build(5)
            .regions()[0]
            .clone()
    }

    #[test]
    fn training_auc_perfect_and_random() {
        // One feature that perfectly separates: AUC 1; constant: 0.5.
        let x = vec![vec![1.0], vec![2.0], vec![-1.0], vec![-2.0]];
        let pos = [0, 1];
        let neg = [2, 3];
        assert!((training_auc(&x, &pos, &neg, &[1.0]) - 1.0).abs() < 1e-12);
        assert!((training_auc(&x, &pos, &neg, &[-1.0]) - 0.0).abs() < 1e-12);
        assert!((training_auc(&x, &pos, &neg, &[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hinge_learns_separable_data() {
        let mut rng = seeded_rng(150);
        // Positives shifted +2 along feature 0.
        let mut x = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..200 {
            let shift = if i < 60 { 2.0 } else { 0.0 };
            x.push(vec![
                shift + Normal::sample_standard(&mut rng) * 0.5,
                Normal::sample_standard(&mut rng),
            ]);
            if i < 60 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        let w = RankSvm::fit_hinge(&x, &pos, &neg, &RankSvmConfig::fast(), &mut rng);
        let auc = training_auc(&x, &pos, &neg, &w);
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn es_improves_over_random_start() {
        let mut rng = seeded_rng(151);
        let mut x = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..150 {
            let shift = if i < 40 { 1.0 } else { 0.0 };
            x.push(vec![
                shift + Normal::sample_standard(&mut rng),
                Normal::sample_standard(&mut rng),
            ]);
            if i < 40 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        let cfg = RankSvmConfig {
            optimizer: Optimizer::EvolutionStrategy,
            iterations: 30,
            batch: 16,
            ..RankSvmConfig::fast()
        };
        let w = RankSvm::fit_es(&x, &pos, &neg, &cfg, &mut rng);
        let auc = training_auc(&x, &pos, &neg, &w);
        assert!(auc > 0.65, "auc {auc}");
    }

    #[test]
    fn ranks_cwm_pipes_end_to_end() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let mut model = RankSvm::new(RankSvmConfig::fast());
        let ranking = model.fit_rank(&ds, &split, 8).unwrap();
        assert_eq!(ranking.len(), ds.pipes_of_class(PipeClass::Critical).count());
        assert!(!model.weights().is_empty());
        // Training separation should be well above chance.
        let failed = ds.pipe_failed_in(split.train);
        let in_order: Vec<bool> = ranking
            .pipes_in_order()
            .map(|p| failed[p.index()])
            .collect();
        let n_pos = in_order.iter().filter(|&&b| b).count();
        if n_pos >= 3 {
            // Mean rank of positives should be in the top half.
            let mean_rank: f64 = in_order
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as f64)
                .sum::<f64>()
                / n_pos as f64;
            assert!(
                mean_rank < in_order.len() as f64 / 2.0,
                "positives not ranked early: mean rank {mean_rank} of {}",
                in_order.len()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = demo_region();
        let split = TrainTestSplit::paper_protocol();
        let a = RankSvm::new(RankSvmConfig::fast()).fit_rank(&ds, &split, 4).unwrap();
        let b = RankSvm::new(RankSvmConfig::fast()).fit_rank(&ds, &split, 4).unwrap();
        assert_eq!(a, b);
    }
}
