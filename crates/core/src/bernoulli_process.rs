//! The Bernoulli process and the sparse binary failure matrix (§18.3.1.2,
//! Fig. 18.3).
//!
//! A draw `X_j ~ BeP(H)` activates atom `i` with probability `πᵢ`; stacking
//! draws column-wise gives the binary matrix whose rows are pipes (or
//! segments) and columns are observation years. Inference never materialises
//! the matrix — it only needs row sums — but the figure drivers and the
//! generative checks do, so a compact sparse representation lives here.

use pipefail_stats::dist::Bernoulli;
use rand::Rng;

/// A sparse binary matrix stored as per-column active-row lists; rows are
/// atoms (pipes/segments), columns are draws (years).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMatrix {
    rows: usize,
    columns: Vec<Vec<u32>>,
}

impl BinaryMatrix {
    /// Create an empty matrix with `rows` rows.
    pub fn new(rows: usize) -> Self {
        Self {
            rows,
            columns: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (draws).
    pub fn cols(&self) -> usize {
        self.columns.len()
    }

    /// Append a column given its active row indices (sorted, deduped).
    pub fn push_column(&mut self, mut active: Vec<u32>) {
        active.sort_unstable();
        active.dedup();
        active.retain(|&r| (r as usize) < self.rows);
        self.columns.push(active);
    }

    /// Entry lookup.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.columns
            .get(col)
            .is_some_and(|c| c.binary_search(&(row as u32)).is_ok())
    }

    /// Row sums — the sufficient statistic for beta-process posteriors.
    pub fn row_sums(&self) -> Vec<u64> {
        let mut sums = vec![0u64; self.rows];
        for col in &self.columns {
            for &r in col {
                sums[r as usize] += 1;
            }
        }
        sums
    }

    /// Total number of ones.
    pub fn ones(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// Density (fraction of ones); the pipe matrices are ≪ 1%.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.ones() as f64 / cells as f64
        }
    }

    /// Render an ASCII picture (`#` = 1, `·` = 0) capped to `max_rows` rows —
    /// the Fig. 18.3 illustration.
    pub fn ascii(&self, max_rows: usize) -> String {
        let mut out = String::new();
        for r in 0..self.rows.min(max_rows) {
            for c in 0..self.cols() {
                out.push(if self.get(r, c) { '#' } else { '\u{b7}' });
            }
            out.push('\n');
        }
        out
    }
}

/// Draw `n_draws` Bernoulli-process columns given atom weights `pi`.
pub fn sample_matrix<R: Rng + ?Sized>(pi: &[f64], n_draws: usize, rng: &mut R) -> BinaryMatrix {
    let mut m = BinaryMatrix::new(pi.len());
    let dists: Vec<Bernoulli> = pi
        .iter()
        .map(|&p| Bernoulli::new(p.clamp(0.0, 1.0)).expect("clamped"))
        .collect();
    for _ in 0..n_draws {
        let active: Vec<u32> = dists
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.sample_bool(rng).then_some(i as u32))
            .collect();
        m.push_column(active);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn construction_and_lookup() {
        let mut m = BinaryMatrix::new(4);
        m.push_column(vec![0, 2]);
        m.push_column(vec![3, 3, 1]); // dup collapses
        m.push_column(vec![]);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 3);
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert!(m.get(1, 1));
        assert!(m.get(3, 1));
        assert!(!m.get(0, 2));
        assert_eq!(m.ones(), 4);
        assert_eq!(m.row_sums(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn out_of_range_rows_dropped() {
        let mut m = BinaryMatrix::new(2);
        m.push_column(vec![0, 5]);
        assert_eq!(m.ones(), 1);
    }

    #[test]
    fn sampled_matrix_matches_rates() {
        let mut rng = seeded_rng(122);
        let pi = vec![0.0, 0.5, 1.0];
        let m = sample_matrix(&pi, 2_000, &mut rng);
        let sums = m.row_sums();
        assert_eq!(sums[0], 0);
        assert_eq!(sums[2], 2_000);
        let mid = sums[1] as f64 / 2_000.0;
        assert!((mid - 0.5).abs() < 0.05, "{mid}");
    }

    #[test]
    fn sparse_regime_density() {
        let mut rng = seeded_rng(123);
        let pi = vec![0.01; 500];
        let m = sample_matrix(&pi, 12, &mut rng);
        assert!(m.density() < 0.05, "density {}", m.density());
    }

    #[test]
    fn ascii_rendering() {
        let mut m = BinaryMatrix::new(2);
        m.push_column(vec![0]);
        m.push_column(vec![1]);
        let art = m.ascii(10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('#'));
        assert!(lines[1].ends_with('#'));
    }
}
