//! Multiplicative covariate adjustment (§18.4.3: "the features are applied
//! multiplicatively similar to the Cox proportional hazards model").
//!
//! The chapter states the mechanism only by analogy, so the concrete design
//! is documented here (and in DESIGN.md): a Poisson regression with exposure
//! offset is fitted to the training-window segment statistics,
//!
//! `s_l ~ Poisson(E_l · exp(β₀ + βᵀ x_l))`,
//!
//! and each segment's *relative* hazard multiplier `exp(βᵀ x_l)` (intercept
//! excluded, clamped to a safe range) scales its exposure inside the
//! beta-process models. With β = 0 the models reduce exactly to the
//! covariate-free HBP/DPMHBP. The same regression machinery powers the
//! Weibull NHPP baseline.

use crate::{CoreError, Result};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::features::{FeatureEncoder, FeatureMask};
use pipefail_network::split::TrainTestSplit;

/// Fitted Poisson regression with log link and exposure offset.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonRegression {
    /// Intercept β₀.
    pub intercept: f64,
    /// Coefficients β (same order as the feature encoder's schema).
    pub coefficients: Vec<f64>,
}

impl PoissonRegression {
    /// Fit by Newton–Raphson (IRLS) with an L2 ridge on the coefficients
    /// (not the intercept). `counts[i]` events over `exposure[i]` units with
    /// features `x[i]`.
    pub fn fit(
        x: &[Vec<f64>],
        counts: &[f64],
        exposure: &[f64],
        l2: f64,
        max_iter: usize,
    ) -> Result<Self> {
        let n = x.len();
        if n == 0 || counts.len() != n || exposure.len() != n {
            return Err(CoreError::BadConfig("poisson fit needs aligned, non-empty inputs"));
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(CoreError::BadConfig("ragged feature matrix"));
        }
        // Parameters: [intercept, beta...]; design column 0 is the constant.
        let p = d + 1;
        let mut theta = vec![0.0; p];
        // Sensible intercept start: log of the aggregate rate.
        let total_events: f64 = counts.iter().sum();
        let total_exposure: f64 = exposure.iter().filter(|e| **e > 0.0).sum();
        theta[0] = ((total_events + 0.5) / (total_exposure + 1.0)).ln();

        let mut grad = vec![0.0; p];
        let mut hess = vec![0.0; p * p];
        for _ in 0..max_iter {
            grad.iter_mut().for_each(|g| *g = 0.0);
            hess.iter_mut().for_each(|h| *h = 0.0);
            for i in 0..n {
                if exposure[i] <= 0.0 {
                    continue;
                }
                let mut eta = theta[0];
                for (j, &xij) in x[i].iter().enumerate() {
                    eta += theta[j + 1] * xij;
                }
                // Cap the linear predictor to keep mu finite on bad steps.
                let mu = exposure[i] * eta.clamp(-30.0, 30.0).exp();
                let resid = counts[i] - mu;
                grad[0] += resid;
                for (j, &xij) in x[i].iter().enumerate() {
                    grad[j + 1] += resid * xij;
                }
                // Hessian of the negative log-likelihood is X' diag(mu) X.
                hess[0] += mu;
                for (j, &xij) in x[i].iter().enumerate() {
                    hess[j + 1] += mu * xij; // column 0 row j+1 mirrored below
                    hess[(j + 1) * p] += 0.0; // filled by symmetry after loop
                }
                for j in 0..d {
                    for k in j..d {
                        hess[(j + 1) * p + (k + 1)] += mu * x[i][j] * x[i][k];
                    }
                }
            }
            // Symmetrise and add the ridge.
            for j in 1..p {
                hess[j * p] = hess[j];
                grad[j] -= l2 * theta[j];
                hess[j * p + j] += l2;
            }
            for j in 0..p {
                for k in 0..j {
                    hess[j * p + k] = hess[k * p + j];
                }
            }
            let step = solve_spd(&mut hess.clone(), &grad, p)
                .ok_or_else(|| CoreError::FitFailed("singular Poisson Hessian".into()))?;
            let mut max_step = 0.0_f64;
            for (t, s) in theta.iter_mut().zip(&step) {
                *t += s;
                max_step = max_step.max(s.abs());
            }
            if max_step < 1e-9 {
                break;
            }
        }
        Ok(Self {
            intercept: theta[0],
            coefficients: theta[1..].to_vec(),
        })
    }

    /// Linear predictor including the intercept.
    pub fn linear_predictor(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(b, v)| b * v)
                .sum::<f64>()
    }

    /// Relative hazard multiplier `exp(βᵀx)` (intercept excluded), clamped
    /// to `[e⁻³, e³]` so one segment can never dominate the likelihood.
    pub fn multiplier(&self, x: &[f64]) -> f64 {
        let eta: f64 = self
            .coefficients
            .iter()
            .zip(x)
            .map(|(b, v)| b * v)
            .sum();
        eta.clamp(-3.0, 3.0).exp()
    }
}

/// Solve the symmetric positive-definite system `A s = g` by Cholesky;
/// `a` is row-major `p × p` and is destroyed. Returns `None` when `A` is not
/// positive definite.
fn solve_spd(a: &mut [f64], g: &[f64], p: usize) -> Option<Vec<f64>> {
    // Cholesky: A = L Lᵀ, stored in the lower triangle of `a`.
    for j in 0..p {
        let mut diag = a[j * p + j];
        for k in 0..j {
            diag -= a[j * p + k] * a[j * p + k];
        }
        if diag <= 0.0 {
            return None;
        }
        let diag = diag.sqrt();
        a[j * p + j] = diag;
        for i in (j + 1)..p {
            let mut v = a[i * p + j];
            for k in 0..j {
                v -= a[i * p + k] * a[j * p + k];
            }
            a[i * p + j] = v / diag;
        }
    }
    // Forward solve L y = g.
    let mut y = vec![0.0; p];
    for i in 0..p {
        let mut v = g[i];
        for k in 0..i {
            v -= a[i * p + k] * y[k];
        }
        y[i] = v / a[i * p + i];
    }
    // Backward solve Lᵀ s = y.
    let mut s = vec![0.0; p];
    for i in (0..p).rev() {
        let mut v = y[i];
        for k in (i + 1)..p {
            v -= a[k * p + i] * s[k];
        }
        s[i] = v / a[i * p + i];
    }
    Some(s)
}

/// Per-segment hazard multipliers fitted on a dataset's training window.
#[derive(Debug, Clone)]
pub struct CovariateAdjuster {
    multipliers: Vec<f64>,
    regression: PoissonRegression,
}

impl CovariateAdjuster {
    /// Fit multipliers for every segment of `dataset` whose pipe is of
    /// `class`, using training-window failure counts. Segments outside the
    /// class get multiplier 1.
    pub fn fit(
        dataset: &Dataset,
        split: &TrainTestSplit,
        mask: FeatureMask,
        class: PipeClass,
    ) -> Result<Self> {
        let encoder = FeatureEncoder::fit(dataset, mask, split.prediction_year());
        let stats = dataset.segment_stats(split.train);
        let mut xs = Vec::new();
        let mut counts = Vec::new();
        let mut exposure = Vec::new();
        let mut in_class = Vec::new();
        for seg in dataset.segments() {
            let keep = dataset.pipe(seg.pipe).class() == class;
            in_class.push(keep);
            if keep {
                xs.push(encoder.encode_segment(dataset, seg));
                let st = stats[seg.id.index()];
                counts.push(st.failure_years as f64);
                exposure.push(st.exposure_years as f64);
            }
        }
        if xs.is_empty() {
            return Err(CoreError::EmptyEvaluationSet("no segments of the requested class"));
        }
        let regression = PoissonRegression::fit(&xs, &counts, &exposure, 1.0, 25)?;
        let mut multipliers = vec![1.0; dataset.segments().len()];
        let mut xi = 0;
        for (seg, keep) in dataset.segments().iter().zip(&in_class) {
            if *keep {
                multipliers[seg.id.index()] = regression.multiplier(&xs[xi]);
                xi += 1;
            }
        }
        Ok(Self {
            multipliers,
            regression,
        })
    }

    /// A no-op adjuster (all multipliers 1) for `n` segments.
    pub fn identity(n: usize) -> Self {
        Self {
            multipliers: vec![1.0; n],
            regression: PoissonRegression {
                intercept: 0.0,
                coefficients: Vec::new(),
            },
        }
    }

    /// Multiplier for segment `i`.
    pub fn multiplier(&self, segment_index: usize) -> f64 {
        self.multipliers.get(segment_index).copied().unwrap_or(1.0)
    }

    /// The fitted regression (for inspection/ablation reports).
    pub fn regression(&self) -> &PoissonRegression {
        &self.regression
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_stats::dist::{Poisson, Sampler};
    use pipefail_stats::rng::seeded_rng;

    #[test]
    fn recovers_known_coefficients() {
        let mut rng = seeded_rng(140);
        // True model: rate = exp(-3 + 1.2 x1 - 0.7 x2), exposure varies.
        let n = 4_000;
        let mut xs = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut exposure = Vec::with_capacity(n);
        for _ in 0..n {
            let x1: f64 = rand::Rng::gen_range(&mut rng, -1.0..1.0);
            let x2: f64 = rand::Rng::gen_range(&mut rng, -1.0..1.0);
            let e: f64 = rand::Rng::gen_range(&mut rng, 5.0..15.0);
            let mu = e * (-3.0 + 1.2 * x1 - 0.7 * x2_scale(x2)).exp();
            let y = Poisson::new(mu.max(1e-12)).unwrap().sample(&mut rng) as f64;
            xs.push(vec![x1, x2_scale(x2)]);
            counts.push(y);
            exposure.push(e);
        }
        let fit = PoissonRegression::fit(&xs, &counts, &exposure, 1e-6, 50).unwrap();
        assert!((fit.intercept - (-3.0)).abs() < 0.15, "intercept {}", fit.intercept);
        assert!((fit.coefficients[0] - 1.2).abs() < 0.15, "{:?}", fit.coefficients);
        assert!((fit.coefficients[1] + 0.7).abs() < 0.15, "{:?}", fit.coefficients);
    }

    fn x2_scale(x: f64) -> f64 {
        x
    }

    #[test]
    fn multiplier_is_relative_and_clamped() {
        let r = PoissonRegression {
            intercept: -5.0,
            coefficients: vec![10.0],
        };
        // Intercept must not affect the multiplier; clamping caps at e³.
        assert!((r.multiplier(&[0.0]) - 1.0).abs() < 1e-12);
        assert!((r.multiplier(&[1.0]) - 3.0_f64.exp()).abs() < 1e-9);
        assert!((r.multiplier(&[-1.0]) - (-3.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(PoissonRegression::fit(&[], &[], &[], 1.0, 10).is_err());
        let xs = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(PoissonRegression::fit(&xs, &[1.0, 1.0], &[1.0, 1.0], 1.0, 10).is_err());
    }

    #[test]
    fn identity_adjuster() {
        let a = CovariateAdjuster::identity(3);
        assert_eq!(a.multiplier(0), 1.0);
        assert_eq!(a.multiplier(2), 1.0);
        assert_eq!(a.multiplier(99), 1.0);
    }

    #[test]
    fn zero_exposure_rows_are_ignored() {
        // Rows with zero exposure must not poison the fit.
        let xs = vec![vec![0.0], vec![1.0], vec![0.0], vec![1.0]];
        let counts = vec![1.0, 3.0, 0.0, 2.0];
        let exposure = vec![10.0, 10.0, 0.0, 10.0];
        let fit = PoissonRegression::fit(&xs, &counts, &exposure, 0.1, 30).unwrap();
        assert!(fit.coefficients[0].is_finite());
    }
}
