//! The model interface: every predictor ranks pipes by failure risk.
//!
//! The paper's evaluation protocol is a *prioritisation*: rank the critical
//! water mains, inspect from the top, count detected failures. All five
//! compared methods — DPMHBP, HBP, Cox, Weibull, the SVM-style ranker — are
//! therefore unified behind one trait that takes a dataset plus a temporal
//! split and produces a [`RiskRanking`].

use crate::snapshot::SummarySection;
use crate::{CoreError, Result};
use pipefail_network::attributes::PipeClass;
use pipefail_network::dataset::Dataset;
use pipefail_network::ids::PipeId;
use pipefail_network::split::TrainTestSplit;

/// One pipe's risk score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskScore {
    /// The scored pipe.
    pub pipe: PipeId,
    /// Higher = more likely to fail in the test window. Scores are only
    /// required to be ordinal; probabilities are welcome but not required
    /// (the ranking method produces raw scores).
    pub score: f64,
}

/// A ranking of pipes by predicted failure risk (descending).
#[derive(Debug, Clone, PartialEq)]
pub struct RiskRanking {
    scores: Vec<RiskScore>,
}

impl RiskRanking {
    /// Build from unordered scores; sorts descending (stable: ties keep
    /// their input order so results are reproducible).
    ///
    /// Never panics: `total_cmp` gives NaN a deterministic position (after
    /// +∞, so a poisoned score sorts *first* in the descending ranking and
    /// is visible rather than hidden). Fit paths should prefer
    /// [`RiskRanking::try_new`], which rejects non-finite scores with a
    /// typed error.
    pub fn new(mut scores: Vec<RiskScore>) -> Self {
        scores.sort_by(|a, b| b.score.total_cmp(&a.score));
        Self { scores }
    }

    /// Build from unordered scores, returning `CoreError::FitFailed` when
    /// any score is non-finite — the typed-error path for model fits, so a
    /// numerically poisoned fit degrades to a reportable failure instead of
    /// silently ranking NaN pipes first.
    pub fn try_new(scores: Vec<RiskScore>) -> Result<Self> {
        if let Some(bad) = scores.iter().find(|s| !s.score.is_finite()) {
            return Err(CoreError::FitFailed(format!(
                "non-finite risk score {} for pipe {}",
                bad.score, bad.pipe
            )));
        }
        Ok(Self::new(scores))
    }

    /// Scores in descending order.
    pub fn scores(&self) -> &[RiskScore] {
        &self.scores
    }

    /// Pipes from most to least risky.
    pub fn pipes_in_order(&self) -> impl Iterator<Item = PipeId> + '_ {
        self.scores.iter().map(|s| s.pipe)
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when nothing was ranked.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Score of a specific pipe, if ranked.
    pub fn score_of(&self, pipe: PipeId) -> Option<f64> {
        self.scores.iter().find(|s| s.pipe == pipe).map(|s| s.score)
    }

    /// The top `frac` (by count) of pipes, e.g. `top_fraction(0.1)` for the
    /// risk map's red decile.
    pub fn top_fraction(&self, frac: f64) -> &[RiskScore] {
        let n = ((self.scores.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
        &self.scores[..n.min(self.scores.len())]
    }
}

/// A pipe-failure prediction model.
///
/// # Examples
///
/// Fit the rank-based learner on a tiny synthetic region and rank its
/// critical mains (every model — DPMHBP, HBP, Cox, Weibull, the time
/// baselines — goes through this same trait):
///
/// ```
/// use pipefail_core::model::FailureModel;
/// use pipefail_core::ranking::{RankSvm, RankSvmConfig};
/// use pipefail_network::split::TrainTestSplit;
/// use pipefail_synth::WorldConfig;
///
/// let world = WorldConfig::demo().build(7);
/// let region = &world.regions()[0];
/// let split = TrainTestSplit::paper_protocol();
/// let mut model = RankSvm::new(RankSvmConfig::fast());
/// let ranking = model.fit_rank(region, &split, 7).unwrap();
/// assert!(!ranking.is_empty());
/// // Scores come back descending: the riskiest pipe is first.
/// let scores = ranking.scores();
/// assert!(scores.windows(2).all(|w| w[0].score >= w[1].score));
/// ```
pub trait FailureModel {
    /// Short display name used in result tables ("DPMHBP", "Cox", …).
    fn name(&self) -> &'static str;

    /// Train on `split.train` failures of `dataset` and rank all pipes of
    /// `class` by predicted risk in the test window. `seed` makes stochastic
    /// fits reproducible.
    fn fit_rank_class(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        class: PipeClass,
        seed: u64,
    ) -> Result<RiskRanking>;

    /// Convenience: rank the critical water mains, the paper's evaluation
    /// set.
    fn fit_rank(
        &mut self,
        dataset: &Dataset,
        split: &TrainTestSplit,
        seed: u64,
    ) -> Result<RiskRanking> {
        self.fit_rank_class(dataset, split, PipeClass::Critical, seed)
    }

    /// Compact posterior summary of the most recent fit, for export into a
    /// model snapshot ([`crate::snapshot::Snapshot::from_fit`]): DPMHBP
    /// returns cluster/pipe posteriors, HBP its group posterior, the
    /// parametric baselines their coefficient vectors. Default: empty (a
    /// model with no reportable internal state). Before any fit, models
    /// return empty or trivially-default sections.
    fn posterior_summary(&self) -> Vec<SummarySection> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_sorts_descending() {
        let r = RiskRanking::new(vec![
            RiskScore { pipe: PipeId(0), score: 0.1 },
            RiskScore { pipe: PipeId(1), score: 0.9 },
            RiskScore { pipe: PipeId(2), score: 0.5 },
        ]);
        let order: Vec<PipeId> = r.pipes_in_order().collect();
        assert_eq!(order, vec![PipeId(1), PipeId(2), PipeId(0)]);
        assert_eq!(r.score_of(PipeId(2)), Some(0.5));
        assert_eq!(r.score_of(PipeId(9)), None);
    }

    #[test]
    fn top_fraction_rounds_sanely() {
        let r = RiskRanking::new(
            (0..10)
                .map(|i| RiskScore { pipe: PipeId(i), score: i as f64 })
                .collect(),
        );
        assert_eq!(r.top_fraction(0.1).len(), 1);
        assert_eq!(r.top_fraction(0.25).len(), 3); // 2.5 rounds to 3
        assert_eq!(r.top_fraction(1.0).len(), 10);
        assert_eq!(r.top_fraction(0.0).len(), 0);
        assert_eq!(r.top_fraction(2.0).len(), 10);
    }

    #[test]
    fn nan_scores_sort_without_panicking_and_try_new_rejects_them() {
        let scores = vec![
            RiskScore { pipe: PipeId(0), score: 0.4 },
            RiskScore { pipe: PipeId(1), score: f64::NAN },
            RiskScore { pipe: PipeId(2), score: 0.9 },
        ];
        // The infallible constructor must not panic; NaN sorts first
        // (total order puts NaN above +inf) so the poison is visible.
        let r = RiskRanking::new(scores.clone());
        assert_eq!(r.len(), 3);
        assert_eq!(r.scores()[0].pipe, PipeId(1));
        // The fallible constructor surfaces the poison as a typed error.
        let err = RiskRanking::try_new(scores).unwrap_err();
        assert!(matches!(err, CoreError::FitFailed(_)));
        assert!(err.to_string().contains("non-finite risk score"));
        assert!(RiskRanking::try_new(vec![RiskScore {
            pipe: PipeId(0),
            score: 1.0
        }])
        .is_ok());
    }

    #[test]
    fn empty_ranking() {
        let r = RiskRanking::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.top_fraction(0.5).len(), 0);
    }
}
