//! Sampler checkpointing: a tiny atomic `key=value` codec.
//!
//! Long MCMC fits (DPMHBP on a full region) periodically serialize their
//! complete state — RNG counters, cluster arena, accumulators — so an
//! interrupted experiment can resume mid-chain and still produce **byte
//! identical** artefacts to an uninterrupted run. No serde is available in
//! this build environment, so the format is a hand-rolled text file:
//!
//! ```text
//! version=1
//! fingerprint=9f2c…            # FNV-1a over (seed, config, data)
//! alpha=3ff0000000000000       # f64 as IEEE-754 bit pattern, hex
//! z=0 0 1 4 …                  # sequences are space-separated
//! ```
//!
//! Floats round-trip through `f64::to_bits` so no precision is lost — the
//! resume-determinism guarantee depends on this. Files are written to
//! `<path>.tmp` and renamed into place, so a crash mid-write never corrupts
//! an existing checkpoint. Loading is deliberately forgiving: any parse
//! failure or fingerprint mismatch means "no usable checkpoint" and the fit
//! starts from scratch rather than erroring.
//!
//! # Examples
//!
//! A full save/resume round trip: fingerprint the fit, write state, load it
//! back bit-for-bit.
//!
//! ```
//! use pipefail_core::checkpoint::{Fingerprint, Reader, Writer};
//!
//! let fp = Fingerprint::new().push_u64(7).push_str("dpmhbp").finish();
//! let mut w = Writer::new(fp);
//! w.put_f64("alpha", 1.5);
//! w.put_usize_slice("z", &[0, 0, 1, 4]);
//!
//! let path = std::env::temp_dir().join("checkpoint_doctest.ckpt");
//! w.save(&path).unwrap();
//!
//! let r = Reader::load(&path, fp).expect("fingerprint matches");
//! assert_eq!(r.f64("alpha"), Some(1.5));
//! assert_eq!(r.usize_slice("z"), Some(vec![0, 0, 1, 4]));
//! // A different fingerprint means "not our checkpoint": load refuses.
//! assert!(Reader::load(&path, fp ^ 1).is_none());
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::Result;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const FORMAT_VERSION: u64 = 1;

/// Where and how often a fit should checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (one file per fit; overwritten in place).
    pub path: PathBuf,
    /// Write every `every` sweeps.
    pub every: usize,
}

impl CheckpointSpec {
    /// Create a spec; `every` is clamped to at least 1.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
        }
    }
}

/// Incremental FNV-1a hasher used to fingerprint (seed, config, data) so a
/// checkpoint is only ever resumed into the exact fit that wrote it.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn push_byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Mix a u64 (little-endian bytes).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.push_byte(b);
        }
        self
    }

    /// Mix an f64 by bit pattern (NaN-safe, sign-of-zero-sensitive).
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Mix a usize.
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.push_u64(v as u64)
    }

    /// Mix a string's bytes (length-prefixed so concatenations differ).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_usize(s.len());
        for b in s.bytes() {
            self.push_byte(b);
        }
        self
    }

    /// Mix raw bytes without a length prefix — the plain FNV-1a digest of a
    /// buffer, used by the snapshot format's payload checksum.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.push_byte(b);
        }
        self
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Checkpoint writer: accumulate keys, then [`Writer::save`] atomically.
#[derive(Debug)]
pub struct Writer {
    buf: String,
}

impl Writer {
    /// Start a checkpoint carrying the format version and fit fingerprint.
    pub fn new(fingerprint: u64) -> Self {
        let mut w = Self { buf: String::new() };
        w.put_u64("version", FORMAT_VERSION);
        w.put_u64("fingerprint", fingerprint);
        w
    }

    /// Record an unsigned integer.
    pub fn put_u64(&mut self, key: &str, v: u64) {
        self.buf.push_str(key);
        self.buf.push('=');
        self.buf.push_str(&v.to_string());
        self.buf.push('\n');
    }

    /// Record a usize.
    pub fn put_usize(&mut self, key: &str, v: usize) {
        self.put_u64(key, v as u64);
    }

    /// Record an f64 losslessly (bit pattern, hex).
    pub fn put_f64(&mut self, key: &str, v: f64) {
        self.buf.push_str(key);
        self.buf.push('=');
        self.buf.push_str(&format!("{:016x}", v.to_bits()));
        self.buf.push('\n');
    }

    /// Record a sequence of u64s.
    pub fn put_u64_slice(&mut self, key: &str, vs: &[u64]) {
        self.buf.push_str(key);
        self.buf.push('=');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(' ');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push('\n');
    }

    /// Record a sequence of usizes.
    pub fn put_usize_slice(&mut self, key: &str, vs: &[usize]) {
        let as_u64: Vec<u64> = vs.iter().map(|&v| v as u64).collect();
        self.put_u64_slice(key, &as_u64);
    }

    /// Record a sequence of f64s losslessly.
    pub fn put_f64_slice(&mut self, key: &str, vs: &[f64]) {
        self.buf.push_str(key);
        self.buf.push('=');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(' ');
            }
            self.buf.push_str(&format!("{:016x}", v.to_bits()));
        }
        self.buf.push('\n');
    }

    /// Write to `<path>.tmp` then rename into place.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, self.buf.as_bytes())
    }
}

/// Crash-safe file write shared by the checkpoint and snapshot codecs:
/// create the parent directory, write `bytes` to a `.tmp` sibling, then
/// rename into place so a crash mid-write never corrupts an existing file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or(crate::CoreError::BadConfig("atomic_write needs a file path"))?
        .to_string_lossy();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Checkpoint reader. Constructed only when the file exists, parses, and
/// matches both format version and fingerprint; every accessor returns
/// `Option` so a truncated file degrades to "start from scratch".
#[derive(Debug)]
pub struct Reader {
    map: HashMap<String, String>,
}

impl Reader {
    /// Load and validate; `None` means "no usable checkpoint here".
    pub fn load(path: &Path, fingerprint: u64) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut map = HashMap::new();
        for line in text.lines() {
            let (k, v) = line.split_once('=')?;
            map.insert(k.to_string(), v.to_string());
        }
        let r = Self { map };
        if r.u64("version")? != FORMAT_VERSION || r.u64("fingerprint")? != fingerprint {
            return None;
        }
        Some(r)
    }

    /// Read an unsigned integer.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.map.get(key)?.parse().ok()
    }

    /// Read a usize.
    pub fn usize(&self, key: &str) -> Option<usize> {
        self.u64(key).map(|v| v as usize)
    }

    /// Read an f64 (hex bit pattern).
    pub fn f64(&self, key: &str) -> Option<f64> {
        let bits = u64::from_str_radix(self.map.get(key)?, 16).ok()?;
        Some(f64::from_bits(bits))
    }

    /// Read a u64 sequence.
    pub fn u64_slice(&self, key: &str) -> Option<Vec<u64>> {
        let s = self.map.get(key)?;
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(' ').map(|t| t.parse().ok()).collect()
    }

    /// Read a usize sequence.
    pub fn usize_slice(&self, key: &str) -> Option<Vec<usize>> {
        Some(self.u64_slice(key)?.into_iter().map(|v| v as usize).collect())
    }

    /// Read an f64 sequence (hex bit patterns).
    pub fn f64_slice(&self, key: &str) -> Option<Vec<f64>> {
        let s = self.map.get(key)?;
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(' ')
            .map(|t| u64::from_str_radix(t, 16).ok().map(f64::from_bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_losslessly() {
        let dir = std::env::temp_dir().join("pipefail_ckpt_test_roundtrip");
        let path = dir.join("a.ckpt");
        let vals = [
            0.1,
            -0.0,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            f64::NEG_INFINITY,
            6.02214076e23,
        ];
        let mut w = Writer::new(42);
        w.put_f64("x", 0.1 + 0.2);
        w.put_f64_slice("xs", &vals);
        w.put_usize_slice("zs", &[0, 7, usize::MAX]);
        w.save(&path).unwrap();
        let r = Reader::load(&path, 42).expect("valid checkpoint");
        assert_eq!(r.f64("x").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        let back = r.f64_slice("xs").unwrap();
        assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.usize_slice("zs").unwrap(), vec![0, 7, usize::MAX]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_rejects() {
        let dir = std::env::temp_dir().join("pipefail_ckpt_test_fp");
        let path = dir.join("b.ckpt");
        let mut w = Writer::new(1);
        w.put_u64("it", 5);
        w.save(&path).unwrap();
        assert!(Reader::load(&path, 1).is_some());
        assert!(Reader::load(&path, 2).is_none(), "wrong fingerprint accepted");
        assert!(Reader::load(&dir.join("absent.ckpt"), 1).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_degrades_to_none() {
        let dir = std::env::temp_dir().join("pipefail_ckpt_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        std::fs::write(&path, "version=1\nfingerprint=7\nz=1 2 oops\n").unwrap();
        let r = Reader::load(&path, 7).expect("header parses");
        assert_eq!(r.usize_slice("z"), None, "corrupt sequence must not parse");
        std::fs::write(&path, "no equals sign here").unwrap();
        assert!(Reader::load(&path, 7).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.push_f64(1.0).push_f64(2.0);
        let mut b = Fingerprint::new();
        b.push_f64(2.0).push_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.push_str("ab").push_str("c");
        let mut d = Fingerprint::new();
        d.push_str("a").push_str("bc");
        assert_ne!(c.finish(), d.finish());
    }
}
