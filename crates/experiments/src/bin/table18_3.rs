//! E8 — Table 18.3: AUC of the compared approaches, at the full inspection
//! budget ("AUC (100%)") and at the 1% budget in basis points ("AUC (1%)").

use pipefail_eval::report::format_auc_table;
use pipefail_experiments::{run_comparison, section, Context};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let results = run_comparison(&ctx, &world);
    let table = format_auc_table(&results);
    section("Table 18.3 — AUC of different approaches", &table);

    // Shape check mirrored from the paper: DPMHBP should lead per region.
    let mut verdict = String::new();
    for r in &results {
        let best = r
            .models
            .iter()
            .max_by(|a, b| a.auc_full.partial_cmp(&b.auc_full).expect("finite"))
            .expect("models present");
        verdict.push_str(&format!(
            "{}: best AUC(100%) = {} ({:.2}%){}\n",
            r.region,
            best.model,
            best.auc_full * 100.0,
            if best.model == "DPMHBP" { "  <- matches the paper" } else { "" }
        ));
    }
    section("Who wins", &verdict);
    ctx.write_artifact("table18_3.txt", &format!("{table}\n{verdict}"))
        .expect("write artifact");
}
