//! E2 — Table 18.2: pipe attributes and environmental factors.
//!
//! Prints the feature inventory as the model actually consumes it: the
//! encoded schema for drinking-water mains (pipe attributes + soil layers +
//! traffic distance) and for waste-water pipes (adding tree canopy and soil
//! moisture), grouped exactly like the paper's table.

use pipefail_experiments::{section, Context};
use pipefail_network::features::{FeatureEncoder, FeatureMask};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let ds = &world.regions()[0];

    let mut out = String::new();
    for (label, mask) in [
        ("Drinking-water mains", FeatureMask::water_mains()),
        ("Waste-water pipes", FeatureMask::all()),
        ("Without domain knowledge (ablation)", FeatureMask::without_domain_knowledge()),
    ] {
        let enc = FeatureEncoder::fit(ds, mask, ctx.split().prediction_year());
        out.push_str(&format!("== {label} ({} encoded columns) ==\n", enc.dim()));
        let mut group = "";
        for f in enc.schema() {
            if f.group != group {
                group = f.group;
                out.push_str(&format!("  [{group}]\n"));
            }
            out.push_str(&format!(
                "    {:<34} {}\n",
                f.name,
                if f.categorical { "categorical (one-hot)" } else { "continuous (z-scored)" }
            ));
        }
        out.push('\n');
    }
    section("Table 18.2 — pipe attributes and environmental factors", &out);
    ctx.write_artifact("table18_2.txt", &out).expect("write artifact");
}
