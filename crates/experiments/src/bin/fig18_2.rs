//! E3 — Figure 18.2: water supply networks in the selected regions.
//!
//! Renders each region's network as SVG with critical water mains in red
//! and reticulation mains in blue, matching the figure's colour coding.

use pipefail_eval::svg::network_map;
use pipefail_experiments::Context;
use pipefail_network::attributes::PipeClass;

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    for ds in world.regions() {
        let svg = network_map(ds, 900.0, 900.0);
        let name = format!(
            "fig18_2_{}.svg",
            ds.name().to_lowercase().replace(' ', "_")
        );
        ctx.write_artifact(&name, &svg).expect("write artifact");
        println!(
            "{}: {} CWM pipes (red), {} RWM pipes (blue), total length {:.1} km",
            ds.name(),
            ds.pipes_of_class(PipeClass::Critical).count(),
            ds.pipes_of_class(PipeClass::Reticulation).count(),
            ds.total_length_m(None) / 1000.0
        );
    }
}
