//! Extension — MCMC convergence diagnostics for the DPMHBP fit.
//!
//! The paper asserts its Metropolis-within-Gibbs sampler "handles
//! large-scale datasets" but shows no convergence evidence; this driver
//! reports split-R̂, effective sample size and the Geweke score for the
//! sampler's monitored quantities (cluster count, α, mean group rate) on
//! each region.

use pipefail_core::dpmhbp::{Dpmhbp, DpmhbpConfig};
use pipefail_core::model::FailureModel;
use pipefail_experiments::{section, Context};
use pipefail_mcmc::diagnostics::{effective_sample_size, geweke, split_r_hat};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let split = ctx.split();
    let mut out = String::new();
    for ds in world.regions() {
        let mut model = Dpmhbp::new(if ctx.fast {
            DpmhbpConfig::fast()
        } else {
            DpmhbpConfig::default()
        });
        model.fit_rank(ds, &split, ctx.seed).expect("fit failed");
        let d = model.diagnostics();
        out.push_str(&format!("== {} ==\n", ds.name()));
        for (name, chain) in [
            ("clusters", &d.clusters),
            ("alpha", &d.alpha),
            ("mean_q", &d.mean_q),
        ] {
            out.push_str(&format!(
                "{:<9} mean {:>9.4}  R-hat {:>6.3}  ESS {:>7.1}  Geweke z {:>6.2}\n",
                name,
                chain.iter().sum::<f64>() / chain.len().max(1) as f64,
                split_r_hat(chain),
                effective_sample_size(chain),
                geweke(chain, 0.1, 0.5),
            ));
        }
        out.push('\n');
    }
    section("DPMHBP sampler convergence diagnostics", &out);
    ctx.write_artifact("mcmc_diagnostics.txt", &out)
        .expect("write artifact");
}
