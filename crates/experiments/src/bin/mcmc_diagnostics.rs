//! Extension — MCMC convergence diagnostics for the DPMHBP fit.
//!
//! The paper asserts its Metropolis-within-Gibbs sampler "handles
//! large-scale datasets" but shows no convergence evidence; this driver runs
//! *multiple independent chains* per region (in parallel on the task pool),
//! reports per-chain effective sample size and Geweke scores, and the
//! cross-chain Gelman–Rubin R̂ — the diagnostic that actually detects a
//! sampler stuck in one mode, which single-chain split-R̂ cannot.

use pipefail_core::dpmhbp::{Dpmhbp, DpmhbpConfig, DpmhbpDiagnostics};
use pipefail_core::model::FailureModel;
use pipefail_experiments::{section, Context};
use pipefail_mcmc::diagnostics::{effective_sample_size, geweke, r_hat_many, split_r_hat};
use pipefail_stats::rng::derive_seed;

/// Stream offset for per-chain sub-seeds, far from the retry and replicate
/// stream ids, so independent chains never share an RNG stream with any
/// other component.
const CHAIN_STREAM_BASE: u64 = 0x0043_4841_494e; // "CHAIN"

/// Independent chains per region. Four is the standard multi-chain protocol:
/// enough for a meaningful between-chain variance, cheap enough to run by
/// default.
const CHAINS: usize = 4;

fn run_chain(ctx: &Context, ds: &pipefail_network::dataset::Dataset, chain: usize) -> DpmhbpDiagnostics {
    let split = ctx.split();
    let mut model = Dpmhbp::new(if ctx.fast {
        DpmhbpConfig::fast()
    } else {
        DpmhbpConfig::default()
    });
    // Chain 0 keeps the master seed so single-chain artefacts stay
    // reproducible against older revisions; chains 1.. jitter through the
    // dedicated stream.
    let seed = if chain == 0 {
        ctx.seed
    } else {
        derive_seed(ctx.seed, CHAIN_STREAM_BASE + chain as u64)
    };
    model.fit_rank(ds, &split, seed).expect("fit failed");
    model.diagnostics().clone()
}

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let pool = ctx.run_config().pool();
    let mut out = String::new();
    for ds in world.regions() {
        // Chains are fully independent fits, so the pool fans them out;
        // results come back in chain order regardless of thread count.
        let diags = pool.run(CHAINS, |chain| run_chain(&ctx, ds, chain));
        out.push_str(&format!(
            "== {} ==  ({CHAINS} chains, {} thread(s))\n",
            ds.name(),
            pool.threads()
        ));
        type Select = fn(&DpmhbpDiagnostics) -> &[f64];
        let monitors: [(&str, Select); 3] = [
            ("clusters", |d| &d.clusters),
            ("alpha", |d| &d.alpha),
            ("mean_q", |d| &d.mean_q),
        ];
        for (name, select) in monitors {
            let chains: Vec<&[f64]> = diags.iter().map(select).collect();
            let pooled_mean = chains
                .iter()
                .map(|c| c.iter().sum::<f64>() / c.len().max(1) as f64)
                .sum::<f64>()
                / chains.len() as f64;
            // Per-chain diagnostics are reported for the master-seed chain
            // (comparable with the old single-chain artefact); R̂ is the
            // cross-chain statistic.
            let lead = chains[0];
            out.push_str(&format!(
                "{:<9} mean {:>9.4}  R-hat({CHAINS}) {:>6.3}  split-R-hat {:>6.3}  ESS {:>7.1}  Geweke z {:>6.2}\n",
                name,
                pooled_mean,
                r_hat_many(&chains),
                split_r_hat(lead),
                effective_sample_size(lead),
                geweke(lead, 0.1, 0.5),
            ));
        }
        out.push('\n');
    }
    section("DPMHBP sampler convergence diagnostics (multi-chain)", &out);
    ctx.write_artifact("mcmc_diagnostics.txt", &out)
        .expect("write artifact");
}
