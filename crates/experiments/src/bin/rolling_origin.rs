//! Extension — rolling-origin temporal evaluation.
//!
//! The paper fixes one split (train 1998–2008, test 2009). Utilities
//! re-plan yearly, so a more informative protocol rolls the origin: train on
//! 1998..y−1, test on year y, for every y with at least five training
//! years. Each year gives a matched sample per model — the same pairing
//! structure the paper's significance tests rely on, but within one world.

use pipefail_eval::metrics::mann_whitney_auc;
use pipefail_eval::runner::ModelKind;
use pipefail_experiments::{section, Context};
use pipefail_network::split::{ObservationWindow, TrainTestSplit};
use pipefail_stats::hypothesis::{paired_t_test, Alternative};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let models = ModelKind::paper_five();
    let mut out = String::new();
    for ds in world.regions() {
        let years: Vec<i32> = (2003..=2009).collect();
        // aucs[m][y]
        let mut aucs = vec![Vec::new(); models.len()];
        for &year in &years {
            let split = TrainTestSplit::new(
                ObservationWindow::new(1998, year - 1),
                ObservationWindow::new(year, year),
            );
            for (m, kind) in models.iter().enumerate() {
                let mut model = kind.build(ctx.fast);
                let ranking = model
                    .fit_rank(ds, &split, ctx.seed ^ year as u64)
                    .expect("fit failed");
                if let Some(a) = mann_whitney_auc(&ranking, ds, split.test) {
                    aucs[m].push(a);
                }
            }
        }
        out.push_str(&format!(
            "== {} (MW-AUC by rolling test year {}..={}) ==\n",
            ds.name(),
            years.first().unwrap(),
            years.last().unwrap()
        ));
        for (m, kind) in models.iter().enumerate() {
            let mean = aucs[m].iter().sum::<f64>() / aucs[m].len().max(1) as f64;
            out.push_str(&format!(
                "{:<16} mean {:>6.2}%  ({} years)\n",
                kind.display(),
                mean * 100.0,
                aucs[m].len()
            ));
        }
        // Paired test DPMHBP vs each baseline across years (the paper's
        // pairing unit).
        for m in 1..models.len() {
            if aucs[0].len() == aucs[m].len() && aucs[0].len() >= 3 {
                let t = paired_t_test(&aucs[0], &aucs[m], Alternative::Greater)
                    .expect("aligned samples");
                out.push_str(&format!(
                    "  DPMHBP vs {:<12} t = {:>6.2}, p = {:.4} {}\n",
                    models[m].display(),
                    t.t,
                    t.p_value,
                    if t.significant_at(0.05) { "(sig)" } else { "" }
                ));
            }
        }
        out.push('\n');
    }
    section("Rolling-origin evaluation", &out);
    ctx.write_artifact("rolling_origin.txt", &out)
        .expect("write artifact");
}
