//! E4 — Figure 18.3: binary failure matrices for pipes and pipe segments.
//!
//! Materialises the (normally implicit) Bernoulli-process failure matrices
//! of one region's critical mains at pipe level and segment level, prints an
//! ASCII excerpt (`#` = failure-year), and reports the sparsity figures the
//! paper's argument rests on.

use pipefail_core::bernoulli_process::BinaryMatrix;
use pipefail_experiments::{section, Context};
use pipefail_network::attributes::PipeClass;

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let ds = &world.regions()[0];
    let window = ds.observation();

    // Pipe-level matrix: row = CWM pipe, column = year.
    let cwm: Vec<_> = ds.pipes_of_class(PipeClass::Critical).collect();
    let pipe_row: std::collections::HashMap<_, _> =
        cwm.iter().enumerate().map(|(i, p)| (p.id, i as u32)).collect();
    let mut pipe_matrix = BinaryMatrix::new(cwm.len());
    let mut seg_ids = Vec::new();
    let seg_row: std::collections::HashMap<_, _> = {
        for p in &cwm {
            seg_ids.extend(p.segments.iter().copied());
        }
        seg_ids
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect()
    };
    let mut seg_matrix = BinaryMatrix::new(seg_ids.len());
    for year in window.iter() {
        let mut pipe_col = Vec::new();
        let mut seg_col = Vec::new();
        for f in ds.failures() {
            if f.year == year {
                if let Some(&r) = pipe_row.get(&f.pipe) {
                    pipe_col.push(r);
                }
                if let Some(&r) = seg_row.get(&f.segment) {
                    seg_col.push(r);
                }
            }
        }
        pipe_matrix.push_column(pipe_col);
        seg_matrix.push_column(seg_col);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "(1) Pipe-level matrix: {} pipes x {} years, {} ones, density {:.4}%\n",
        pipe_matrix.rows(),
        pipe_matrix.cols(),
        pipe_matrix.ones(),
        pipe_matrix.density() * 100.0
    ));
    out.push_str(&pipe_matrix.ascii(40));
    out.push_str(&format!(
        "\n(2) Segment-level matrix: {} segments x {} years, {} ones, density {:.4}%\n",
        seg_matrix.rows(),
        seg_matrix.cols(),
        seg_matrix.ones(),
        seg_matrix.density() * 100.0
    ));
    out.push_str(&seg_matrix.ascii(40));
    out.push_str("\n('#' = at least one failure of that row in that year; '\u{b7}' = none)\n");
    out.push_str(
        "Segment-level density is lower still — the sparsity that makes hierarchical\nsharing of failure data necessary.\n",
    );
    section("Figure 18.3 — binary failure matrices", &out);
    ctx.write_artifact("fig18_3.txt", &out).expect("write artifact");
}
