//! E11 — Figure 18.9: risk maps for the selected regions.
//!
//! Renders each region with pipes coloured by DPMHBP risk decile (red = top
//! 10%) and the test-year failures as black stars, plus the capture
//! statistic behind the "many failures could be prevented" claim.

use pipefail_eval::riskmap::{risk_map, top_fraction_capture};
use pipefail_eval::runner::ModelKind;
use pipefail_experiments::{section, Context};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let split = ctx.split();
    let mut summary = String::new();
    for ds in world.regions() {
        let mut model = ModelKind::Dpmhbp.build(ctx.fast);
        let ranking = model
            .fit_rank(ds, &split, ctx.seed)
            .expect("DPMHBP fit failed");
        let svg = risk_map(ds, &ranking, split.test, 900.0, 900.0);
        let name = format!(
            "fig18_9_{}.svg",
            ds.name().to_lowercase().replace(' ', "_")
        );
        ctx.write_artifact(&name, &svg).expect("write artifact");
        let capture = top_fraction_capture(ds, &ranking, split.test, 0.10);
        summary.push_str(&format!(
            "{}: top-10% risk pipes capture {:.1}% of test-year CWM failures\n",
            ds.name(),
            capture * 100.0
        ));
    }
    section("Figure 18.9 — risk maps (capture statistics)", &summary);
    ctx.write_artifact("fig18_9_capture.txt", &summary)
        .expect("write artifact");
}
