//! E5/E6 — Figures 18.5 and 18.6: tree-canopy coverage and soil moisture vs
//! waste-water pipe failures (chokes).
//!
//! Generates the synthetic sewer catchment, bins segment choke rates by
//! canopy coverage and by soil-moisture index, and reports the positive
//! correlations the paper uses to motivate domain-knowledge features.

use pipefail_eval::report::{binned_rates, binned_series_csv};
use pipefail_experiments::{section, Context};
use pipefail_stats::descriptive::spearman;
use pipefail_synth::wastewater::{self, WastewaterConfig};
use pipefail_stats::rng::stream_rng;

fn main() {
    let ctx = Context::from_env();
    let config = WastewaterConfig::default_catchment().scaled(ctx.scale.max(0.05) * 4.0);
    let mut rng = stream_rng(ctx.seed, 99);
    let ds = wastewater::generate(&config, &mut rng);
    let stats = ds.segment_stats(ds.observation());

    let mut canopy = Vec::new();
    let mut moisture = Vec::new();
    let mut events = Vec::new();
    let mut exposure = Vec::new();
    for seg in ds.segments() {
        let st = stats[seg.id.index()];
        canopy.push(seg.tree_canopy);
        moisture.push(seg.soil_moisture);
        events.push(st.failure_years as f64);
        exposure.push(st.exposure_years as f64);
    }

    let canopy_bins = binned_rates(&canopy, &events, &exposure, 10);
    let moisture_bins = binned_rates(&moisture, &events, &exposure, 10);

    let c_csv = binned_series_csv("tree_canopy", &canopy_bins);
    let m_csv = binned_series_csv("soil_moisture", &moisture_bins);
    section("Figure 18.5 — choke rate by tree-canopy decile", &c_csv);
    section("Figure 18.6 — choke rate by soil-moisture decile", &m_csv);

    // Correlations at two granularities: the binned curves (the evidence
    // the paper plots — choke rate per canopy/moisture decile) and the raw
    // per-segment rates (heavily diluted toward 0 by the sparse mass of
    // never-choking segments).
    let rate: Vec<f64> = events
        .iter()
        .zip(&exposure)
        .map(|(e, x)| if *x > 0.0 { e / x } else { 0.0 })
        .collect();
    let binned_rho = |bins: &[(f64, f64)]| {
        let xs: Vec<f64> = bins.iter().map(|b| b.0).collect();
        let ys: Vec<f64> = bins.iter().map(|b| b.1).collect();
        spearman(&xs, &ys).unwrap_or(f64::NAN)
    };
    let corr = format!(
        "Spearman over deciles (the paper's curves):\n  canopy   = {:.3}\n  moisture = {:.3}\nSpearman over raw segments (diluted by sparsity):\n  canopy   = {:.3}\n  moisture = {:.3}\n(paper: decile curves strongly positive)\n",
        binned_rho(&canopy_bins),
        binned_rho(&moisture_bins),
        spearman(&canopy, &rate).unwrap_or(f64::NAN),
        spearman(&moisture, &rate).unwrap_or(f64::NAN),
    );
    section("Correlations", &corr);

    ctx.write_artifact("fig18_5_canopy.csv", &c_csv).expect("write");
    ctx.write_artifact("fig18_6_moisture.csv", &m_csv).expect("write");
    ctx.write_artifact("fig18_5_6_correlations.txt", &corr).expect("write");

    use pipefail_eval::charts::{line_chart, ChartConfig, Series};
    for (file, title, xlab, bins) in [
        (
            "fig18_5_canopy.svg",
            "Chokes vs tree-canopy coverage",
            "tree-canopy fraction (bin centre)",
            &canopy_bins,
        ),
        (
            "fig18_6_moisture.svg",
            "Chokes vs soil moisture",
            "soil-moisture index (bin centre)",
            &moisture_bins,
        ),
    ] {
        let svg = line_chart(
            ChartConfig {
                title: title.into(),
                x_label: xlab.into(),
                y_label: "choke rate (failure-years / exposure-year)".into(),
                ..ChartConfig::default()
            },
            &[Series {
                name: "choke rate".into(),
                points: bins.clone(),
            }],
        );
        ctx.write_artifact(file, &svg).expect("write");
    }
}
