//! Run every experiment, writing all artefacts under the output directory.
//! This is the one command behind EXPERIMENTS.md:
//!
//! ```text
//! PIPEFAIL_SCALE=0.12 cargo run --release -p pipefail-experiments --bin repro_all
//! ```
//!
//! The driver is fault-tolerant and parallel:
//!
//! * experiment binaries are independent processes, so they fan out on the
//!   task pool (`PIPEFAIL_THREADS`, default auto); each child is pinned to
//!   `PIPEFAIL_THREADS=1` so the process-level fan-out is the only source of
//!   parallelism — no core oversubscription from nested pools;
//! * each experiment runs to completion even when another fails — one
//!   broken figure no longer kills the whole reproduction;
//! * a failed binary is retried (up to `PIPEFAIL_MAX_RETRIES` extra
//!   launches) before being reported as failed;
//! * a completed binary drops a marker under `<out>/status/`, so rerunning
//!   `repro_all` after an interruption skips everything already done (and
//!   the sampling models inside each binary additionally resume their own
//!   chains from checkpoints where configured). Delete the `status/`
//!   directory (or `PIPEFAIL_OUT`) for a from-scratch rerun;
//! * the run ends with a pass/fail/retried summary table — now with per-bin
//!   wall-clock — and exits non-zero if any binary still failed.
//!
//! A child's stdout/stderr is captured and echoed as one block when it
//! finishes, so parallel runs stay readable.

use pipefail_eval::RetryPolicy;
use pipefail_experiments::Context;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Instant;

const BINS: [&str; 15] = [
    "table18_1",
    "table18_2",
    "fig18_2",
    "fig18_3",
    "fig18_5_6",
    "fig18_7",
    "table18_3",
    "table18_4",
    "fig18_8",
    "fig18_9",
    "ablation_grouping",
    "ablation_domain_knowledge",
    "mcmc_diagnostics",
    "rolling_origin",
    "calibration",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    /// Succeeded this run.
    Passed,
    /// Marker from a previous run; not re-executed.
    AlreadyDone,
    /// Every launch failed.
    Failed,
}

struct BinStatus {
    bin: &'static str,
    outcome: Outcome,
    /// Launches made this run (0 when skipped via marker).
    attempts: usize,
    /// Wall-clock across all launches this run, in seconds.
    elapsed_secs: f64,
    /// Failure detail of the last attempt, if any.
    detail: Option<String>,
}

fn main() {
    let ctx = Context::from_env();
    let status_dir = ctx.out_dir.join("status");
    if let Err(e) = std::fs::create_dir_all(&status_dir) {
        eprintln!(
            "cannot create status dir {}: {e}; resume markers disabled",
            status_dir.display()
        );
    }
    let retries = RetryPolicy::from_env().max_retries;
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf));
    let pool = ctx.run_config().pool();
    println!(
        "running {} experiments on {} thread(s)",
        BINS.len(),
        pool.threads()
    );

    // Completed children print their whole captured transcript under this
    // lock so parallel bins never interleave mid-block.
    let echo = Mutex::new(());
    let statuses: Vec<BinStatus> = pool.run(BINS.len(), |i| {
        let bin = BINS[i];
        let started = Instant::now();
        let marker = status_dir.join(format!("{bin}.done"));
        if marker.exists() {
            let _g = echo.lock().unwrap_or_else(|e| e.into_inner());
            println!("\n================ {bin} ================");
            println!("[skipped: marker {} exists]", marker.display());
            return BinStatus {
                bin,
                outcome: Outcome::AlreadyDone,
                attempts: 0,
                elapsed_secs: started.elapsed().as_secs_f64(),
                detail: None,
            };
        }
        let mut attempts = 0;
        let mut detail = None;
        let outcome = loop {
            attempts += 1;
            match launch(bin, exe_dir.as_deref(), pool.threads()) {
                Ok(transcript) => {
                    let _g = echo.lock().unwrap_or_else(|e| e.into_inner());
                    println!("\n================ {bin} ================");
                    if attempts > 1 {
                        println!("[passed on retry {} of {retries}]", attempts - 1);
                    }
                    let mut stdout = std::io::stdout().lock();
                    let _ = stdout.write_all(&transcript);
                    break Outcome::Passed;
                }
                Err(e) => {
                    let _g = echo.lock().unwrap_or_else(|e| e.into_inner());
                    eprintln!("[{bin}] attempt {attempts} failed: {e}");
                    detail = Some(e);
                    if attempts > retries {
                        break Outcome::Failed;
                    }
                }
            }
        };
        if outcome == Outcome::Passed {
            let note = format!("completed after {attempts} attempt(s)\n");
            if let Err(e) = std::fs::write(&marker, note) {
                eprintln!("cannot write marker {}: {e}", marker.display());
            }
        }
        BinStatus {
            bin,
            outcome,
            attempts,
            elapsed_secs: started.elapsed().as_secs_f64(),
            detail,
        }
    });

    print_summary(&statuses, pool.threads());
    let failed: Vec<&str> = statuses
        .iter()
        .filter(|s| s.outcome == Outcome::Failed)
        .map(|s| s.bin)
        .collect();
    if failed.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFAILED experiments: {}", failed.join(", "));
        eprintln!("(rerun `repro_all` to retry only the failures — completed bins are skipped)");
        std::process::exit(1);
    }
}

/// Launch one experiment binary with its output captured; `Ok` carries the
/// combined stdout+stderr transcript, `Err` the failure detail (with the
/// tail of the child's stderr). The child gets `PIPEFAIL_THREADS=1`: with
/// whole binaries fanned out here, inner model loops must stay serial.
fn launch(bin: &str, exe_dir: Option<&Path>, parent_threads: usize) -> Result<Vec<u8>, String> {
    // Prefer the sibling executable (present after `cargo build`); fall
    // back to `cargo run` so `cargo run --bin repro_all` works alone.
    let sibling: Option<PathBuf> = exe_dir.map(|d| d.join(bin)).filter(|p| p.exists());
    let mut cmd = match sibling {
        Some(exe) => Command::new(exe),
        None => {
            let mut c = Command::new("cargo");
            c.args(["run", "--release", "-q", "-p", "pipefail-experiments", "--bin", bin]);
            c
        }
    };
    if parent_threads > 1 {
        cmd.env("PIPEFAIL_THREADS", "1");
    }
    match cmd.output() {
        Ok(out) if out.status.success() => {
            let mut transcript = out.stdout;
            if !out.stderr.is_empty() {
                transcript.extend_from_slice(b"--- stderr ---\n");
                transcript.extend_from_slice(&out.stderr);
            }
            Ok(transcript)
        }
        Ok(out) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let tail: Vec<&str> = stderr.lines().rev().take(5).collect();
            let tail: Vec<&str> = tail.into_iter().rev().collect();
            Err(format!("exited with {}: {}", out.status, tail.join(" | ")))
        }
        Err(e) => Err(format!("failed to launch: {e}")),
    }
}

fn print_summary(statuses: &[BinStatus], threads: usize) {
    println!("\n================ summary ({threads} thread(s)) ================");
    println!("{:<28} {:<18} {:>8} {:>10}", "experiment", "result", "attempts", "wall [s]");
    for s in statuses {
        let result = match s.outcome {
            Outcome::Passed if s.attempts > 1 => "pass (retried)",
            Outcome::Passed => "pass",
            Outcome::AlreadyDone => "done (resumed)",
            Outcome::Failed => "FAIL",
        };
        print!(
            "{:<28} {:<18} {:>8} {:>10.2}",
            s.bin, result, s.attempts, s.elapsed_secs
        );
        if let Some(d) = &s.detail {
            if s.outcome == Outcome::Failed {
                print!("   [{d}]");
            }
        }
        println!();
    }
    let passed = statuses
        .iter()
        .filter(|s| matches!(s.outcome, Outcome::Passed | Outcome::AlreadyDone))
        .count();
    let retried = statuses
        .iter()
        .filter(|s| s.outcome == Outcome::Passed && s.attempts > 1)
        .count();
    let failed = statuses.len() - passed;
    let wall: f64 = statuses.iter().map(|s| s.elapsed_secs).sum();
    println!(
        "\n{passed} passed ({retried} after retry), {failed} failed, {} total; {wall:.1}s of bin wall-clock on {threads} thread(s)",
        statuses.len()
    );
}
