//! Run every experiment in sequence, writing all artefacts under the output
//! directory. This is the one command behind EXPERIMENTS.md:
//!
//! ```text
//! PIPEFAIL_SCALE=0.12 cargo run --release -p pipefail-experiments --bin repro_all
//! ```
//!
//! The driver is fault-tolerant:
//!
//! * each experiment binary runs to completion even when an earlier one
//!   failed — one broken figure no longer kills the whole reproduction;
//! * a failed binary is retried (up to `PIPEFAIL_MAX_RETRIES` extra
//!   launches) before being reported as failed;
//! * a completed binary drops a marker under `<out>/status/`, so rerunning
//!   `repro_all` after an interruption skips everything already done (and
//!   the sampling models inside each binary additionally resume their own
//!   chains from checkpoints where configured). Delete the `status/`
//!   directory (or `PIPEFAIL_OUT`) for a from-scratch rerun;
//! * the run ends with a pass/fail/retried summary table and exits non-zero
//!   if any binary still failed, listing the failures.

use pipefail_eval::RetryPolicy;
use pipefail_experiments::Context;
use std::path::{Path, PathBuf};
use std::process::Command;

const BINS: [&str; 15] = [
    "table18_1",
    "table18_2",
    "fig18_2",
    "fig18_3",
    "fig18_5_6",
    "fig18_7",
    "table18_3",
    "table18_4",
    "fig18_8",
    "fig18_9",
    "ablation_grouping",
    "ablation_domain_knowledge",
    "mcmc_diagnostics",
    "rolling_origin",
    "calibration",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    /// Succeeded this run.
    Passed,
    /// Marker from a previous run; not re-executed.
    AlreadyDone,
    /// Every launch failed.
    Failed,
}

struct BinStatus {
    bin: &'static str,
    outcome: Outcome,
    /// Launches made this run (0 when skipped via marker).
    attempts: usize,
    /// Failure detail of the last attempt, if any.
    detail: Option<String>,
}

fn main() {
    let ctx = Context::from_env();
    let status_dir = ctx.out_dir.join("status");
    if let Err(e) = std::fs::create_dir_all(&status_dir) {
        eprintln!(
            "cannot create status dir {}: {e}; resume markers disabled",
            status_dir.display()
        );
    }
    let retries = RetryPolicy::from_env().max_retries;
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf));

    let mut statuses: Vec<BinStatus> = Vec::with_capacity(BINS.len());
    for bin in BINS {
        let marker = status_dir.join(format!("{bin}.done"));
        if marker.exists() {
            println!("\n================ {bin} ================");
            println!("[skipped: marker {} exists]", marker.display());
            statuses.push(BinStatus {
                bin,
                outcome: Outcome::AlreadyDone,
                attempts: 0,
                detail: None,
            });
            continue;
        }
        let mut attempts = 0;
        let mut detail = None;
        let outcome = loop {
            println!("\n================ {bin} ================");
            attempts += 1;
            if attempts > 1 {
                println!("[retry {} of {retries}]", attempts - 1);
            }
            match launch(bin, exe_dir.as_deref()) {
                Ok(()) => break Outcome::Passed,
                Err(e) => {
                    eprintln!("[{bin}] attempt {attempts} failed: {e}");
                    detail = Some(e);
                    if attempts > retries {
                        break Outcome::Failed;
                    }
                }
            }
        };
        if outcome == Outcome::Passed {
            let note = format!("completed after {attempts} attempt(s)\n");
            if let Err(e) = std::fs::write(&marker, note) {
                eprintln!("cannot write marker {}: {e}", marker.display());
            }
        }
        statuses.push(BinStatus {
            bin,
            outcome,
            attempts,
            detail,
        });
    }

    print_summary(&statuses);
    let failed: Vec<&str> = statuses
        .iter()
        .filter(|s| s.outcome == Outcome::Failed)
        .map(|s| s.bin)
        .collect();
    if failed.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFAILED experiments: {}", failed.join(", "));
        eprintln!("(rerun `repro_all` to retry only the failures — completed bins are skipped)");
        std::process::exit(1);
    }
}

/// Launch one experiment binary; `Err` carries the failure detail.
fn launch(bin: &str, exe_dir: Option<&Path>) -> Result<(), String> {
    // Prefer the sibling executable (present after `cargo build`); fall
    // back to `cargo run` so `cargo run --bin repro_all` works alone.
    let sibling: Option<PathBuf> = exe_dir.map(|d| d.join(bin)).filter(|p| p.exists());
    let status = match sibling {
        Some(exe) => Command::new(exe).status(),
        None => Command::new("cargo")
            .args(["run", "--release", "-q", "-p", "pipefail-experiments", "--bin", bin])
            .status(),
    };
    match status {
        Ok(s) if s.success() => Ok(()),
        Ok(s) => Err(format!("exited with {s}")),
        Err(e) => Err(format!("failed to launch: {e}")),
    }
}

fn print_summary(statuses: &[BinStatus]) {
    println!("\n================ summary ================");
    println!("{:<28} {:<18} attempts", "experiment", "result");
    for s in statuses {
        let result = match s.outcome {
            Outcome::Passed if s.attempts > 1 => "pass (retried)",
            Outcome::Passed => "pass",
            Outcome::AlreadyDone => "done (resumed)",
            Outcome::Failed => "FAIL",
        };
        print!("{:<28} {:<18} {}", s.bin, result, s.attempts);
        if let Some(d) = &s.detail {
            if s.outcome == Outcome::Failed {
                print!("   [{d}]");
            }
        }
        println!();
    }
    let passed = statuses
        .iter()
        .filter(|s| matches!(s.outcome, Outcome::Passed | Outcome::AlreadyDone))
        .count();
    let retried = statuses
        .iter()
        .filter(|s| s.outcome == Outcome::Passed && s.attempts > 1)
        .count();
    let failed = statuses.len() - passed;
    println!("\n{passed} passed ({retried} after retry), {failed} failed, {} total", statuses.len());
}
