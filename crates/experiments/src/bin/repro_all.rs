//! Run every experiment in sequence, writing all artefacts under the output
//! directory. This is the one command behind EXPERIMENTS.md:
//!
//! ```text
//! PIPEFAIL_SCALE=0.12 cargo run --release -p pipefail-experiments --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table18_1",
        "table18_2",
        "fig18_2",
        "fig18_3",
        "fig18_5_6",
        "fig18_7",
        "table18_3",
        "table18_4",
        "fig18_8",
        "fig18_9",
        "ablation_grouping",
        "ablation_domain_knowledge",
        "mcmc_diagnostics",
        "rolling_origin",
        "calibration",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================ {bin} ================");
        // Prefer the sibling executable (present after `cargo build`); fall
        // back to `cargo run` so `cargo run --bin repro_all` works alone.
        let sibling = exe_dir.join(bin);
        let status = if sibling.exists() {
            Command::new(sibling).status()
        } else {
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "pipefail-experiments", "--bin", bin])
                .status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments completed.");
}
