//! Extension — probability calibration of the DPMHBP scores.
//!
//! The DPMHBP outputs actual failure probabilities (unlike the ranking
//! method), so they can be checked for calibration: bin pipes by predicted
//! next-year probability, compare the bin's mean prediction against the
//! observed test-year failure rate, and report the expected calibration
//! error. The paper never validates its probabilities; a utility pricing
//! renewals against failure cost needs this.

use pipefail_eval::charts::{line_chart, ChartConfig, Series};
use pipefail_eval::runner::ModelKind;
use pipefail_experiments::{section, Context};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let split = ctx.split();
    let mut out = String::new();
    let mut chart_series = Vec::new();
    for ds in world.regions() {
        let mut model = ModelKind::Dpmhbp.build(ctx.fast);
        let ranking = model.fit_rank(ds, &split, ctx.seed).expect("fit failed");
        let failed = ds.pipe_failed_in(split.test);

        // Quantile bins (equal-count) over predicted probability.
        let n_bins = 8;
        let scores = ranking.scores();
        let per_bin = scores.len().div_ceil(n_bins);
        out.push_str(&format!(
            "== {} (predicted vs observed test-year failure rate, {} bins) ==\n",
            ds.name(),
            n_bins
        ));
        let mut ece = 0.0;
        let mut points = Vec::new();
        for (b, chunk) in scores.chunks(per_bin).enumerate() {
            let pred: f64 =
                chunk.iter().map(|s| s.score).sum::<f64>() / chunk.len() as f64;
            let obs: f64 = chunk
                .iter()
                .filter(|s| failed[s.pipe.index()])
                .count() as f64
                / chunk.len() as f64;
            ece += (pred - obs).abs() * chunk.len() as f64 / scores.len() as f64;
            out.push_str(&format!(
                "bin {:>2}  n={:>5}  predicted {:>7.4}  observed {:>7.4}\n",
                b + 1,
                chunk.len(),
                pred,
                obs
            ));
            points.push((pred, obs));
        }
        out.push_str(&format!("expected calibration error = {ece:.4}\n\n"));
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        chart_series.push(Series {
            name: ds.name().to_string(),
            points,
        });
    }
    // Reliability diagram with the identity reference.
    let max_p = chart_series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0.max(p.1)))
        .fold(0.01_f64, f64::max);
    let mut series = vec![Series {
        name: "perfect".into(),
        points: vec![(0.0, 0.0), (max_p, max_p)],
    }];
    series.extend(chart_series);
    let svg = line_chart(
        ChartConfig {
            title: "DPMHBP reliability diagram (2009)".into(),
            x_label: "mean predicted P(fail)".into(),
            y_label: "observed failure rate".into(),
            ..ChartConfig::default()
        },
        &series,
    );
    section("Calibration of DPMHBP probabilities", &out);
    ctx.write_artifact("calibration.txt", &out).expect("write artifact");
    ctx.write_artifact("calibration.svg", &svg).expect("write artifact");
}
