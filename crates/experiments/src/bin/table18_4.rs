//! E9 — Table 18.4: one-sided paired t-tests of the proposed method against
//! the baselines, at 5% significance, for both AUC variants.
//!
//! The paper's paired samples come from its regions/years; ours come from
//! seeded replicate worlds per region (see DESIGN.md substitutions), which
//! preserves the statistic and the decision rule.

use pipefail_eval::runner::ModelKind;
use pipefail_eval::significance::{compare_first_against_rest, replicate_aucs};
use pipefail_eval::report::format_significance_table;
use pipefail_experiments::{section, Context};

fn main() {
    let ctx = Context::from_env();
    let mut artifact = String::new();
    for region in ["Region A", "Region B", "Region C"] {
        let cfg = ctx.world_config().only_region(region);
        let aucs = replicate_aucs(
            &cfg,
            &ModelKind::paper_five(),
            ctx.run_config(),
            ctx.replicates,
            ctx.seed,
        );
        let comparisons = compare_first_against_rest(&aucs);
        let table = format_significance_table(region, &comparisons);
        section(&format!("Table 18.4 — {region}"), &table);
        artifact.push_str(&table);
        artifact.push('\n');
    }
    ctx.write_artifact("table18_4.txt", &artifact)
        .expect("write artifact");
}
