//! E7 — Figure 18.7: failure prediction (detection) curves for the selected
//! regions by different models.
//!
//! For each region, fits the five compared models and writes the
//! cumulative-%-inspected vs %-failures-detected curves as CSV (one column
//! per model), plus a stdout preview at the 10% budget marks.

use pipefail_eval::charts::{line_chart, ChartConfig, Series};
use pipefail_eval::report::detection_curves_csv;
use pipefail_experiments::{run_comparison, section, Context};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let results = run_comparison(&ctx, &world);
    for r in &results {
        let csv = detection_curves_csv(r, 100);
        let slug = r.region.to_lowercase().replace(' ', "_");
        ctx.write_artifact(&format!("fig18_7_{slug}.csv"), &csv)
            .expect("write artifact");
        let series: Vec<Series> = r
            .models
            .iter()
            .map(|m| Series {
                name: m.model.clone(),
                points: m.curve_count.sample(100),
            })
            .collect();
        let svg = line_chart(
            ChartConfig {
                title: format!("Failure prediction results — {}", r.region),
                x_label: "cumulative fraction of CWM pipes inspected".into(),
                y_label: "fraction of 2009 failures detected".into(),
                ..ChartConfig::default()
            },
            &series,
        );
        ctx.write_artifact(&format!("fig18_7_{slug}.svg"), &svg)
            .expect("write artifact");

        let mut preview = String::from("budget  ");
        for m in &r.models {
            preview.push_str(&format!("{:>10}", m.model));
        }
        preview.push('\n');
        for decile in 1..=10 {
            let x = decile as f64 / 10.0;
            preview.push_str(&format!("{:>5.0}%  ", x * 100.0));
            for m in &r.models {
                preview.push_str(&format!("{:>9.1}%", m.curve_count.y_at(x) * 100.0));
            }
            preview.push('\n');
        }
        section(&format!("Figure 18.7 — {}", r.region), &preview);
    }
}
