//! A1 — Ablation: grouping scheme.
//!
//! §18.4.3 integrates three expert groupings with the HBP (material,
//! diameter, laid-year) and reports only the best; the DPMHBP replaces all
//! of them with the CRP. This ablation shows all four side by side per
//! region — the argument for nonparametric grouping.

use pipefail_core::hbp::GroupingScheme;
use pipefail_eval::report::format_auc_table;
use pipefail_eval::runner::{evaluate_region, ModelKind};
use pipefail_experiments::{section, Context};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let split = ctx.split();
    let models = [
        ModelKind::Dpmhbp,
        ModelKind::Hbp(GroupingScheme::Material),
        ModelKind::Hbp(GroupingScheme::Diameter),
        ModelKind::Hbp(GroupingScheme::LaidYear(10)),
    ];
    let results: Vec<_> = world
        .regions()
        .iter()
        .map(|ds| evaluate_region(ds, &split, &models, ctx.run_config(), ctx.seed).expect("fit"))
        .collect();
    let table = format_auc_table(&results);
    section("Ablation A1 — CRP grouping vs fixed expert groupings", &table);
    ctx.write_artifact("ablation_grouping.txt", &table)
        .expect("write artifact");
}
