//! A2 — Ablation: domain knowledge (Fig 18.1's claim).
//!
//! Re-fits the covariate-driven models with and without the
//! expert-contributed environmental features (soil layers, traffic
//! distance) across seeded replicate worlds, and tests the gap with the
//! same one-sided paired t as Table 18.4. The gap is the measured value of
//! domain knowledge.

use pipefail_baselines::cox::{CoxConfig, CoxModel};
use pipefail_core::dpmhbp::{Dpmhbp, DpmhbpConfig};
use pipefail_core::model::FailureModel;
use pipefail_core::ranking::{RankSvm, RankSvmConfig};
use pipefail_eval::detection::DetectionCurve;
use pipefail_eval::metrics::full_auc;
use pipefail_experiments::{section, Context};
use pipefail_network::dataset::Dataset;
use pipefail_network::features::FeatureMask;
use pipefail_network::split::TrainTestSplit;
use pipefail_stats::hypothesis::{paired_t_test, Alternative};

fn fit_auc(
    name: &str,
    mask: FeatureMask,
    fast: bool,
    ds: &Dataset,
    split: &TrainTestSplit,
    seed: u64,
) -> f64 {
    let mut model: Box<dyn FailureModel> = match name {
        "DPMHBP" => {
            let mut cfg = if fast { DpmhbpConfig::fast() } else { DpmhbpConfig::default() };
            cfg.covariates = Some(mask);
            Box::new(Dpmhbp::new(cfg))
        }
        "SVM" => {
            let mut cfg = if fast { RankSvmConfig::fast() } else { RankSvmConfig::default() };
            cfg.features = mask;
            Box::new(RankSvm::new(cfg))
        }
        _ => Box::new(CoxModel::new(CoxConfig {
            features: mask,
            ..CoxConfig::default()
        })),
    };
    let ranking = model.fit_rank(ds, split, seed).expect("fit failed");
    full_auc(&DetectionCurve::by_count(&ranking, ds, split.test))
}

fn main() {
    let ctx = Context::from_env();
    let split = ctx.split();
    let models = ["DPMHBP", "SVM", "Cox"];
    let mut out = String::new();
    for region in ["Region A", "Region B", "Region C"] {
        let cfg = ctx.world_config().only_region(region);
        let mut with = vec![Vec::new(); models.len()];
        let mut without = vec![Vec::new(); models.len()];
        for rep in 0..ctx.replicates {
            let seed = ctx.seed ^ 0xA2 ^ (rep as u64 * 7_919);
            let world = cfg.build(seed);
            let ds = &world.regions()[0];
            for (m, name) in models.iter().enumerate() {
                with[m].push(fit_auc(name, FeatureMask::water_mains(), ctx.fast, ds, &split, seed));
                without[m].push(fit_auc(
                    name,
                    FeatureMask::without_domain_knowledge(),
                    ctx.fast,
                    ds,
                    &split,
                    seed,
                ));
            }
        }
        out.push_str(&format!(
            "== {region} (mean AUC 100% over {} replicate worlds) ==\n",
            ctx.replicates
        ));
        for (m, name) in models.iter().enumerate() {
            let mw: f64 = with[m].iter().sum::<f64>() / with[m].len() as f64;
            let mo: f64 = without[m].iter().sum::<f64>() / without[m].len() as f64;
            let t = paired_t_test(&with[m], &without[m], Alternative::Greater)
                .expect("aligned replicates");
            out.push_str(&format!(
                "{:<8} with: {:>6.2}%  without: {:>6.2}%  delta: {:+.2} pts  (t = {:.2}, p = {:.4}{})\n",
                name,
                mw * 100.0,
                mo * 100.0,
                (mw - mo) * 100.0,
                t.t,
                t.p_value,
                if t.significant_at(0.05) { ", sig" } else { "" }
            ));
        }
        out.push('\n');
    }
    section("Ablation A2 — value of domain-knowledge features", &out);
    ctx.write_artifact("ablation_domain_knowledge.txt", &out)
        .expect("write artifact");
}
