//! E1 — Table 18.1: summary of pipe network data and pipe failure data.
//!
//! Regenerates the dataset-summary table (pipes, failures, laid years,
//! observation period; "All" and "CWM" rows per region) from the calibrated
//! synthetic world, plus the CWM share percentages the paper quotes below
//! the table.

use pipefail_experiments::{section, Context};
use pipefail_network::summary::{cwm_shares, format_table, summarize};

fn main() {
    let ctx = Context::from_env();
    let world = ctx.build_world();
    let mut rows = Vec::new();
    let mut shares = String::new();
    for ds in world.regions() {
        rows.extend(summarize(ds));
        let (pipe_share, fail_share) = cwm_shares(ds);
        shares.push_str(&format!(
            "{}: CWM pipes {:.2}% of network, CWM failures {:.2}% of failures\n",
            ds.name(),
            pipe_share * 100.0,
            fail_share * 100.0
        ));
    }
    let table = format_table(&rows);
    section("Table 18.1 — summary of pipe network and failure data", &table);
    section("CWM shares (quoted under Table 18.1)", &shares);
    let artifact = format!("{table}\n{shares}");
    ctx.write_artifact("table18_1.txt", &artifact)
        .expect("write artifact");
}
