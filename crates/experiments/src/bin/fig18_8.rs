//! E10 — Figure 18.8: detection results with 1% of pipe network length
//! inspected.
//!
//! The real-life constraint: budget allows physically inspecting only 1% of
//! the critical mains' length each year. A single test year yields only a
//! handful of failures, so (unlike the paper, which has the real network)
//! we report the *replicate mean* over seeded worlds — the same replicate
//! protocol as Table 18.4 — per region and model.

use pipefail_eval::runner::ModelKind;
use pipefail_eval::significance::{replicate_aucs, ReplicateAucs};
use pipefail_experiments::{section, Context};

fn main() {
    let ctx = Context::from_env();
    let mut out = String::new();
    let mut chart_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for region in ["Region A", "Region B", "Region C"] {
        let cfg = ctx.world_config().only_region(region);
        let aucs = replicate_aucs(
            &cfg,
            &ModelKind::paper_five(),
            ctx.run_config(),
            ctx.replicates,
            ctx.seed ^ 0x188,
        );
        out.push_str(&format!(
            "== {region} (mean % of test-year failures detected at 1% of CWM length, {} replicates) ==\n",
            ctx.replicates
        ));
        let mut rows: Vec<(String, f64)> = aucs
            .models
            .iter()
            .zip(&aucs.detect_1pct_length)
            .map(|(m, det)| (m.clone(), ReplicateAucs::mean_of(det)))
            .collect();
        for ((m, det), den) in rows.iter().zip(&aucs.detect_1pct_density) {
            out.push_str(&format!(
                "{:<16} {:>6.1}%   (risk-density inspection plan: {:>5.1}%)\n",
                m,
                det * 100.0,
                ReplicateAucs::mean_of(den) * 100.0
            ));
        }
        chart_rows.push((region.to_string(), rows.iter().map(|r| r.1).collect()));
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        if rows.len() >= 2 && rows[1].1 > 0.0 {
            out.push_str(&format!(
                "  -> {} detects {:.2}x the failures of the second best ({})\n",
                rows[0].0,
                rows[0].1 / rows[1].1,
                rows[1].0
            ));
        }
        out.push('\n');
    }
    section("Figure 18.8 — detection at the 1% length budget", &out);
    ctx.write_artifact("fig18_8.txt", &out).expect("write artifact");

    // Grouped bar chart: one group per region, one bar per model.
    use pipefail_eval::charts::{bar_chart, ChartConfig, Series};
    let model_names: Vec<String> = ModelKind::paper_five()
        .iter()
        .map(|m| m.display())
        .collect();
    let series: Vec<Series> = model_names
        .iter()
        .enumerate()
        .map(|(mi, name)| Series {
            name: name.clone(),
            points: chart_rows
                .iter()
                .enumerate()
                .map(|(ci, (_, vals))| (ci as f64, vals.get(mi).copied().unwrap_or(0.0)))
                .collect(),
        })
        .collect();
    let cats: Vec<&str> = chart_rows.iter().map(|(r, _)| r.as_str()).collect();
    let svg = bar_chart(
        ChartConfig {
            title: "Failures detected with 1% of CWM length inspected".into(),
            y_label: "mean fraction of test-year failures detected".into(),
            ..ChartConfig::default()
        },
        &cats,
        &series,
    );
    ctx.write_artifact("fig18_8.svg", &svg).expect("write artifact");
}
