//! # pipefail-experiments
//!
//! Experiment drivers: one binary per table/figure of the paper's
//! evaluation (§18.4), plus the ablations called out in DESIGN.md.
//!
//! Every binary reads the same environment knobs:
//!
//! * `PIPEFAIL_SCALE` — world scale relative to Table 18.1 (default 0.12;
//!   1.0 regenerates the full ~45k-pipe metropolis);
//! * `PIPEFAIL_SEED`  — master seed (default 20260704);
//! * `PIPEFAIL_FAST`  — `1` (default) for reduced MCMC schedules, `0` for
//!   the full schedules;
//! * `PIPEFAIL_REPLICATES` — replicate worlds for the significance tests
//!   (default 10);
//! * `PIPEFAIL_OUT`   — output directory (default `target/repro`);
//! * `PIPEFAIL_MAX_RETRIES` — extra fit attempts after a chain failure
//!   (default 2); retries reseed from a derived sub-seed;
//! * `PIPEFAIL_MODEL_BUDGET_SECS` — per-model wall-clock budget across all
//!   attempts (default unlimited).
//!
//! Outputs are printed to stdout **and** written under the output directory
//! so `EXPERIMENTS.md` can reference stable artefacts.

use pipefail_eval::runner::{evaluate_region, ModelKind, RegionResult, RetryPolicy, RunConfig};
use pipefail_network::split::TrainTestSplit;
use pipefail_synth::{World, WorldConfig};
use std::path::{Path, PathBuf};

/// Shared experiment context parsed from the environment.
#[derive(Debug, Clone)]
pub struct Context {
    /// World scale in (0, 1].
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Reduced model effort.
    pub fast: bool,
    /// Replicates for significance tests.
    pub replicates: usize,
    /// Output directory.
    pub out_dir: PathBuf,
}

impl Context {
    /// Read the context from the environment (see crate docs for knobs).
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        let scale = get("PIPEFAIL_SCALE")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.12_f64)
            .clamp(0.001, 1.0);
        let seed = get("PIPEFAIL_SEED")
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_260_704);
        let fast = get("PIPEFAIL_FAST").is_none_or(|v| v != "0");
        let replicates = get("PIPEFAIL_REPLICATES")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(2);
        let out_dir = get("PIPEFAIL_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/repro"));
        Self {
            scale,
            seed,
            fast,
            replicates,
            out_dir,
        }
    }

    /// The scaled three-region world configuration.
    pub fn world_config(&self) -> WorldConfig {
        WorldConfig::paper().scaled(self.scale)
    }

    /// Generate the world.
    pub fn build_world(&self) -> World {
        self.world_config().build(self.seed)
    }

    /// The paper's train/test protocol.
    pub fn split(&self) -> TrainTestSplit {
        TrainTestSplit::paper_protocol()
    }

    /// Run configuration for the evaluation harness, including the
    /// environment-configured recovery policy.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            fast: self.fast,
            retry: RetryPolicy::from_env(),
            ..RunConfig::default()
        }
    }

    /// Write an artefact under the output directory (creating it), echoing
    /// the path.
    pub fn write_artifact(&self, name: &str, content: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        std::fs::write(&path, content)?;
        println!("[wrote {}]", path.display());
        Ok(path)
    }
}

/// Fit the paper's five models on every region of `world` (the shared core
/// of Fig 18.7, Table 18.3, Fig 18.8 and Fig 18.9).
pub fn run_comparison(ctx: &Context, world: &World) -> Vec<RegionResult> {
    let split = ctx.split();
    world
        .regions()
        .iter()
        .map(|ds| {
            let r = evaluate_region(ds, &split, &ModelKind::paper_five(), ctx.run_config(), ctx.seed)
                .expect("comparison evaluation failed");
            // Failed models are skipped, not fatal; surface them so the
            // report's missing rows are explained.
            for f in r.fits.iter().filter(|f| !f.succeeded()) {
                eprintln!(
                    "[{}] {} failed after {} attempt(s): {}",
                    r.region,
                    f.model,
                    f.attempts,
                    f.error.as_deref().unwrap_or("unknown")
                );
            }
            r
        })
        .collect()
}

/// Echo a report section to stdout.
pub fn section(title: &str, body: &str) {
    println!("\n### {title}\n");
    println!("{body}");
}

/// Path helper for tests.
pub fn exists(p: &Path) -> bool {
    p.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_defaults_are_sane() {
        let ctx = Context::from_env();
        assert!(ctx.scale > 0.0 && ctx.scale <= 1.0);
        assert!(ctx.replicates >= 2);
        assert_eq!(ctx.world_config().regions.len(), 3);
    }

    #[test]
    fn artifact_roundtrip() {
        let ctx = Context {
            scale: 0.01,
            seed: 1,
            fast: true,
            replicates: 2,
            out_dir: std::env::temp_dir().join(format!("pipefail_exp_{}", std::process::id())),
        };
        let p = ctx.write_artifact("hello.txt", "world").unwrap();
        assert!(exists(&p));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "world");
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
