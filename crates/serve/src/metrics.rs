//! Request counters and latency histogram for the `/metrics` endpoint.
//!
//! Everything is a relaxed atomic — observation never blocks a request
//! thread, and the exposition is a consistent-enough point-in-time read
//! (standard practice for counter scrapes). The exposition format is the
//! Prometheus text format, so the endpoint can be scraped as-is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last implicit
/// bucket is `+Inf`. Chosen for a microsecond-scale lookup service: the
/// first buckets resolve in-memory scoring, the last ones catch slow
/// clients and SVG rendering.
pub const LATENCY_BUCKETS_US: [u64; 8] = [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000];

/// Upper bounds (seconds) of the per-route request-duration histogram
/// (`pipefail_http_request_duration_seconds`), log-spaced 100µs → 10s
/// (1-2.5-5 per decade, the Prometheus convention); the last implicit
/// bucket is `+Inf`. Wide enough to resolve both in-memory scoring (tens
/// of µs) and federation tail latency under fault injection (seconds).
pub const DURATION_BUCKETS_S: [f64; 16] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// The served routes, for per-route request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /health`
    Health,
    /// `GET /healthz` — the cheap health-check probe target. Deliberately
    /// **excluded** from the request counters/histogram (the connection
    /// loop never calls [`Metrics::observe`] for it) so a federation
    /// front-end probing every second does not pollute the serving
    /// metrics; probes count in [`Metrics::healthz_total`] instead.
    Healthz,
    /// `GET /top`
    Top,
    /// `GET /pipe`
    Pipe,
    /// `GET /model`
    Model,
    /// `POST /batch`
    Batch,
    /// `POST /aggregate`
    Aggregate,
    /// `GET /riskmap.svg`
    Riskmap,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, parse failures).
    Other,
}

impl Route {
    const ALL: [Route; 10] = [
        Route::Health,
        Route::Healthz,
        Route::Top,
        Route::Pipe,
        Route::Model,
        Route::Batch,
        Route::Aggregate,
        Route::Riskmap,
        Route::Metrics,
        Route::Other,
    ];

    /// Stable label used in the exposition.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Health => "health",
            Route::Healthz => "healthz",
            Route::Top => "top",
            Route::Pipe => "pipe",
            Route::Model => "model",
            Route::Batch => "batch",
            Route::Aggregate => "aggregate",
            Route::Riskmap => "riskmap",
            Route::Metrics => "metrics",
            Route::Other => "other",
        }
    }

    fn index(&self) -> usize {
        Route::ALL.iter().position(|r| r == self).unwrap_or(Route::ALL.len() - 1)
    }
}

/// Per-shard counters for sharded serving: requests routed to the shard,
/// its reload outcomes, and requests refused because the shard was
/// degraded. Exposed with a `shard="<region key>"` label.
#[derive(Debug, Default)]
struct ShardCounters {
    label: String,
    requests: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    unavailable: AtomicU64,
}

/// One per-route latency histogram in seconds: `DURATION_BUCKETS_S` +
/// the +Inf overflow bucket, a sum (µs resolution), and a count.
#[derive(Debug, Default)]
struct DurationHisto {
    buckets: [AtomicU64; 17],
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// Lock-free request metrics shared by all server workers.
#[derive(Debug, Default)]
pub struct Metrics {
    total: AtomicU64,
    by_route: [AtomicU64; 10],
    /// Per-route request-duration histograms
    /// (`pipefail_http_request_duration_seconds{route=...}`).
    durations: [DurationHisto; 10],
    /// Currently open connections (gauge; both connection cores).
    connections_open: AtomicU64,
    /// Idle keep-alive connections closed to admit new ones at the
    /// connection cap (epoll core admission control).
    connections_shed: AtomicU64,
    /// Requests/connections answered `429` by admission control.
    admission_rejected: AtomicU64,
    /// Status classes 1xx..5xx.
    by_status: [AtomicU64; 5],
    /// `LATENCY_BUCKETS_US` + the +Inf overflow bucket.
    latency_buckets: [AtomicU64; 9],
    latency_sum_us: AtomicU64,
    /// Requests served on an already-used connection (request ≥ 2 on its
    /// socket) — the payoff of keep-alive.
    keepalive_reuses: AtomicU64,
    /// Successful snapshot hot-reload swaps (all shards).
    reloads_total: AtomicU64,
    /// Snapshot replacements rejected by the strict loader (all shards).
    reload_failures_total: AtomicU64,
    /// Region-less `/top` scatter-gathers on a sharded server.
    global_topk: AtomicU64,
    /// `GET /healthz` probes answered — kept out of the request counters
    /// (see [`Route::Healthz`]).
    healthz: AtomicU64,
    /// Result-cache hits: responses served from a stored rendered body
    /// (including `304`s answered from the epoch-derived `ETag` alone).
    cache_hits: AtomicU64,
    /// Result-cache misses: cacheable requests computed by the router
    /// (single-flight leaders and fallbacks).
    cache_misses: AtomicU64,
    /// Entries evicted past the cache byte budget (LRU order).
    cache_evictions: AtomicU64,
    /// Requests that blocked on another request's identical in-flight
    /// miss and reused its body instead of recomputing.
    cache_coalesced_waits: AtomicU64,
    /// Resident cache bytes (gauge): bodies + keys + per-entry overhead.
    cache_resident_bytes: AtomicU64,
    /// Federation only: retry attempts after a failed backend request.
    fed_retries: AtomicU64,
    /// Federation only: hedged duplicate requests fired.
    fed_hedges: AtomicU64,
    /// Federation only: hedged duplicates that finished before the primary.
    fed_hedge_wins: AtomicU64,
    /// Federation only: health probes sent.
    fed_probes: AtomicU64,
    /// Federation only: health probes that failed.
    fed_probe_failures: AtomicU64,
    /// True when this server is a federation front-end: the `fed_*`
    /// counters render (and the shard series are labelled per backend).
    federated: bool,
    /// One entry per shard, in shard-set (routing-key) order; empty for a
    /// plain `Metrics::new()`.
    shards: Vec<ShardCounters>,
}

impl Metrics {
    /// Fresh zeroed metrics with no per-shard series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed metrics with one `shard="<label>"` series per shard,
    /// in shard-set order (indices passed to the `shard_*` methods are
    /// positions in this list).
    pub fn with_shards(labels: Vec<String>) -> Self {
        Self {
            shards: labels
                .into_iter()
                .map(|label| ShardCounters {
                    label,
                    ..ShardCounters::default()
                })
                .collect(),
            ..Self::default()
        }
    }

    /// Fresh zeroed metrics for a federation front-end: one shard series
    /// per remote backend (labelled with its region key) plus the
    /// federation-specific `pipefail_fed_*` counters in the exposition.
    pub fn with_backends(labels: Vec<String>) -> Self {
        Self {
            federated: true,
            ..Self::with_shards(labels)
        }
    }

    /// Record one handled request.
    pub fn observe(&self, route: Route, status: u16, elapsed: Duration) {
        self.total.fetch_add(1, Ordering::Relaxed);
        self.by_route[route.index()].fetch_add(1, Ordering::Relaxed);
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.by_status[class].fetch_add(1, Ordering::Relaxed);
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| us <= ub)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let histo = &self.durations[route.index()];
        let secs = elapsed.as_secs_f64();
        let bucket = DURATION_BUCKETS_S
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(DURATION_BUCKETS_S.len());
        histo.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        histo.sum_us.fetch_add(us, Ordering::Relaxed);
        histo.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection opened (either core).
    pub fn conn_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection closed (either core).
    pub fn conn_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Record one idle keep-alive connection shed at the connection cap.
    pub fn connection_shed(&self) {
        self.connections_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle connections shed so far.
    pub fn connections_shed_total(&self) -> u64 {
        self.connections_shed.load(Ordering::Relaxed)
    }

    /// Record one `429` answered by admission control (in-flight bound or
    /// un-sheddable connection cap).
    pub fn admission_rejected(&self) {
        self.admission_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission-control rejections so far.
    pub fn admission_rejected_total(&self) -> u64 {
        self.admission_rejected.load(Ordering::Relaxed)
    }

    /// Total requests handled so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Requests handled on `route` so far.
    pub fn route_count(&self, route: Route) -> u64 {
        self.by_route[route.index()].load(Ordering::Relaxed)
    }

    /// Record one request answered on an already-used (kept-alive)
    /// connection.
    pub fn keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served on reused connections so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Record one successful snapshot hot-reload.
    pub fn reload_ok(&self) {
        self.reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rejected snapshot replacement.
    pub fn reload_failed(&self) {
        self.reload_failures_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful hot-reload swaps so far.
    pub fn reloads_total(&self) -> u64 {
        self.reloads_total.load(Ordering::Relaxed)
    }

    /// Rejected snapshot replacements so far.
    pub fn reload_failures_total(&self) -> u64 {
        self.reload_failures_total.load(Ordering::Relaxed)
    }

    /// Record one request routed to shard `idx` (each `/batch` line counts
    /// separately). Out-of-range indices are ignored — metrics must never
    /// take a request down.
    pub fn shard_request(&self, idx: usize) {
        if let Some(s) = self.shards.get(idx) {
            s.requests.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one successful hot-reload of shard `idx`; also counts in the
    /// aggregate [`Metrics::reloads_total`].
    pub fn shard_reload_ok(&self, idx: usize) {
        self.reload_ok();
        if let Some(s) = self.shards.get(idx) {
            s.reloads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one rejected snapshot replacement on shard `idx`; also
    /// counts in the aggregate [`Metrics::reload_failures_total`].
    pub fn shard_reload_failed(&self, idx: usize) {
        self.reload_failed();
        if let Some(s) = self.shards.get(idx) {
            s.reload_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one request refused with `503` because shard `idx` was
    /// degraded.
    pub fn shard_unavailable(&self, idx: usize) {
        if let Some(s) = self.shards.get(idx) {
            s.unavailable.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests routed to shard `idx` so far.
    pub fn shard_requests(&self, idx: usize) -> u64 {
        self.shards
            .get(idx)
            .map_or(0, |s| s.requests.load(Ordering::Relaxed))
    }

    /// Requests refused because shard `idx` was degraded, so far.
    pub fn shard_unavailable_total(&self, idx: usize) -> u64 {
        self.shards
            .get(idx)
            .map_or(0, |s| s.unavailable.load(Ordering::Relaxed))
    }

    /// Record one region-less scatter-gather global top-K.
    pub fn global_topk(&self) {
        self.global_topk.fetch_add(1, Ordering::Relaxed);
    }

    /// Scatter-gather global top-K requests so far.
    pub fn global_topk_total(&self) -> u64 {
        self.global_topk.load(Ordering::Relaxed)
    }

    /// Record one answered `GET /healthz` probe (kept out of the request
    /// counters — see [`Route::Healthz`]).
    pub fn healthz(&self) {
        self.healthz.fetch_add(1, Ordering::Relaxed);
    }

    /// `GET /healthz` probes answered so far.
    pub fn healthz_total(&self) -> u64 {
        self.healthz.load(Ordering::Relaxed)
    }

    /// Record one result-cache hit (stored body served, or a `304`
    /// answered from the epoch-derived `ETag`).
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Result-cache hits so far.
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Record one result-cache miss (request computed by the router).
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Result-cache misses so far.
    pub fn cache_misses_total(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Record `n` entries evicted past the cache byte budget.
    pub fn cache_evicted(&self, n: u64) {
        if n > 0 {
            self.cache_evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Result-cache evictions so far.
    pub fn cache_evictions_total(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Record one request coalesced onto another's in-flight miss.
    pub fn cache_coalesced(&self) {
        self.cache_coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Coalesced waits so far.
    pub fn cache_coalesced_waits_total(&self) -> u64 {
        self.cache_coalesced_waits.load(Ordering::Relaxed)
    }

    /// Adjust the resident-bytes gauge by a signed delta (stores and
    /// evictions report their net effect; two's-complement wrapping keeps
    /// the running sum exact as long as it never goes negative, which the
    /// cache guarantees by accounting every byte it frees).
    pub fn cache_resident_delta(&self, delta: i64) {
        if delta != 0 {
            self.cache_resident_bytes.fetch_add(delta as u64, Ordering::Relaxed);
        }
    }

    /// Resident result-cache bytes right now.
    pub fn cache_resident_bytes(&self) -> u64 {
        self.cache_resident_bytes.load(Ordering::Relaxed)
    }

    /// Record one federation retry (a repeat attempt after a failed
    /// backend request, not the first attempt).
    pub fn fed_retry(&self) {
        self.fed_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Federation retries so far.
    pub fn fed_retries_total(&self) -> u64 {
        self.fed_retries.load(Ordering::Relaxed)
    }

    /// Record one hedged duplicate request fired after the hedge delay.
    pub fn fed_hedge(&self) {
        self.fed_hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Hedged duplicates fired so far.
    pub fn fed_hedges_total(&self) -> u64 {
        self.fed_hedges.load(Ordering::Relaxed)
    }

    /// Record one hedged duplicate that answered before its primary.
    pub fn fed_hedge_win(&self) {
        self.fed_hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Hedge wins so far.
    pub fn fed_hedge_wins_total(&self) -> u64 {
        self.fed_hedge_wins.load(Ordering::Relaxed)
    }

    /// Record one health probe sent to a backend; `ok` is whether the
    /// backend answered a well-formed response.
    pub fn fed_probe(&self, ok: bool) {
        self.fed_probes.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.fed_probe_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Health probes sent so far.
    pub fn fed_probes_total(&self) -> u64 {
        self.fed_probes.load(Ordering::Relaxed)
    }

    /// Health probes that failed so far.
    pub fn fed_probe_failures_total(&self) -> u64 {
        self.fed_probe_failures.load(Ordering::Relaxed)
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE pipefail_requests_total counter\n");
        out.push_str(&format!("pipefail_requests_total {}\n", self.total()));
        out.push_str("# TYPE pipefail_requests counter\n");
        for route in Route::ALL {
            out.push_str(&format!(
                "pipefail_requests{{route=\"{}\"}} {}\n",
                route.label(),
                self.route_count(route)
            ));
        }
        out.push_str("# TYPE pipefail_responses counter\n");
        for (i, c) in self.by_status.iter().enumerate() {
            out.push_str(&format!(
                "pipefail_responses{{status=\"{}xx\"}} {}\n",
                i + 1,
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE pipefail_request_latency_us histogram\n");
        let mut cumulative = 0u64;
        for (i, &ub) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "pipefail_request_latency_us_bucket{{le=\"{ub}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "pipefail_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "pipefail_request_latency_us_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("pipefail_request_latency_us_count {}\n", self.total()));
        out.push_str("# TYPE pipefail_http_request_duration_seconds histogram\n");
        for route in Route::ALL {
            let histo = &self.durations[route.index()];
            let label = route.label();
            let mut cumulative = 0u64;
            for (i, &ub) in DURATION_BUCKETS_S.iter().enumerate() {
                cumulative += histo.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "pipefail_http_request_duration_seconds_bucket{{route=\"{label}\",le=\"{ub}\"}} {cumulative}\n"
                ));
            }
            cumulative += histo.buckets[DURATION_BUCKETS_S.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "pipefail_http_request_duration_seconds_bucket{{route=\"{label}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "pipefail_http_request_duration_seconds_sum{{route=\"{label}\"}} {}\n",
                histo.sum_us.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "pipefail_http_request_duration_seconds_count{{route=\"{label}\"}} {}\n",
                histo.count.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE pipefail_http_connections_open gauge\n");
        out.push_str(&format!(
            "pipefail_http_connections_open {}\n",
            self.connections_open()
        ));
        out.push_str("# TYPE pipefail_http_connections_shed_total counter\n");
        out.push_str(&format!(
            "pipefail_http_connections_shed_total {}\n",
            self.connections_shed_total()
        ));
        out.push_str("# TYPE pipefail_http_admission_rejected_total counter\n");
        out.push_str(&format!(
            "pipefail_http_admission_rejected_total {}\n",
            self.admission_rejected_total()
        ));
        out.push_str("# TYPE pipefail_keepalive_reuses_total counter\n");
        out.push_str(&format!(
            "pipefail_keepalive_reuses_total {}\n",
            self.keepalive_reuses()
        ));
        out.push_str("# TYPE pipefail_reloads_total counter\n");
        out.push_str(&format!("pipefail_reloads_total {}\n", self.reloads_total()));
        out.push_str("# TYPE pipefail_reload_failures_total counter\n");
        out.push_str(&format!(
            "pipefail_reload_failures_total {}\n",
            self.reload_failures_total()
        ));
        out.push_str("# TYPE pipefail_global_topk_total counter\n");
        out.push_str(&format!(
            "pipefail_global_topk_total {}\n",
            self.global_topk_total()
        ));
        out.push_str("# TYPE pipefail_healthz_total counter\n");
        out.push_str(&format!("pipefail_healthz_total {}\n", self.healthz_total()));
        out.push_str("# TYPE pipefail_cache_hits_total counter\n");
        out.push_str(&format!("pipefail_cache_hits_total {}\n", self.cache_hits_total()));
        out.push_str("# TYPE pipefail_cache_misses_total counter\n");
        out.push_str(&format!(
            "pipefail_cache_misses_total {}\n",
            self.cache_misses_total()
        ));
        out.push_str("# TYPE pipefail_cache_evictions_total counter\n");
        out.push_str(&format!(
            "pipefail_cache_evictions_total {}\n",
            self.cache_evictions_total()
        ));
        out.push_str("# TYPE pipefail_cache_coalesced_waits_total counter\n");
        out.push_str(&format!(
            "pipefail_cache_coalesced_waits_total {}\n",
            self.cache_coalesced_waits_total()
        ));
        out.push_str("# TYPE pipefail_cache_resident_bytes gauge\n");
        out.push_str(&format!(
            "pipefail_cache_resident_bytes {}\n",
            self.cache_resident_bytes()
        ));
        if self.federated {
            out.push_str("# TYPE pipefail_fed_retries_total counter\n");
            out.push_str(&format!(
                "pipefail_fed_retries_total {}\n",
                self.fed_retries_total()
            ));
            out.push_str("# TYPE pipefail_fed_hedges_total counter\n");
            out.push_str(&format!(
                "pipefail_fed_hedges_total {}\n",
                self.fed_hedges_total()
            ));
            out.push_str("# TYPE pipefail_fed_hedge_wins_total counter\n");
            out.push_str(&format!(
                "pipefail_fed_hedge_wins_total {}\n",
                self.fed_hedge_wins_total()
            ));
            out.push_str("# TYPE pipefail_fed_probes_total counter\n");
            out.push_str(&format!(
                "pipefail_fed_probes_total {}\n",
                self.fed_probes_total()
            ));
            out.push_str("# TYPE pipefail_fed_probe_failures_total counter\n");
            out.push_str(&format!(
                "pipefail_fed_probe_failures_total {}\n",
                self.fed_probe_failures_total()
            ));
        }
        if !self.shards.is_empty() {
            out.push_str("# TYPE pipefail_shard_requests counter\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "pipefail_shard_requests{{shard=\"{}\"}} {}\n",
                    s.label,
                    s.requests.load(Ordering::Relaxed)
                ));
            }
            out.push_str("# TYPE pipefail_shard_reloads counter\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "pipefail_shard_reloads{{shard=\"{}\"}} {}\n",
                    s.label,
                    s.reloads.load(Ordering::Relaxed)
                ));
            }
            out.push_str("# TYPE pipefail_shard_reload_failures counter\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "pipefail_shard_reload_failures{{shard=\"{}\"}} {}\n",
                    s.label,
                    s.reload_failures.load(Ordering::Relaxed)
                ));
            }
            out.push_str("# TYPE pipefail_shard_unavailable counter\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "pipefail_shard_unavailable{{shard=\"{}\"}} {}\n",
                    s.label,
                    s.unavailable.load(Ordering::Relaxed)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_routes_statuses_and_buckets() {
        let m = Metrics::new();
        m.observe(Route::Top, 200, Duration::from_micros(40));
        m.observe(Route::Top, 200, Duration::from_micros(90));
        m.observe(Route::Pipe, 404, Duration::from_micros(600));
        m.observe(Route::Other, 400, Duration::from_millis(500));
        assert_eq!(m.total(), 4);
        assert_eq!(m.route_count(Route::Top), 2);
        assert_eq!(m.route_count(Route::Pipe), 1);
        assert_eq!(m.route_count(Route::Health), 0);
        let text = m.render();
        assert!(text.contains("pipefail_requests_total 4"));
        assert!(text.contains("pipefail_requests{route=\"top\"} 2"));
        assert!(text.contains("pipefail_responses{status=\"2xx\"} 2"));
        assert!(text.contains("pipefail_responses{status=\"4xx\"} 2"));
        // Histogram is cumulative: the 50µs bucket holds 1, the 100µs
        // bucket 2, the +Inf bucket everything.
        assert!(text.contains("pipefail_request_latency_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("pipefail_request_latency_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("pipefail_request_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("pipefail_request_latency_us_count 4"));
    }

    #[test]
    fn zeroed_exposition_is_well_formed() {
        let text = Metrics::new().render();
        assert!(text.contains("pipefail_requests_total 0"));
        assert!(text.contains("le=\"+Inf\"} 0"));
        for route in Route::ALL {
            assert!(text.contains(&format!("route=\"{}\"", route.label())));
        }
        assert!(text.contains("pipefail_keepalive_reuses_total 0"));
        assert!(text.contains("pipefail_reloads_total 0"));
        assert!(text.contains("pipefail_reload_failures_total 0"));
    }

    #[test]
    fn shard_series_render_with_labels_and_feed_aggregates() {
        let m = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        m.shard_request(0);
        m.shard_request(0);
        m.shard_request(1);
        m.shard_reload_ok(1);
        m.shard_reload_failed(0);
        m.shard_unavailable(0);
        m.global_topk();
        // Out-of-range indices are ignored, never panic.
        m.shard_request(99);
        m.shard_reload_ok(99);
        assert_eq!(m.shard_requests(0), 2);
        assert_eq!(m.shard_requests(1), 1);
        assert_eq!(m.shard_unavailable_total(0), 1);
        assert_eq!(m.global_topk_total(), 1);
        // Per-shard reload outcomes also count in the aggregates the
        // single-snapshot dashboards already scrape.
        assert_eq!(m.reloads_total(), 2); // 1 for shard 1 + 1 out-of-range
        assert_eq!(m.reload_failures_total(), 1);
        let text = m.render();
        assert!(text.contains("pipefail_shard_requests{shard=\"region_a\"} 2"));
        assert!(text.contains("pipefail_shard_requests{shard=\"region_b\"} 1"));
        assert!(text.contains("pipefail_shard_reloads{shard=\"region_b\"} 1"));
        assert!(text.contains("pipefail_shard_reload_failures{shard=\"region_a\"} 1"));
        assert!(text.contains("pipefail_shard_unavailable{shard=\"region_a\"} 1"));
        assert!(text.contains("pipefail_global_topk_total 1"));
        // A shard-less Metrics::new() renders no shard series at all.
        assert!(!Metrics::new().render().contains("pipefail_shard_"));
    }

    #[test]
    fn healthz_counts_outside_request_metrics() {
        let m = Metrics::new();
        m.healthz();
        m.healthz();
        assert_eq!(m.healthz_total(), 2);
        // Probes never touch the request counters.
        assert_eq!(m.total(), 0);
        assert_eq!(m.route_count(Route::Healthz), 0);
        assert!(m.render().contains("pipefail_healthz_total 2"));
    }

    #[test]
    fn federation_counters_render_only_on_federated_metrics() {
        let m = Metrics::with_backends(vec!["region_a".into(), "region_b".into()]);
        m.fed_retry();
        m.fed_hedge();
        m.fed_hedge();
        m.fed_hedge_win();
        m.fed_probe(true);
        m.fed_probe(false);
        m.fed_probe(false);
        assert_eq!(m.fed_retries_total(), 1);
        assert_eq!(m.fed_hedges_total(), 2);
        assert_eq!(m.fed_hedge_wins_total(), 1);
        assert_eq!(m.fed_probes_total(), 3);
        assert_eq!(m.fed_probe_failures_total(), 2);
        let text = m.render();
        assert!(text.contains("pipefail_fed_retries_total 1"));
        assert!(text.contains("pipefail_fed_hedges_total 2"));
        assert!(text.contains("pipefail_fed_hedge_wins_total 1"));
        assert!(text.contains("pipefail_fed_probes_total 3"));
        assert!(text.contains("pipefail_fed_probe_failures_total 2"));
        // Backends reuse the per-shard series, labelled by region key.
        m.shard_request(1);
        assert!(m.render().contains("pipefail_shard_requests{shard=\"region_b\"} 1"));
        // Non-federated expositions never mention the fed counters.
        assert!(!Metrics::with_shards(vec!["x".into()]).render().contains("pipefail_fed_"));
    }

    #[test]
    fn duration_histogram_is_per_route_and_cumulative() {
        let m = Metrics::new();
        m.observe(Route::Top, 200, Duration::from_micros(80)); // ≤ 0.0001
        m.observe(Route::Top, 200, Duration::from_micros(400)); // ≤ 0.0005
        m.observe(Route::Batch, 200, Duration::from_secs(20)); // +Inf
        let text = m.render();
        assert!(text.contains(
            "pipefail_http_request_duration_seconds_bucket{route=\"top\",le=\"0.0001\"} 1"
        ));
        assert!(text.contains(
            "pipefail_http_request_duration_seconds_bucket{route=\"top\",le=\"0.0005\"} 2"
        ));
        assert!(text.contains(
            "pipefail_http_request_duration_seconds_bucket{route=\"top\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("pipefail_http_request_duration_seconds_count{route=\"top\"} 2"));
        // The 20s observation overflows every finite bucket of its route.
        assert!(text.contains(
            "pipefail_http_request_duration_seconds_bucket{route=\"batch\",le=\"10\"} 0"
        ));
        assert!(text.contains(
            "pipefail_http_request_duration_seconds_bucket{route=\"batch\",le=\"+Inf\"} 1"
        ));
        // Untouched routes still render a (zeroed) series.
        assert!(text.contains("pipefail_http_request_duration_seconds_count{route=\"pipe\"} 0"));
    }

    #[test]
    fn connection_gauges_and_admission_counters() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.connection_shed();
        m.admission_rejected();
        m.admission_rejected();
        assert_eq!(m.connections_open(), 2);
        assert_eq!(m.connections_shed_total(), 1);
        assert_eq!(m.admission_rejected_total(), 2);
        let text = m.render();
        assert!(text.contains("pipefail_http_connections_open 2"));
        assert!(text.contains("pipefail_http_connections_shed_total 1"));
        assert!(text.contains("pipefail_http_admission_rejected_total 2"));
    }

    #[test]
    fn keepalive_and_reload_counters_accumulate() {
        let m = Metrics::new();
        m.keepalive_reuse();
        m.keepalive_reuse();
        m.reload_ok();
        m.reload_failed();
        m.reload_failed();
        assert_eq!(m.keepalive_reuses(), 2);
        assert_eq!(m.reloads_total(), 1);
        assert_eq!(m.reload_failures_total(), 2);
        let text = m.render();
        assert!(text.contains("pipefail_keepalive_reuses_total 2"));
        assert!(text.contains("pipefail_reloads_total 1"));
        assert!(text.contains("pipefail_reload_failures_total 2"));
    }
}
