//! The scoring engine: snapshot in, microsecond risk queries out.
//!
//! A [`Scorer`] is an immutable, shareable (`Sync`) view of one model
//! snapshot. Loading does all the work once — the ranking is validated and
//! indexed — so every query is a slice or a binary search over a sorted
//! id→rank array, with no allocation on the top-K path. Batches of queries fan out over a
//! [`pipefail_par::TaskPool`] with the pool's usual determinism contract:
//! results come back in query order at any thread count.

use pipefail_core::model::RiskRanking;
use pipefail_core::snapshot::{Snapshot, SnapshotError, SummarySection};
use pipefail_network::ids::PipeId;
use pipefail_par::TaskPool;
use std::path::Path;

/// One pipe's served risk: its score and its position in the ranking
/// (rank 0 = riskiest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeRisk {
    /// The pipe.
    pub pipe: PipeId,
    /// The frozen model score (posterior failure probability for the
    /// Bayesian models, a raw ordinal score for the rankers).
    pub score: f64,
    /// Position in the descending ranking, 0-based.
    pub rank: usize,
}

/// A single scoring request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The `k` riskiest pipes.
    TopK(usize),
    /// One pipe's score and rank.
    Pipe(PipeId),
}

/// The answer to a [`Query`], in the same order as the batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Top-K answer, descending.
    TopK(Vec<PipeRisk>),
    /// Per-pipe answer; `None` when the pipe is not in the ranking.
    Pipe(Option<PipeRisk>),
}

/// In-memory scoring engine over one loaded snapshot.
#[derive(Debug, Clone)]
pub struct Scorer {
    model: String,
    region: String,
    seed: u64,
    /// Descending by score; `rank` equals the index.
    entries: Vec<PipeRisk>,
    /// `(pipe id, rank)` sorted by pipe id — point lookups are a binary
    /// search over one contiguous 8-byte-per-pipe array. This beats a
    /// `HashMap` here twice over: no SipHash per probe (the ids are
    /// attacker-neutral — they come from the snapshot, not the client),
    /// and the probe sequence is cache-friendly instead of a random walk.
    index: Vec<(PipeId, u32)>,
    sections: Vec<SummarySection>,
}

impl Scorer {
    /// Build from a validated snapshot (scores arrive pre-sorted — the
    /// format guarantees descending order).
    pub fn new(snapshot: Snapshot) -> Self {
        let entries: Vec<PipeRisk> = snapshot
            .scores
            .iter()
            .enumerate()
            .map(|(rank, &(pipe, score))| PipeRisk { pipe, score, rank })
            .collect();
        let mut index: Vec<(PipeId, u32)> = entries
            .iter()
            .map(|e| (e.pipe, e.rank as u32))
            .collect();
        index.sort_unstable_by_key(|&(pipe, _)| pipe);
        Self {
            model: snapshot.model,
            region: snapshot.region,
            seed: snapshot.seed,
            entries,
            index,
            sections: snapshot.sections,
        }
    }

    /// Load a snapshot file and build the engine.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Ok(Self::new(Snapshot::load(path)?))
    }

    /// Display name of the frozen model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Region/dataset the model was fitted on.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// Master seed of the fit (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot ranked no pipes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Posterior summary sections carried by the snapshot.
    pub fn sections(&self) -> &[SummarySection] {
        &self.sections
    }

    /// One-line identity used in logs ("which model is this process
    /// serving right now?") — the hot-reload watcher prints it after every
    /// successful swap.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} ({} pipes, seed {})",
            self.model,
            self.region,
            self.entries.len(),
            self.seed
        )
    }

    /// The `k` riskiest pipes (all of them when `k > len`), descending.
    /// Zero-copy: a slice of the pre-sorted table.
    pub fn top_k(&self, k: usize) -> &[PipeRisk] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// One pipe's risk, if it was ranked. O(log n): a binary search over
    /// the sorted id→rank array built at load (`serve_bench` tracks the
    /// lookup latency as `scorer/risk_of_100k`).
    pub fn risk_of(&self, pipe: PipeId) -> Option<PipeRisk> {
        self.index
            .binary_search_by_key(&pipe, |&(id, _)| id)
            .ok()
            .map(|i| self.entries[self.index[i].1 as usize])
    }

    /// Reconstruct the full [`RiskRanking`] — bit-identical to the ranking
    /// that was frozen (used by the risk-map endpoint and equivalence
    /// tests).
    pub fn ranking(&self) -> RiskRanking {
        RiskRanking::new(
            self.entries
                .iter()
                .map(|e| pipefail_core::model::RiskScore {
                    pipe: e.pipe,
                    score: e.score,
                })
                .collect(),
        )
    }

    /// Answer one query.
    pub fn answer(&self, query: Query) -> QueryResult {
        match query {
            Query::TopK(k) => QueryResult::TopK(self.top_k(k).to_vec()),
            Query::Pipe(pipe) => QueryResult::Pipe(self.risk_of(pipe)),
        }
    }

    /// Answer a batch of queries, fanned out over `pool`. Results are in
    /// query order at any thread count (the pool's determinism contract —
    /// each answer is a pure function of the query and the frozen table).
    pub fn answer_batch(&self, queries: &[Query], pool: &TaskPool) -> Vec<QueryResult> {
        pool.run(queries.len(), |i| self.answer(queries[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};

    fn scorer() -> Scorer {
        let ranking = RiskRanking::new(
            (0..100u32)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: f64::from(i % 10) + f64::from(i) / 1000.0,
                })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", "Region A", 7, &ranking))
    }

    #[test]
    fn top_k_matches_ranking_order() {
        let s = scorer();
        assert_eq!(s.len(), 100);
        let top = s.top_k(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].score >= top[1].score && top[1].score >= top[2].score);
        assert_eq!(top[0].rank, 0);
        // k beyond len clamps.
        assert_eq!(s.top_k(1000).len(), 100);
        assert_eq!(s.top_k(0).len(), 0);
        // The reconstructed ranking is the same object the snapshot froze.
        let r = s.ranking();
        assert_eq!(r.len(), 100);
        assert_eq!(r.scores()[0].pipe, top[0].pipe);
    }

    #[test]
    fn risk_of_finds_every_pipe_and_misses_unranked() {
        let s = scorer();
        for e in s.top_k(100) {
            let hit = s.risk_of(e.pipe).expect("ranked pipe");
            assert_eq!(hit, *e);
        }
        assert_eq!(s.risk_of(PipeId(10_000)), None);
    }

    #[test]
    fn batch_answers_in_query_order_at_any_thread_count() {
        let s = scorer();
        let queries = vec![
            Query::TopK(5),
            Query::Pipe(PipeId(42)),
            Query::Pipe(PipeId(9999)),
            Query::TopK(0),
        ];
        let serial = s.answer_batch(&queries, &TaskPool::serial());
        for threads in [2, 4, 8] {
            assert_eq!(s.answer_batch(&queries, &TaskPool::new(threads)), serial);
        }
        assert!(matches!(&serial[0], QueryResult::TopK(v) if v.len() == 5));
        assert!(matches!(&serial[1], QueryResult::Pipe(Some(r)) if r.pipe == PipeId(42)));
        assert!(matches!(&serial[2], QueryResult::Pipe(None)));
        assert!(matches!(&serial[3], QueryResult::TopK(v) if v.is_empty()));
    }

    #[test]
    fn metadata_round_trips() {
        let s = scorer();
        assert_eq!(s.model(), "DPMHBP");
        assert_eq!(s.region(), "Region A");
        assert_eq!(s.seed(), 7);
        assert!(!s.is_empty());
        assert!(s.sections().is_empty());
        assert_eq!(s.describe(), "DPMHBP / Region A (100 pipes, seed 7)");
    }
}
