//! The scoring engine: snapshot in, microsecond risk queries out.
//!
//! A [`Scorer`] is an immutable, shareable (`Sync`) view of one model
//! snapshot. Loading does all the work once — the ranking is validated and
//! indexed — so every query is a slice or a binary search over a sorted
//! id→rank array, with no allocation on the top-K path. Batches of queries fan out over a
//! [`pipefail_par::TaskPool`] with the pool's usual determinism contract:
//! results come back in query order at any thread count.

use pipefail_core::model::RiskRanking;
use pipefail_core::snapshot::{
    Snapshot, SnapshotError, SummarySection, ATTRIBUTES_SECTION, ATTR_LAID_YEAR, ATTR_LENGTH_M,
    ATTR_MATERIAL,
};
use pipefail_network::attributes::Material;
use pipefail_network::ids::PipeId;
use pipefail_par::TaskPool;
use std::path::Path;

/// One pipe's served risk: its score and its position in the ranking
/// (rank 0 = riskiest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeRisk {
    /// The pipe.
    pub pipe: PipeId,
    /// The frozen model score (posterior failure probability for the
    /// Bayesian models, a raw ordinal score for the rankers).
    pub score: f64,
    /// Position in the descending ranking, 0-based.
    pub rank: usize,
}

/// A single scoring request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The `k` riskiest pipes.
    TopK(usize),
    /// One pipe's score and rank.
    Pipe(PipeId),
}

/// The answer to a [`Query`], in the same order as the batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Top-K answer, descending.
    TopK(Vec<PipeRisk>),
    /// Per-pipe answer; `None` when the pipe is not in the ranking.
    Pipe(Option<PipeRisk>),
}

/// Per-pipe asset attributes decoded from the snapshot's well-known
/// `pipe_attributes` section, aligned with the descending score order
/// (entry `i` describes the pipe at rank `i`). Present only when the
/// snapshot carries the section *and* it validates: every field the same
/// length as the ranking, lengths finite and non-negative, material
/// indices inside the catalogue. A malformed section is dropped rather
/// than served — top-K and point lookups keep working, aggregation
/// queries that need attributes get a typed refusal.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeAttributes {
    /// Pipe length in metres, by rank.
    pub length_m: Vec<f64>,
    /// Pipe material, by rank.
    pub material: Vec<Material>,
    /// Construction year, by rank.
    pub laid_year: Vec<i32>,
}

impl PipeAttributes {
    /// Decode and validate the attributes section against a ranking of
    /// `n` pipes. `None` when the section is absent or malformed.
    fn decode(sections: &[SummarySection], n: usize) -> Option<Self> {
        let section = sections.iter().find(|s| s.name == ATTRIBUTES_SECTION)?;
        let length_m = section.field(ATTR_LENGTH_M)?;
        let material = section.field(ATTR_MATERIAL)?;
        let laid_year = section.field(ATTR_LAID_YEAR)?;
        if length_m.len() != n || material.len() != n || laid_year.len() != n {
            return None;
        }
        if !length_m.iter().all(|l| l.is_finite() && *l >= 0.0) {
            return None;
        }
        let material: Option<Vec<Material>> = material
            .iter()
            .map(|&m| {
                (m.fract() == 0.0 && m >= 0.0 && (m as usize) < Material::ALL.len())
                    .then(|| Material::ALL[m as usize])
            })
            .collect();
        let laid_year: Option<Vec<i32>> = laid_year
            .iter()
            .map(|&y| {
                (y.is_finite() && y.fract() == 0.0 && y >= f64::from(i32::MIN) && y <= f64::from(i32::MAX))
                    .then_some(y as i32)
            })
            .collect();
        Some(Self {
            length_m: length_m.to_vec(),
            material: material?,
            laid_year: laid_year?,
        })
    }
}

/// In-memory scoring engine over one loaded snapshot.
#[derive(Debug, Clone)]
pub struct Scorer {
    model: String,
    region: String,
    seed: u64,
    /// Descending by score; `rank` equals the index.
    entries: Vec<PipeRisk>,
    /// `(pipe id, rank)` sorted by pipe id — point lookups are a binary
    /// search over one contiguous 8-byte-per-pipe array. This beats a
    /// `HashMap` here twice over: no SipHash per probe (the ids are
    /// attacker-neutral — they come from the snapshot, not the client),
    /// and the probe sequence is cache-friendly instead of a random walk.
    index: Vec<(PipeId, u32)>,
    sections: Vec<SummarySection>,
    /// Decoded `pipe_attributes` section, when present and valid.
    attributes: Option<PipeAttributes>,
}

impl Scorer {
    /// Build from a validated snapshot (scores arrive pre-sorted — the
    /// format guarantees descending order).
    pub fn new(snapshot: Snapshot) -> Self {
        let entries: Vec<PipeRisk> = snapshot
            .scores
            .iter()
            .enumerate()
            .map(|(rank, &(pipe, score))| PipeRisk { pipe, score, rank })
            .collect();
        let mut index: Vec<(PipeId, u32)> = entries
            .iter()
            .map(|e| (e.pipe, e.rank as u32))
            .collect();
        index.sort_unstable_by_key(|&(pipe, _)| pipe);
        let attributes = PipeAttributes::decode(&snapshot.sections, entries.len());
        Self {
            model: snapshot.model,
            region: snapshot.region,
            seed: snapshot.seed,
            entries,
            index,
            sections: snapshot.sections,
            attributes,
        }
    }

    /// Load a snapshot file and build the engine.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Ok(Self::new(Snapshot::load(path)?))
    }

    /// Display name of the frozen model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Region/dataset the model was fitted on.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// Master seed of the fit (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot ranked no pipes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Posterior summary sections carried by the snapshot.
    pub fn sections(&self) -> &[SummarySection] {
        &self.sections
    }

    /// Per-pipe asset attributes (length / material / construction year),
    /// when the snapshot carries a valid `pipe_attributes` section. Rank
    /// `i` of the ranking owns index `i` of every attribute vector.
    pub fn attributes(&self) -> Option<&PipeAttributes> {
        self.attributes.as_ref()
    }

    /// One-line identity used in logs ("which model is this process
    /// serving right now?") — the hot-reload watcher prints it after every
    /// successful swap.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} ({} pipes, seed {})",
            self.model,
            self.region,
            self.entries.len(),
            self.seed
        )
    }

    /// The `k` riskiest pipes (all of them when `k > len`), descending.
    /// Zero-copy: a slice of the pre-sorted table.
    pub fn top_k(&self, k: usize) -> &[PipeRisk] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// One pipe's risk, if it was ranked. O(log n): a binary search over
    /// the sorted id→rank array built at load (`serve_bench` tracks the
    /// lookup latency as `scorer/risk_of_100k`).
    pub fn risk_of(&self, pipe: PipeId) -> Option<PipeRisk> {
        self.index
            .binary_search_by_key(&pipe, |&(id, _)| id)
            .ok()
            .map(|i| self.entries[self.index[i].1 as usize])
    }

    /// Reconstruct the full [`RiskRanking`] — bit-identical to the ranking
    /// that was frozen (used by the risk-map endpoint and equivalence
    /// tests).
    pub fn ranking(&self) -> RiskRanking {
        RiskRanking::new(
            self.entries
                .iter()
                .map(|e| pipefail_core::model::RiskScore {
                    pipe: e.pipe,
                    score: e.score,
                })
                .collect(),
        )
    }

    /// Answer one query.
    pub fn answer(&self, query: Query) -> QueryResult {
        match query {
            Query::TopK(k) => QueryResult::TopK(self.top_k(k).to_vec()),
            Query::Pipe(pipe) => QueryResult::Pipe(self.risk_of(pipe)),
        }
    }

    /// Answer a batch of queries, fanned out over `pool`. Results are in
    /// query order at any thread count (the pool's determinism contract —
    /// each answer is a pure function of the query and the frozen table).
    pub fn answer_batch(&self, queries: &[Query], pool: &TaskPool) -> Vec<QueryResult> {
        pool.run(queries.len(), |i| self.answer(queries[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};

    fn scorer() -> Scorer {
        let ranking = RiskRanking::new(
            (0..100u32)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: f64::from(i % 10) + f64::from(i) / 1000.0,
                })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", "Region A", 7, &ranking))
    }

    #[test]
    fn top_k_matches_ranking_order() {
        let s = scorer();
        assert_eq!(s.len(), 100);
        let top = s.top_k(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].score >= top[1].score && top[1].score >= top[2].score);
        assert_eq!(top[0].rank, 0);
        // k beyond len clamps.
        assert_eq!(s.top_k(1000).len(), 100);
        assert_eq!(s.top_k(0).len(), 0);
        // The reconstructed ranking is the same object the snapshot froze.
        let r = s.ranking();
        assert_eq!(r.len(), 100);
        assert_eq!(r.scores()[0].pipe, top[0].pipe);
    }

    #[test]
    fn risk_of_finds_every_pipe_and_misses_unranked() {
        let s = scorer();
        for e in s.top_k(100) {
            let hit = s.risk_of(e.pipe).expect("ranked pipe");
            assert_eq!(hit, *e);
        }
        assert_eq!(s.risk_of(PipeId(10_000)), None);
    }

    #[test]
    fn batch_answers_in_query_order_at_any_thread_count() {
        let s = scorer();
        let queries = vec![
            Query::TopK(5),
            Query::Pipe(PipeId(42)),
            Query::Pipe(PipeId(9999)),
            Query::TopK(0),
        ];
        let serial = s.answer_batch(&queries, &TaskPool::serial());
        for threads in [2, 4, 8] {
            assert_eq!(s.answer_batch(&queries, &TaskPool::new(threads)), serial);
        }
        assert!(matches!(&serial[0], QueryResult::TopK(v) if v.len() == 5));
        assert!(matches!(&serial[1], QueryResult::Pipe(Some(r)) if r.pipe == PipeId(42)));
        assert!(matches!(&serial[2], QueryResult::Pipe(None)));
        assert!(matches!(&serial[3], QueryResult::TopK(v) if v.is_empty()));
    }

    #[test]
    fn attributes_decode_only_when_aligned_and_valid() {
        use pipefail_core::snapshot::attributes_section;

        let ranking = RiskRanking::new(
            (0..4u32)
                .map(|i| RiskScore { pipe: PipeId(i), score: 1.0 - f64::from(i) / 10.0 })
                .collect(),
        );
        let attach = |length: Vec<f64>, material: Vec<f64>, year: Vec<f64>| {
            let mut snap = Snapshot::new("DPMHBP", "Region A", 7, &ranking);
            snap.push_section(attributes_section(length, material, year));
            Scorer::new(snap)
        };

        // Valid: aligned, finite, catalogued materials.
        let s = attach(
            vec![10.0, 20.0, 30.0, 40.0],
            vec![0.0, 8.0, 1.0, 1.0],
            vec![1920.0, 1950.0, 1980.0, 2010.0],
        );
        let attrs = s.attributes().expect("valid attributes decode");
        assert_eq!(attrs.length_m, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(attrs.material[0], Material::ALL[0]);
        assert_eq!(attrs.material[1], Material::ALL[8]);
        assert_eq!(attrs.laid_year, vec![1920, 1950, 1980, 2010]);

        // No section at all: attributes absent, scorer still works.
        assert!(scorer().attributes().is_none());

        // Misaligned, negative length, out-of-catalogue material, and
        // fractional year are each dropped whole.
        for (length, material, year) in [
            (vec![10.0; 3], vec![0.0; 4], vec![1950.0; 4]),
            (vec![10.0, -1.0, 10.0, 10.0], vec![0.0; 4], vec![1950.0; 4]),
            (vec![10.0; 4], vec![0.0, 99.0, 0.0, 0.0], vec![1950.0; 4]),
            (vec![10.0; 4], vec![0.0; 4], vec![1950.5, 1950.0, 1950.0, 1950.0]),
        ] {
            assert!(attach(length, material, year).attributes().is_none());
        }
    }

    #[test]
    fn metadata_round_trips() {
        let s = scorer();
        assert_eq!(s.model(), "DPMHBP");
        assert_eq!(s.region(), "Region A");
        assert_eq!(s.seed(), 7);
        assert!(!s.is_empty());
        assert!(s.sections().is_empty());
        assert_eq!(s.describe(), "DPMHBP / Region A (100 pipes, seed 7)");
    }
}
