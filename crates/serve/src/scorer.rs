//! The scoring engine: snapshot in, microsecond risk queries out.
//!
//! A [`Scorer`] is an immutable, shareable (`Sync`) view of one model
//! snapshot, behind one of two backings:
//!
//! * **Heap** — the v1 path: the snapshot is parsed into owned vectors.
//!   Loading costs O(file size); queries are slices and binary searches.
//! * **Mapped** — the v2 path: the file is `mmap`ed read-only
//!   (`sys`'s raw-syscall mapping) and validated in one pass
//!   ([`pipefail_core::snapshot::v2::validate`]); the ranking, the
//!   id→rank index, and the attribute columns are then served **directly
//!   from the mapped bytes** — loading is O(ms) regardless of snapshot
//!   size, and the page cache is shared across processes serving the same
//!   file. The mapping lives inside an `Arc`, so a hot-reload swap keeps
//!   the old pages valid until the last in-flight request drops its clone.
//!
//! [`Scorer::load`] negotiates on the header version: v1 files take the
//! heap path, v2 files the mapped path (falling back to a heap parse on
//! big-endian hosts, where the zero-copy column casts would read garbage).
//! Both backings answer every query identically — the `mmap_identity`
//! battery proves it on arbitrary generated snapshots.
//!
//! Queries return view types ([`RiskSlice`], [`AttributesView`]) instead
//! of slices of owned structs, so the zero-copy property survives the API
//! boundary. Batches of queries fan out over a [`pipefail_par::TaskPool`]
//! with the pool's usual determinism contract: results come back in query
//! order at any thread count.

use crate::sys;
use pipefail_core::model::RiskRanking;
use pipefail_core::snapshot::{
    v2, Snapshot, SnapshotError, SnapshotFormat, SummarySection, ATTRIBUTES_SECTION,
    ATTR_LAID_YEAR, ATTR_LENGTH_M, ATTR_MATERIAL, HEADER_LEN, MAGIC, SNAPSHOT_VERSION_V2,
};
use pipefail_network::attributes::Material;
use pipefail_network::ids::PipeId;
use pipefail_par::TaskPool;
use std::io::Read;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// One pipe's served risk: its score and its position in the ranking
/// (rank 0 = riskiest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeRisk {
    /// The pipe.
    pub pipe: PipeId,
    /// The frozen model score (posterior failure probability for the
    /// Bayesian models, a raw ordinal score for the rankers).
    pub score: f64,
    /// Position in the descending ranking, 0-based.
    pub rank: usize,
}

/// A single scoring request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The `k` riskiest pipes.
    TopK(usize),
    /// One pipe's score and rank.
    Pipe(PipeId),
}

/// The answer to a [`Query`], in the same order as the batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Top-K answer, descending.
    TopK(Vec<PipeRisk>),
    /// Per-pipe answer; `None` when the pipe is not in the ranking.
    Pipe(Option<PipeRisk>),
}

/// Per-pipe asset attributes decoded from the snapshot's well-known
/// `pipe_attributes` section, aligned with the descending score order
/// (entry `i` describes the pipe at rank `i`). Present only when the
/// snapshot carries the section *and* it validates: every field the same
/// length as the ranking, lengths finite and non-negative, material
/// indices inside the catalogue. A malformed section is dropped rather
/// than served — top-K and point lookups keep working, aggregation
/// queries that need attributes get a typed refusal.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeAttributes {
    /// Pipe length in metres, by rank.
    pub length_m: Vec<f64>,
    /// Pipe material, by rank.
    pub material: Vec<Material>,
    /// Construction year, by rank.
    pub laid_year: Vec<i32>,
}

impl PipeAttributes {
    /// Decode and validate the attributes section against a ranking of
    /// `n` pipes. `None` when the section is absent or malformed.
    fn decode(sections: &[SummarySection], n: usize) -> Option<Self> {
        let section = sections.iter().find(|s| s.name == ATTRIBUTES_SECTION)?;
        let length_m = section.field(ATTR_LENGTH_M)?;
        let material = section.field(ATTR_MATERIAL)?;
        let laid_year = section.field(ATTR_LAID_YEAR)?;
        if length_m.len() != n || material.len() != n || laid_year.len() != n {
            return None;
        }
        if !length_m.iter().all(|l| l.is_finite() && *l >= 0.0) {
            return None;
        }
        let material: Option<Vec<Material>> = material
            .iter()
            .map(|&m| {
                (m.fract() == 0.0 && m >= 0.0 && (m as usize) < Material::ALL.len())
                    .then(|| Material::ALL[m as usize])
            })
            .collect();
        let laid_year: Option<Vec<i32>> = laid_year
            .iter()
            .map(|&y| {
                (y.is_finite() && y.fract() == 0.0 && y >= f64::from(i32::MIN) && y <= f64::from(i32::MAX))
                    .then_some(y as i32)
            })
            .collect();
        Some(Self {
            length_m: length_m.to_vec(),
            material: material?,
            laid_year: laid_year?,
        })
    }
}

/// A borrowed run of ranking entries starting at rank 0 — what
/// [`Scorer::top_k`] returns. Over a heap backing this wraps a slice of
/// [`PipeRisk`]; over a mapped backing it wraps the raw id and score
/// columns and materializes each `PipeRisk` on the fly, so rendering a
/// top-K response never copies the table.
#[derive(Debug, Clone, Copy)]
pub struct RiskSlice<'a> {
    inner: SliceInner<'a>,
}

#[derive(Debug, Clone, Copy)]
enum SliceInner<'a> {
    Heap(&'a [PipeRisk]),
    Cols { ids: &'a [u32], scores: &'a [f64] },
}

impl<'a> RiskSlice<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self.inner {
            SliceInner::Heap(s) => s.len(),
            SliceInner::Cols { ids, .. } => ids.len(),
        }
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry at position `i` (which is also its rank), if in range.
    pub fn get(&self, i: usize) -> Option<PipeRisk> {
        match self.inner {
            SliceInner::Heap(s) => s.get(i).copied(),
            SliceInner::Cols { ids, scores } => Some(PipeRisk {
                pipe: PipeId(*ids.get(i)?),
                score: *scores.get(i)?,
                rank: i,
            }),
        }
    }

    /// The entry at position `i`; panics when out of range.
    pub fn at(&self, i: usize) -> PipeRisk {
        self.get(i).expect("RiskSlice index out of range")
    }

    /// Iterate the entries in rank order.
    pub fn iter(&self) -> RiskSliceIter<'a> {
        RiskSliceIter { slice: *self, pos: 0 }
    }

    /// Copy the entries into an owned vector.
    pub fn to_vec(&self) -> Vec<PipeRisk> {
        self.iter().collect()
    }
}

impl<'a> From<&'a [PipeRisk]> for RiskSlice<'a> {
    fn from(s: &'a [PipeRisk]) -> Self {
        RiskSlice { inner: SliceInner::Heap(s) }
    }
}

/// Iterator over a [`RiskSlice`], yielding [`PipeRisk`] by value.
#[derive(Debug, Clone)]
pub struct RiskSliceIter<'a> {
    slice: RiskSlice<'a>,
    pos: usize,
}

impl Iterator for RiskSliceIter<'_> {
    type Item = PipeRisk;

    fn next(&mut self) -> Option<PipeRisk> {
        let out = self.slice.get(self.pos)?;
        self.pos += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.slice.len().saturating_sub(self.pos);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RiskSliceIter<'_> {}

impl<'a> IntoIterator for RiskSlice<'a> {
    type Item = PipeRisk;
    type IntoIter = RiskSliceIter<'a>;

    fn into_iter(self) -> RiskSliceIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &RiskSlice<'a> {
    type Item = PipeRisk;
    type IntoIter = RiskSliceIter<'a>;

    fn into_iter(self) -> RiskSliceIter<'a> {
        self.iter()
    }
}

/// A borrowed view of the per-pipe asset attributes, aligned with the
/// ranking (index `i` describes the pipe at rank `i`). Over a heap backing
/// this reads the decoded [`PipeAttributes`]; over a mapped backing it
/// reads the raw f64 columns in place (values were validated at load, so
/// the conversions here cannot fail).
#[derive(Debug, Clone, Copy)]
pub struct AttributesView<'a> {
    inner: AttrInner<'a>,
}

#[derive(Debug, Clone, Copy)]
enum AttrInner<'a> {
    Heap(&'a PipeAttributes),
    Cols {
        length_m: &'a [f64],
        material: &'a [f64],
        laid_year: &'a [f64],
    },
}

impl AttributesView<'_> {
    /// Number of described pipes (always the ranking length).
    pub fn len(&self) -> usize {
        match self.inner {
            AttrInner::Heap(a) => a.length_m.len(),
            AttrInner::Cols { length_m, .. } => length_m.len(),
        }
    }

    /// True when no pipes are described.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length in metres of the pipe at rank `i`.
    pub fn length_m(&self, i: usize) -> f64 {
        match self.inner {
            AttrInner::Heap(a) => a.length_m[i],
            AttrInner::Cols { length_m, .. } => length_m[i],
        }
    }

    /// Material of the pipe at rank `i`.
    pub fn material(&self, i: usize) -> Material {
        Material::ALL[self.material_index(i)]
    }

    /// Index into `Material::ALL` of the pipe at rank `i`'s material.
    pub fn material_index(&self, i: usize) -> usize {
        match self.inner {
            AttrInner::Heap(a) => Material::ALL
                .iter()
                .position(|m| *m == a.material[i])
                .expect("decoded material is catalogued"),
            AttrInner::Cols { material, .. } => material[i] as usize,
        }
    }

    /// Construction year of the pipe at rank `i`.
    pub fn laid_year(&self, i: usize) -> i32 {
        match self.inner {
            AttrInner::Heap(a) => a.laid_year[i],
            AttrInner::Cols { laid_year, .. } => laid_year[i] as i32,
        }
    }
}

/// Shape of one posterior summary section as reported by
/// [`Scorer::sections_info`]: the section name and each field's name and
/// value count. Values themselves stay in the snapshot (or the mapping) —
/// the `/model` endpoint only reports shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// `(field name, value count)` in export order.
    pub fields: Vec<(String, usize)>,
}

/// The mapped backing: the raw mapping plus the validated layout. Held in
/// an `Arc` by every clone of the scorer, so the `munmap` happens exactly
/// when the last holder (shard table or in-flight request) lets go.
#[derive(Debug)]
struct MappedBacking {
    map: sys::Mapping,
    layout: v2::Layout,
    /// Attributes decoded from the summary blob when the writer did *not*
    /// extract columns (non-canonical section shape). Keeps the two
    /// loaders agreeing on whether attributes exist.
    heap_attrs: Option<PipeAttributes>,
}

impl MappedBacking {
    /// Reinterpret a validated column range as a `u32` slice.
    fn u32s(&self, range: &Range<usize>) -> &[u32] {
        let bytes = &self.map.bytes()[range.clone()];
        // SAFETY: the validator proved the range 8-byte-aligned within the
        // file and the mapping base is at least 8-aligned (page-aligned on
        // unix, u64-backed on the fallback), so the pointer is aligned for
        // u32; the length is a multiple of 4 by the section-table element
        // check. Only constructed on little-endian hosts (see
        // `Scorer::load`), where `u32` memory layout equals the on-disk
        // little-endian encoding.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
    }

    /// Reinterpret a validated column range as an `f64` slice.
    fn f64s(&self, range: &Range<usize>) -> &[f64] {
        let bytes = &self.map.bytes()[range.clone()];
        // SAFETY: as `u32s`, with 8-byte elements.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) }
    }
}

#[derive(Debug, Clone)]
enum Backing {
    Heap {
        /// Descending by score; `rank` equals the index.
        entries: Vec<PipeRisk>,
        /// `(pipe id, rank)` sorted ascending — point lookups are a binary
        /// search over one contiguous 8-byte-per-pipe array. This beats a
        /// `HashMap` here twice over: no SipHash per probe (the ids are
        /// attacker-neutral — they come from the snapshot, not the
        /// client), and the probe sequence is cache-friendly instead of a
        /// random walk. Sorted by the full `(id, rank)` pair so lookups
        /// resolve duplicates identically to the v2 on-disk index.
        index: Vec<(PipeId, u32)>,
        sections: Vec<SummarySection>,
        /// Decoded `pipe_attributes` section, when present and valid.
        attributes: Option<PipeAttributes>,
    },
    Mapped(Arc<MappedBacking>),
}

/// In-memory scoring engine over one loaded snapshot (heap-parsed or
/// memory-mapped; see the module docs).
#[derive(Debug, Clone)]
pub struct Scorer {
    model: String,
    region: String,
    seed: u64,
    format: SnapshotFormat,
    backing: Backing,
}

impl Scorer {
    /// Build from a validated snapshot (scores arrive pre-sorted — the
    /// format guarantees descending order). Heap-backed; the format tag is
    /// [`SnapshotFormat::V1`], matching what `to_bytes` would write.
    pub fn new(snapshot: Snapshot) -> Self {
        Self::new_with_format(snapshot, SnapshotFormat::V1)
    }

    fn new_with_format(snapshot: Snapshot, format: SnapshotFormat) -> Self {
        let entries: Vec<PipeRisk> = snapshot
            .scores
            .iter()
            .enumerate()
            .map(|(rank, &(pipe, score))| PipeRisk { pipe, score, rank })
            .collect();
        let mut index: Vec<(PipeId, u32)> = entries
            .iter()
            .map(|e| (e.pipe, e.rank as u32))
            .collect();
        index.sort_unstable();
        let attributes = PipeAttributes::decode(&snapshot.sections, entries.len());
        Self {
            model: snapshot.model,
            region: snapshot.region,
            seed: snapshot.seed,
            format,
            backing: Backing::Heap {
                entries,
                index,
                sections: snapshot.sections,
                attributes,
            },
        }
    }

    /// Load a snapshot file and build the engine, negotiating the backing
    /// on the header version: v1 heap-parses, v2 memory-maps (one strict
    /// validation pass over the mapped bytes, then zero-copy serving).
    /// Big-endian hosts heap-parse v2 too — correct, just not zero-copy.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let version = peek_version(path)?;
        if version == SNAPSHOT_VERSION_V2 && cfg!(target_endian = "little") {
            Self::open_mapped(path)
        } else {
            Self::load_heap(path)
        }
    }

    /// Load a snapshot file onto the heap regardless of its version — the
    /// reference loader the mmap identity battery and the cold-start bench
    /// compare against.
    pub fn load_heap(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let format = if bytes.len() >= 8
            && u16::from_le_bytes([bytes[6], bytes[7]]) == SNAPSHOT_VERSION_V2
        {
            SnapshotFormat::V2
        } else {
            SnapshotFormat::V1
        };
        Ok(Self::new_with_format(Snapshot::from_bytes(&bytes)?, format))
    }

    /// Map a v2 file and validate it in place.
    fn open_mapped(path: &Path) -> Result<Self, SnapshotError> {
        let map = sys::Mapping::map_path(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let layout = v2::validate(map.bytes())?;
        let model = std::str::from_utf8(&map.bytes()[layout.model.clone()])
            .expect("validated utf8")
            .to_string();
        let region = std::str::from_utf8(&map.bytes()[layout.region.clone()])
            .expect("validated utf8")
            .to_string();
        let heap_attrs = if layout.attrs.is_none() {
            PipeAttributes::decode(&layout.summary, layout.n_pipes)
        } else {
            None
        };
        Ok(Self {
            model,
            region,
            seed: layout.seed,
            format: SnapshotFormat::V2,
            backing: Backing::Mapped(Arc::new(MappedBacking { map, layout, heap_attrs })),
        })
    }

    /// Display name of the frozen model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Region/dataset the model was fitted on.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// Master seed of the fit (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// On-disk format this scorer was built from (`v1`/`v2`). In-memory
    /// scorers report v1, the format `Snapshot::to_bytes` writes.
    pub fn format(&self) -> SnapshotFormat {
        self.format
    }

    /// True when the scorer serves directly from a memory-mapped file.
    pub fn mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// How the snapshot is held: `"mmap"` (zero-copy mapping) or `"heap"`
    /// (owned vectors). Reported by `/model`.
    pub fn loader(&self) -> &'static str {
        if self.mapped() {
            "mmap"
        } else {
            "heap"
        }
    }

    /// Number of ranked pipes.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Heap { entries, .. } => entries.len(),
            Backing::Mapped(b) => b.layout.n_pipes,
        }
    }

    /// True when the snapshot ranked no pipes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of the posterior summary sections carried by the snapshot
    /// (names and field value counts, as reported by `/model`). Identical
    /// between the two backings: a mapped scorer synthesizes the entry for
    /// extracted attribute columns at its original position.
    pub fn sections_info(&self) -> Vec<SectionInfo> {
        let of_sections = |sections: &[SummarySection]| {
            sections
                .iter()
                .map(|s| SectionInfo {
                    name: s.name.clone(),
                    fields: s
                        .fields
                        .iter()
                        .map(|f| (f.name.clone(), f.values.len()))
                        .collect(),
                })
                .collect::<Vec<_>>()
        };
        match &self.backing {
            Backing::Heap { sections, .. } => of_sections(sections),
            Backing::Mapped(b) => {
                let mut infos = of_sections(&b.layout.summary);
                if let (Some(_), Some(pos)) = (&b.layout.attrs, b.layout.attr_pos) {
                    let n = b.layout.n_pipes;
                    infos.insert(
                        pos,
                        SectionInfo {
                            name: ATTRIBUTES_SECTION.to_string(),
                            fields: vec![
                                (ATTR_LENGTH_M.to_string(), n),
                                (ATTR_MATERIAL.to_string(), n),
                                (ATTR_LAID_YEAR.to_string(), n),
                            ],
                        },
                    );
                }
                infos
            }
        }
    }

    /// Per-pipe asset attributes (length / material / construction year),
    /// when the snapshot carries a valid `pipe_attributes` section. Rank
    /// `i` of the ranking owns index `i` of the view.
    pub fn attributes(&self) -> Option<AttributesView<'_>> {
        match &self.backing {
            Backing::Heap { attributes, .. } => attributes
                .as_ref()
                .map(|a| AttributesView { inner: AttrInner::Heap(a) }),
            Backing::Mapped(b) => {
                if let Some(cols) = &b.layout.attrs {
                    Some(AttributesView {
                        inner: AttrInner::Cols {
                            length_m: b.f64s(&cols.length_m),
                            material: b.f64s(&cols.material),
                            laid_year: b.f64s(&cols.laid_year),
                        },
                    })
                } else {
                    b.heap_attrs
                        .as_ref()
                        .map(|a| AttributesView { inner: AttrInner::Heap(a) })
                }
            }
        }
    }

    /// One-line identity used in logs ("which model is this process
    /// serving right now?") — the hot-reload watcher prints it after every
    /// successful swap.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} ({} pipes, seed {})",
            self.model,
            self.region,
            self.len(),
            self.seed
        )
    }

    /// The `k` riskiest pipes (all of them when `k > len`), descending.
    /// Zero-copy on both backings: a slice of the pre-sorted table, or a
    /// pair of column prefixes straight out of the mapping.
    pub fn top_k(&self, k: usize) -> RiskSlice<'_> {
        let k = k.min(self.len());
        match &self.backing {
            Backing::Heap { entries, .. } => RiskSlice {
                inner: SliceInner::Heap(&entries[..k]),
            },
            Backing::Mapped(b) => RiskSlice {
                inner: SliceInner::Cols {
                    ids: &b.u32s(&b.layout.pipe_ids)[..k],
                    scores: &b.f64s(&b.layout.scores)[..k],
                },
            },
        }
    }

    /// One pipe's risk, if it was ranked. O(log n): a binary search over
    /// the sorted id→rank index — owned vectors on the heap backing, the
    /// on-disk index columns on the mapped backing (`serve_bench` tracks
    /// the lookup latency as `scorer/risk_of_100k`). Both indexes are
    /// sorted by `(id, rank)`, so duplicate ids resolve to the same entry
    /// either way.
    pub fn risk_of(&self, pipe: PipeId) -> Option<PipeRisk> {
        match &self.backing {
            Backing::Heap { entries, index, .. } => index
                .binary_search_by_key(&pipe, |&(id, _)| id)
                .ok()
                .map(|i| entries[index[i].1 as usize]),
            Backing::Mapped(b) => {
                let ids = b.u32s(&b.layout.index_ids);
                ids.binary_search(&pipe.0).ok().map(|i| {
                    let rank = b.u32s(&b.layout.index_ranks)[i] as usize;
                    PipeRisk {
                        pipe,
                        score: b.f64s(&b.layout.scores)[rank],
                        rank,
                    }
                })
            }
        }
    }

    /// Reconstruct the full [`RiskRanking`] — bit-identical to the ranking
    /// that was frozen (used by the risk-map endpoint and equivalence
    /// tests).
    pub fn ranking(&self) -> RiskRanking {
        RiskRanking::new(
            self.top_k(usize::MAX)
                .iter()
                .map(|e| pipefail_core::model::RiskScore {
                    pipe: e.pipe,
                    score: e.score,
                })
                .collect(),
        )
    }

    /// Answer one query.
    pub fn answer(&self, query: Query) -> QueryResult {
        match query {
            Query::TopK(k) => QueryResult::TopK(self.top_k(k).to_vec()),
            Query::Pipe(pipe) => QueryResult::Pipe(self.risk_of(pipe)),
        }
    }

    /// Answer a batch of queries, fanned out over `pool`. Results are in
    /// query order at any thread count (the pool's determinism contract —
    /// each answer is a pure function of the query and the frozen table).
    pub fn answer_batch(&self, queries: &[Query], pool: &TaskPool) -> Vec<QueryResult> {
        pool.run(queries.len(), |i| self.answer(queries[i]))
    }
}

/// Read the 24-byte header of a snapshot file and return its version,
/// with the same errors the full parse would produce for a short or
/// mislabeled file.
fn peek_version(path: &Path) -> Result<u16, SnapshotError> {
    let mut file = std::fs::File::open(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    let mut head = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < head.len() {
        match file.read(&mut head[got..]) {
            Ok(0) => {
                return Err(SnapshotError::TooShort {
                    need: HEADER_LEN,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        }
    }
    if head[..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    Ok(u16::from_le_bytes([head[6], head[7]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};

    fn snapshot() -> Snapshot {
        let ranking = RiskRanking::new(
            (0..100u32)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: f64::from(i % 10) + f64::from(i) / 1000.0,
                })
                .collect(),
        );
        Snapshot::new("DPMHBP", "Region A", 7, &ranking)
    }

    fn scorer() -> Scorer {
        Scorer::new(snapshot())
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pipefail_scorer_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(format!("{tag}_{}.pfsnap", std::process::id()))
    }

    #[test]
    fn top_k_matches_ranking_order() {
        let s = scorer();
        assert_eq!(s.len(), 100);
        let top = s.top_k(3);
        assert_eq!(top.len(), 3);
        assert!(top.at(0).score >= top.at(1).score && top.at(1).score >= top.at(2).score);
        assert_eq!(top.at(0).rank, 0);
        // k beyond len clamps.
        assert_eq!(s.top_k(1000).len(), 100);
        assert_eq!(s.top_k(0).len(), 0);
        assert!(s.top_k(0).is_empty());
        // The reconstructed ranking is the same object the snapshot froze.
        let r = s.ranking();
        assert_eq!(r.len(), 100);
        assert_eq!(r.scores()[0].pipe, top.at(0).pipe);
    }

    #[test]
    fn risk_of_finds_every_pipe_and_misses_unranked() {
        let s = scorer();
        for e in s.top_k(100) {
            let hit = s.risk_of(e.pipe).expect("ranked pipe");
            assert_eq!(hit, e);
        }
        assert_eq!(s.risk_of(PipeId(10_000)), None);
    }

    #[test]
    fn batch_answers_in_query_order_at_any_thread_count() {
        let s = scorer();
        let queries = vec![
            Query::TopK(5),
            Query::Pipe(PipeId(42)),
            Query::Pipe(PipeId(9999)),
            Query::TopK(0),
        ];
        let serial = s.answer_batch(&queries, &TaskPool::serial());
        for threads in [2, 4, 8] {
            assert_eq!(s.answer_batch(&queries, &TaskPool::new(threads)), serial);
        }
        assert!(matches!(&serial[0], QueryResult::TopK(v) if v.len() == 5));
        assert!(matches!(&serial[1], QueryResult::Pipe(Some(r)) if r.pipe == PipeId(42)));
        assert!(matches!(&serial[2], QueryResult::Pipe(None)));
        assert!(matches!(&serial[3], QueryResult::TopK(v) if v.is_empty()));
    }

    #[test]
    fn attributes_decode_only_when_aligned_and_valid() {
        use pipefail_core::snapshot::attributes_section;

        let ranking = RiskRanking::new(
            (0..4u32)
                .map(|i| RiskScore { pipe: PipeId(i), score: 1.0 - f64::from(i) / 10.0 })
                .collect(),
        );
        let attach = |length: Vec<f64>, material: Vec<f64>, year: Vec<f64>| {
            let mut snap = Snapshot::new("DPMHBP", "Region A", 7, &ranking);
            snap.push_section(attributes_section(length, material, year));
            Scorer::new(snap)
        };

        // Valid: aligned, finite, catalogued materials.
        let s = attach(
            vec![10.0, 20.0, 30.0, 40.0],
            vec![0.0, 8.0, 1.0, 1.0],
            vec![1920.0, 1950.0, 1980.0, 2010.0],
        );
        let attrs = s.attributes().expect("valid attributes decode");
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs.length_m(1), 20.0);
        assert_eq!(attrs.material(0), Material::ALL[0]);
        assert_eq!(attrs.material(1), Material::ALL[8]);
        assert_eq!(attrs.material_index(1), 8);
        assert_eq!(attrs.laid_year(3), 2010);

        // No section at all: attributes absent, scorer still works.
        assert!(scorer().attributes().is_none());

        // Misaligned, negative length, out-of-catalogue material, and
        // fractional year are each dropped whole.
        for (length, material, year) in [
            (vec![10.0; 3], vec![0.0; 4], vec![1950.0; 4]),
            (vec![10.0, -1.0, 10.0, 10.0], vec![0.0; 4], vec![1950.0; 4]),
            (vec![10.0; 4], vec![0.0, 99.0, 0.0, 0.0], vec![1950.0; 4]),
            (vec![10.0; 4], vec![0.0; 4], vec![1950.5, 1950.0, 1950.0, 1950.0]),
        ] {
            assert!(attach(length, material, year).attributes().is_none());
        }
    }

    #[test]
    fn metadata_round_trips() {
        let s = scorer();
        assert_eq!(s.model(), "DPMHBP");
        assert_eq!(s.region(), "Region A");
        assert_eq!(s.seed(), 7);
        assert!(!s.is_empty());
        assert!(s.sections_info().is_empty());
        assert_eq!(s.describe(), "DPMHBP / Region A (100 pipes, seed 7)");
        assert_eq!(s.format(), SnapshotFormat::V1);
        assert!(!s.mapped());
        assert_eq!(s.loader(), "heap");
    }

    #[test]
    fn load_negotiates_backing_on_header_version() {
        let snap = snapshot();

        let v1_path = temp_path("negotiate_v1");
        snap.save_as(&v1_path, SnapshotFormat::V1).expect("save v1");
        let v1 = Scorer::load(&v1_path).expect("load v1");
        assert_eq!(v1.format(), SnapshotFormat::V1);
        assert!(!v1.mapped());

        let v2_path = temp_path("negotiate_v2");
        snap.save_as(&v2_path, SnapshotFormat::V2).expect("save v2");
        let v2 = Scorer::load(&v2_path).expect("load v2");
        assert_eq!(v2.format(), SnapshotFormat::V2);
        assert_eq!(v2.mapped(), cfg!(target_endian = "little"));
        if v2.mapped() {
            assert_eq!(v2.loader(), "mmap");
        }

        // Forced heap load of the same v2 file: still v2, never mapped.
        let v2h = Scorer::load_heap(&v2_path).expect("heap load v2");
        assert_eq!(v2h.format(), SnapshotFormat::V2);
        assert!(!v2h.mapped());

        // All three answer identically.
        for s in [&v2, &v2h] {
            assert_eq!(s.describe(), v1.describe());
            assert_eq!(s.top_k(10).to_vec(), v1.top_k(10).to_vec());
            for pipe in [PipeId(0), PipeId(57), PipeId(10_000)] {
                assert_eq!(s.risk_of(pipe), v1.risk_of(pipe));
            }
            assert_eq!(s.ranking(), v1.ranking());
        }

        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn short_and_foreign_files_fail_typed() {
        let path = temp_path("short");
        std::fs::write(&path, b"PFSN").expect("write");
        assert!(matches!(
            Scorer::load(&path),
            Err(SnapshotError::TooShort { .. })
        ));
        std::fs::write(&path, vec![0u8; 64]).expect("write");
        assert!(matches!(Scorer::load(&path), Err(SnapshotError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }
}
