// Raw syscall shims for the serve layer: epoll, poll, and a
// SO_REUSEADDR-before-bind listener. The workspace's dependency policy
// rules out libc/nix/mio, but std already links libc on every supported
// platform, so `extern "C"` declarations of the handful of calls we need
// resolve at link time with no new dependency.
//
// Everything here is `pub(crate)`: the public surface stays the typed
// serve API; callers never see raw fds.

use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::io::RawFd;

// ---------------------------------------------------------------------------
// libc declarations (unix)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs;
    // u64 vs u32 only matters for huge fd arrays, which we never pass, but
    // get the type right anyway.
    #[cfg(target_os = "linux")]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = std::os::raw::c_uint;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            event: *mut super::EpollEvent,
        ) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut super::EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

// ---------------------------------------------------------------------------
// epoll (linux)
// ---------------------------------------------------------------------------

/// Readiness bits, matching `<sys/epoll.h>`.
#[cfg(target_os = "linux")]
pub(crate) mod ep {
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
}

/// `struct epoll_event`. The kernel ABI packs this to 12 bytes on x86-64
/// (`__attribute__((packed))` in the kernel headers); other architectures
/// use natural alignment.
#[cfg(target_os = "linux")]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: i32 = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: i32 = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: i32 = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// An owned epoll instance. Dropping it closes the fd; registered sockets
/// deregister themselves when *their* fds close, so teardown order never
/// matters.
#[cfg(target_os = "linux")]
pub(crate) struct Epoll {
    fd: RawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { ffi::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for level-triggered readiness with an opaque token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister an fd (ignored if the fd was already closed).
    pub fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: see `ctl`.
        let _ = unsafe { ffi::epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Wait for events, at most `timeout_ms` (-1 = forever). `EINTR`
    /// returns `Ok(0)` — callers loop and recompute deadlines anyway.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid mutable slice; the kernel writes at
        // most `len` entries.
        let rc = unsafe {
            ffi::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        unsafe { ffi::close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Listener bind with SO_REUSEADDR
// ---------------------------------------------------------------------------

/// Bind a TCP listener with `SO_REUSEADDR` set *before* `bind`, so a
/// restarted server (or a test re-binding a just-closed port) never flakes
/// on `EADDRINUSE` while the old socket lingers in TIME_WAIT. std's
/// `TcpListener::bind` does not set the option on Linux, so IPv4 binds go
/// through a raw `socket`/`setsockopt`/`bind`/`listen` sequence; anything
/// else falls back to std behaviour.
pub(crate) fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::SocketAddr;
        if let Ok(SocketAddr::V4(v4)) = addr.parse::<SocketAddr>() {
            return bind_reuseaddr_v4(v4);
        }
    }
    TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
fn bind_reuseaddr_v4(addr: std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::FromRawFd;

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    // SAFETY: plain syscall.
    let fd = unsafe { ffi::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Close the raw fd on any error below.
    let fail = |fd: RawFd| -> io::Error {
        let err = io::Error::last_os_error();
        // SAFETY: fd is ours and not yet wrapped.
        unsafe { ffi::close(fd) };
        err
    };

    let one: c_int = 1;
    // SAFETY: `one` is a valid 4-byte int for the duration of the call.
    let rc = unsafe {
        ffi::setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            &one as *const c_int as *const c_void,
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(fail(fd));
    }

    let sa = SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: addr.port().to_be(),
        sin_addr: u32::from(*addr.ip()).to_be(),
        sin_zero: [0; 8],
    };
    // SAFETY: `sa` is a properly laid out sockaddr_in.
    let rc = unsafe {
        ffi::bind(
            fd,
            &sa as *const SockaddrIn as *const c_void,
            std::mem::size_of::<SockaddrIn>() as u32,
        )
    };
    if rc < 0 {
        return Err(fail(fd));
    }
    // SAFETY: plain syscall on our fd.
    let rc = unsafe { ffi::listen(fd, 1024) };
    if rc < 0 {
        return Err(fail(fd));
    }
    // SAFETY: fd is a freshly bound+listening TCP socket we own.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

// ---------------------------------------------------------------------------
// Read-only file mappings (mmap)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mmap_ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, privately mapped view of a whole file, created with raw
/// `mmap` and released with `munmap` on drop. The mapping outlives the fd
/// (the file is closed as soon as the map exists) and survives a
/// rename-over of its path — the pages belong to the *inode* — which is
/// exactly what the hot-reload publish protocol needs: the old snapshot's
/// mapping stays valid until the last `Arc` holding it drops, while new
/// loads map the fresh inode.
///
/// The base address is page-aligned by the kernel, so 8-byte-aligned
/// offsets within the file are 8-byte-aligned in memory — the invariant
/// the zero-copy column readers in `scorer` rely on.
#[cfg(unix)]
pub(crate) struct Mapping {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(unix)]
impl Mapping {
    /// Map the file at `path` read-only in its entirety. Zero-length files
    /// yield an empty mapping without calling `mmap` (which rejects
    /// `len == 0`).
    pub fn map_path(path: &std::path::Path) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"))?;
        if len == 0 {
            return Ok(Mapping { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: plain syscall; the kernel picks the address. The fd is
        // valid for the duration of the call, and the mapping is
        // independent of it afterwards.
        let ptr = unsafe {
            mmap_ffi::mmap(
                std::ptr::null_mut(),
                len,
                mmap_ffi::PROT_READ,
                mmap_ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // that we own until drop. MAP_PRIVATE means no other process can
        // mutate our view.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

// SAFETY: the mapping is immutable (PROT_READ | MAP_PRIVATE) and owned;
// sharing references across threads is no different from sharing a
// `&[u8]`.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: `ptr`/`len` describe a mapping we created and have
            // not unmapped before; after this the struct is gone.
            unsafe { mmap_ffi::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(unix)]
impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

/// Non-unix fallback: read the file into an 8-byte-aligned heap buffer
/// (backed by `Vec<u64>`), preserving the alignment guarantee the column
/// readers rely on. No page-cache sharing, but identical semantics.
#[cfg(not(unix))]
#[derive(Debug)]
pub(crate) struct Mapping {
    buf: Vec<u64>,
    len: usize,
}

#[cfg(not(unix))]
impl Mapping {
    pub fn map_path(path: &std::path::Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 buffer reinterpreted as bytes; lengths match.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, buf.len() * 8)
        };
        dst[..bytes.len()].copy_from_slice(&bytes);
        Ok(Mapping { buf, len: bytes.len() })
    }

    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the u64 buffer holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len) }
    }
}

// ---------------------------------------------------------------------------
// EINTR-safe blocking reads
// ---------------------------------------------------------------------------

/// `read` that retries on `EINTR`. std's `write_all` already retries
/// interrupted writes internally, but a bare `read` surfaces `EINTR` to
/// the caller — which, in a connection loop, used to tear down a healthy
/// connection when a signal landed mid-read.
pub(crate) fn read_retry<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    loop {
        match r.read(buf) {
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

// ---------------------------------------------------------------------------
// Deadline-bounded I/O on non-blocking sockets
// ---------------------------------------------------------------------------

/// Wait until `fd` is readable (`want_read`) or writable, or until
/// `deadline` — whichever comes first. `EINTR` re-enters the wait with the
/// remaining budget. Expiry returns `ErrorKind::TimedOut`.
#[cfg(unix)]
fn wait_fd(fd: RawFd, want_read: bool, deadline: Instant) -> io::Result<()> {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"));
        }
        let remaining = deadline - now;
        // Round up so a sub-millisecond budget still polls once instead of
        // spinning with timeout 0.
        let ms = remaining.as_millis().min(i32::MAX as u128) as i32;
        let ms = if remaining > Duration::from_millis(ms as u64) {
            ms.saturating_add(1)
        } else {
            ms.max(1)
        };
        let mut pfd = ffi::PollFd {
            fd,
            events: if want_read { ffi::POLLIN } else { ffi::POLLOUT },
            revents: 0,
        };
        // SAFETY: one valid PollFd for the duration of the call.
        let rc = unsafe { ffi::poll(&mut pfd, 1, ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        if rc > 0 {
            // Readable, writable, error, or hangup: in every case the
            // following read/write will resolve it without blocking.
            return Ok(());
        }
        // rc == 0: poll timed out; loop re-checks the deadline and exits
        // via the TimedOut branch above.
    }
}

/// Read some bytes from a **non-blocking** socket, waiting (via `poll`)
/// until readable but never past `deadline`. Returns `TimedOut` on
/// expiry, so a stalled peer can never hold the connection longer than
/// the caller's request deadline.
#[cfg(unix)]
pub(crate) fn read_deadline<S>(stream: &mut S, buf: &mut [u8], deadline: Instant) -> io::Result<usize>
where
    S: Read + std::os::unix::io::AsRawFd,
{
    loop {
        match stream.read(buf) {
            Ok(n) => return Ok(n),
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                wait_fd(stream.as_raw_fd(), true, deadline)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write all of `bytes` to a **non-blocking** socket, waiting (via `poll`)
/// for writability but never past `deadline`.
#[cfg(unix)]
pub(crate) fn write_all_deadline<S>(stream: &mut S, bytes: &[u8], deadline: Instant) -> io::Result<()>
where
    S: Write + std::os::unix::io::AsRawFd,
{
    let mut written = 0;
    while written < bytes.len() {
        match stream.write(&bytes[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket closed mid-write",
                ));
            }
            Ok(n) => written += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                wait_fd(stream.as_raw_fd(), false, deadline)?;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// Non-unix fallback: no `poll`, so approximate the deadline with socket
// timeouts on a *blocking* socket. Only compiled on platforms the
// workspace doesn't target for production serving.
#[cfg(not(unix))]
pub(crate) fn read_deadline<S: Read>(
    stream: &mut S,
    buf: &mut [u8],
    _deadline: Instant,
) -> io::Result<usize> {
    read_retry(stream, buf)
}

#[cfg(not(unix))]
pub(crate) fn write_all_deadline<S: Write>(
    stream: &mut S,
    bytes: &[u8],
    _deadline: Instant,
) -> io::Result<()> {
    stream.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpStream, TcpListener};

    #[test]
    fn bind_reuseaddr_yields_working_listener() {
        let listener = bind_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            s.write_all(b"ok").expect("write");
        });
        let mut c = TcpStream::connect(addr).expect("connect");
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).expect("read");
        assert_eq!(buf, b"ok");
        t.join().expect("join");
    }

    #[test]
    fn bind_reuseaddr_allows_immediate_rebind() {
        // Bind, connect (so the listener socket sees traffic), drop, and
        // immediately re-bind the same port. Without SO_REUSEADDR this
        // flakes on EADDRINUSE while TIME_WAIT lingers.
        let listener = bind_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let c = TcpStream::connect(addr).expect("connect");
        let (s, _) = listener.accept().expect("accept");
        drop(s);
        drop(c);
        drop(listener);
        let again = bind_reuseaddr(&addr.to_string()).expect("rebind");
        assert_eq!(again.local_addr().expect("addr").port(), addr.port());
    }

    #[cfg(unix)]
    #[test]
    fn deadline_read_times_out_on_stalled_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (_held, _) = listener.accept().expect("accept");
        let mut client = client;
        let mut buf = [0u8; 16];
        let started = Instant::now();
        let deadline = started + Duration::from_millis(80);
        let err = read_deadline(&mut client, &mut buf, deadline).expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(70), "returned early: {waited:?}");
        assert!(waited < Duration::from_secs(2), "overslept: {waited:?}");
    }

    #[cfg(unix)]
    #[test]
    fn deadline_read_returns_data_when_available() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (mut server, _) = listener.accept().expect("accept");
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            server.write_all(b"late").expect("write");
        });
        let mut client = client;
        let mut buf = [0u8; 16];
        let deadline = Instant::now() + Duration::from_secs(5);
        let n = read_deadline(&mut client, &mut buf, deadline).expect("read");
        assert_eq!(&buf[..n], b"late");
    }

    #[test]
    fn mapping_round_trips_and_survives_rename_over() {
        let dir = std::env::temp_dir().join(format!("pipefail_sys_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).expect("write");

        let map = Mapping::map_path(&path).expect("map");
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.bytes().as_ptr() as usize % 8, 0, "base must be 8-aligned");

        // Rename a new file over the mapped one: the mapping still sees the
        // old inode's bytes — the atomic-publish property reload relies on.
        let tmp = dir.join("data.bin.tmp");
        std::fs::write(&tmp, b"replaced").expect("write replacement");
        std::fs::rename(&tmp, &path).expect("rename over");
        assert_eq!(map.bytes(), &payload[..]);

        // Empty files map (trivially) without error.
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").expect("write empty");
        let map = Mapping::map_path(&empty).expect("map empty");
        assert!(map.bytes().is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_readable_socket() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let epoll = Epoll::new().expect("epoll");
        epoll
            .add(server.as_raw_fd(), ep::EPOLLIN, 42)
            .expect("add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing readable yet.
        let n = epoll.wait(&mut events, 0).expect("wait");
        assert_eq!(n, 0);

        client.write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 42);
        assert_ne!({ ev.events } & ep::EPOLLIN, 0);
    }
}
