//! Snapshot hot-reload: an mtime-polling watcher that swaps shard scorers.
//!
//! Long-horizon deployments re-fit models as new failure records arrive; a
//! serving process must absorb the refreshed snapshots without a restart or
//! a pause. One watcher thread owns a **per-shard** change stamp (mtime,
//! length, and — on Unix — inode) and polls every watched snapshot file
//! every [`ServerConfig::reload_poll_secs`] seconds; on change it re-runs
//! the *strict* `pipefail_core::snapshot` loader for just the shards that
//! changed and — only on a clean load — swaps that shard's [`Scorer`]
//! behind its `RwLock<Arc<..>>`. One region's refresh never blocks or
//! invalidates the others: in-flight requests keep the `Arc` they already
//! cloned, sibling shards are untouched, and each shard's stamp advances
//! independently. Every swap (and degrade/heal) also bumps that shard's
//! epoch counter (`Shard::epoch` via [`crate::shards`]), which is what
//! invalidates exactly the affected entries in the result cache
//! (`crate::cache`) — reload correctness and cache correctness are the
//! same atomic event, not two clocks to keep in sync.
//!
//! A corrupt or truncated replacement is rejected with a typed error,
//! logged, and counted in `pipefail_reload_failures_total` (and the
//! shard's own `pipefail_shard_reload_failures` series). What happens next
//! depends on the shard set's [`ReloadPolicy`]:
//!
//! * [`ReloadPolicy::KeepLastGood`] (single-snapshot mode): the previous
//!   scorer keeps serving every request, invisibly to clients.
//! * [`ReloadPolicy::Degrade`] (sharded mode): *that shard only* starts
//!   answering a typed `503` until a valid snapshot lands — a region
//!   silently pinned to last week's model while its siblings move on is
//!   the invisible failure mode sharded serving refuses. The shard heals
//!   on the next valid swap.
//!
//! ## Replace snapshots by atomic rename
//!
//! Publish a new snapshot by writing to a temporary file in the same
//! directory and `rename(2)`-ing it over the watched path. The stamp is
//! metadata, not content: an *in-place* rewrite that keeps the byte length
//! and lands within the filesystem's mtime granularity (a full second on
//! some filesystems) is undetectable, and a stamp taken mid-write can make
//! the watcher treat the half-written file as the settled version. A
//! rename is atomic (the watcher only ever sees the old or the complete
//! new file) and always changes the inode, so it is detected regardless of
//! mtime resolution. The strict loader makes a non-atomic copy merely
//! *delayed* (rejected, retried on the next stamp change) rather than
//! wrong — but rename makes it exact.
//!
//! The rename protocol is also what makes **memory-mapped** (v2) snapshot
//! reloads safe without any extra coordination here: the watcher calls the
//! same [`Scorer::load`], which maps the *new* inode; the old scorer's
//! mapping belongs to the old inode, whose pages stay valid until the last
//! in-flight request drops its `Arc<Scorer>` — at which point the mapping
//! is unmapped. Nothing ever rewrites a mapped file in place, so a served
//! request can never observe a torn snapshot (or fault on a truncated
//! one).
//!
//! [`ServerConfig::reload_poll_secs`]: crate::http::ServerConfig
//! [`ReloadPolicy`]: crate::shards::ReloadPolicy
//! [`ReloadPolicy::KeepLastGood`]: crate::shards::ReloadPolicy::KeepLastGood
//! [`ReloadPolicy::Degrade`]: crate::shards::ReloadPolicy::Degrade

use crate::http::ServeContext;
use crate::metrics::Metrics;
use crate::scorer::Scorer;
use crate::shards::ReloadPolicy;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

/// Change-detection stamp for a watched file: modification time, length,
/// and (on Unix) the inode — an atomic-rename replacement always allocates
/// a fresh inode, so it is detected even when mtime granularity and length
/// both collide. Any component changing (or the file appearing) triggers a
/// reload attempt; `None` means the file is currently absent or
/// unreadable. See the module docs: in-place same-length rewrites within
/// the mtime granularity are not detectable from metadata alone.
pub(crate) fn stamp(path: &Path) -> Option<(SystemTime, u64, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    #[cfg(unix)]
    let ino = std::os::unix::fs::MetadataExt::ino(&meta);
    #[cfg(not(unix))]
    let ino = 0u64;
    Some((meta.modified().ok()?, meta.len(), ino))
}

/// Sleep `total` in short slices so a shutdown is honored promptly.
pub(crate) fn sleep_interruptible(total: Duration, shutdown: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while !remaining.is_zero() && !shutdown.load(Ordering::SeqCst) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Spawn the watcher thread over every watched shard path. Each shard's
/// own snapshot path is watched; `override_path` (the legacy
/// `ServerConfig::snapshot_path`) stands in for the *first* shard when it
/// has none — exactly the single-snapshot configuration. Joined by
/// `ServerHandle::shutdown` via the shared shutdown flag.
pub(crate) fn spawn_watcher(
    ctx: Arc<ServeContext>,
    metrics: Arc<Metrics>,
    override_path: Option<PathBuf>,
    poll: Duration,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // The effective watch list, parallel to the shard set: a shard
        // without a path (built in-process) is simply never reloaded.
        let paths: Vec<Option<PathBuf>> = ctx
            .shards()
            .shards()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                shard
                    .path()
                    .map(Path::to_path_buf)
                    .or_else(|| if i == 0 { override_path.clone() } else { None })
            })
            .collect();
        let mut last: Vec<Option<(SystemTime, u64, u64)>> = paths
            .iter()
            .map(|p| p.as_deref().and_then(stamp))
            .collect();
        let policy = ctx.shards().policy();
        while !shutdown.load(Ordering::SeqCst) {
            sleep_interruptible(poll, &shutdown);
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            for (idx, path) in paths.iter().enumerate() {
                let Some(path) = path.as_deref() else { continue };
                let current = stamp(path);
                if current.is_none() || current == last[idx] {
                    continue;
                }
                last[idx] = current;
                let shard = &ctx.shards().shards()[idx];
                // Strict load first, swap only on success: requests racing
                // this reload either hold the old Arc or pick up the new
                // one whole.
                match Scorer::load(path) {
                    Ok(scorer) => {
                        let fresh = shard.swap(scorer);
                        metrics.shard_reload_ok(idx);
                        eprintln!(
                            "pipefail-serve: reloaded snapshot {}: shard {:?} now serving {}",
                            path.display(),
                            shard.key(),
                            fresh.describe()
                        );
                    }
                    Err(e) => {
                        metrics.shard_reload_failed(idx);
                        match policy {
                            ReloadPolicy::KeepLastGood => eprintln!(
                                "pipefail-serve: rejected snapshot {}: {e}; keeping previous scorer",
                                path.display()
                            ),
                            ReloadPolicy::Degrade => {
                                shard.degrade(e.to_string());
                                eprintln!(
                                    "pipefail-serve: rejected snapshot {}: {e}; shard {:?} degraded until a valid snapshot lands",
                                    path.display(),
                                    shard.key()
                                );
                            }
                        }
                    }
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_tracks_mtime_and_len() {
        let dir = std::env::temp_dir().join(format!("pipefail_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watched");
        assert_eq!(stamp(&path), None);
        std::fs::write(&path, b"one").unwrap();
        let first = stamp(&path).expect("file exists");
        assert_eq!(first.1, 3);
        std::fs::write(&path, b"longer").unwrap();
        let second = stamp(&path).expect("file exists");
        assert_ne!(first, second);

        // The documented publish protocol: same-length replacement via
        // atomic rename is detected (fresh inode) even if mtime
        // granularity and length both collide.
        #[cfg(unix)]
        {
            let tmp = dir.join("watched.tmp");
            std::fs::write(&tmp, b"LONGER").unwrap();
            std::fs::rename(&tmp, &path).unwrap();
            let third = stamp(&path).expect("file exists");
            assert_eq!(third.1, second.1, "same byte length by construction");
            assert_ne!(second.2, third.2, "rename must change the inode");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The worst-case publish race: a replacement with the *same byte
    /// length* whose mtime is pinned to the original's (as can happen when
    /// both writes land within one filesystem timestamp granule, within a
    /// single poll tick). mtime and length are then both blind; only the
    /// inode component of the stamp sees the atomic rename.
    #[test]
    #[cfg(unix)]
    fn stamp_catches_same_mtime_same_len_rename_by_inode() {
        let dir = std::env::temp_dir().join(format!(
            "pipefail_reload_inode_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watched");
        std::fs::write(&path, b"model v1").unwrap();
        let before = stamp(&path).expect("file exists");

        // Publish a same-length v2 by rename, then force its mtime to the
        // exact mtime of v1 — simulating a replacement inside one
        // timestamp granule.
        let tmp = dir.join("watched.tmp");
        std::fs::write(&tmp, b"model v2").unwrap();
        let original_mtime = before.0;
        let f = std::fs::File::options().append(true).open(&tmp).unwrap();
        f.set_modified(original_mtime).unwrap();
        drop(f);
        std::fs::rename(&tmp, &path).unwrap();

        let after = stamp(&path).expect("file exists");
        assert_eq!(after.0, before.0, "mtime pinned equal by construction");
        assert_eq!(after.1, before.1, "length equal by construction");
        assert_ne!(after.2, before.2, "the inode must differ after rename");
        assert_ne!(after, before, "the composite stamp detects the swap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sleep_interruptible_returns_early_on_shutdown() {
        let flag = AtomicBool::new(true);
        let start = std::time::Instant::now();
        sleep_interruptible(Duration::from_secs(30), &flag);
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
