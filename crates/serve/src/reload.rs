//! Snapshot hot-reload: an mtime-polling watcher that swaps the scorer.
//!
//! Long-horizon deployments re-fit models as new failure records arrive; a
//! serving process must absorb the refreshed snapshot without a restart or
//! a pause. The watcher thread polls the snapshot file's change stamp
//! (mtime, length, and — on Unix — inode) every
//! [`ServerConfig::reload_poll_secs`] seconds; on change it re-runs the
//! *strict* `pipefail_core::snapshot` loader and — only on a clean load —
//! swaps the [`Scorer`] behind the [`ServeContext`]'s `RwLock<Arc<..>>`.
//! In-flight requests keep the `Arc` they already cloned and finish on the
//! old scorer; a corrupt or truncated replacement is rejected with a typed
//! error, logged, and counted in `pipefail_reload_failures_total`, leaving
//! the previous scorer serving.
//!
//! ## Replace snapshots by atomic rename
//!
//! Publish a new snapshot by writing to a temporary file in the same
//! directory and `rename(2)`-ing it over the watched path. The stamp is
//! metadata, not content: an *in-place* rewrite that keeps the byte length
//! and lands within the filesystem's mtime granularity (a full second on
//! some filesystems) is undetectable, and a stamp taken mid-write can make
//! the watcher treat the half-written file as the settled version. A
//! rename is atomic (the watcher only ever sees the old or the complete
//! new file) and always changes the inode, so it is detected regardless of
//! mtime resolution. The strict loader makes a non-atomic copy merely
//! *delayed* (rejected, retried on the next stamp change) rather than
//! wrong — but rename makes it exact.
//!
//! [`ServerConfig::reload_poll_secs`]: crate::http::ServerConfig

use crate::http::ServeContext;
use crate::metrics::Metrics;
use crate::scorer::Scorer;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

/// Change-detection stamp for the watched file: modification time, length,
/// and (on Unix) the inode — an atomic-rename replacement always allocates
/// a fresh inode, so it is detected even when mtime granularity and length
/// both collide. Any component changing (or the file appearing) triggers a
/// reload attempt; `None` means the file is currently absent or
/// unreadable. See the module docs: in-place same-length rewrites within
/// the mtime granularity are not detectable from metadata alone.
pub(crate) fn stamp(path: &Path) -> Option<(SystemTime, u64, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    #[cfg(unix)]
    let ino = std::os::unix::fs::MetadataExt::ino(&meta);
    #[cfg(not(unix))]
    let ino = 0u64;
    Some((meta.modified().ok()?, meta.len(), ino))
}

/// Sleep `total` in short slices so a shutdown is honored promptly.
fn sleep_interruptible(total: Duration, shutdown: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while !remaining.is_zero() && !shutdown.load(Ordering::SeqCst) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Spawn the watcher thread. Joined by `ServerHandle::shutdown` via the
/// shared shutdown flag.
pub(crate) fn spawn_watcher(
    ctx: Arc<ServeContext>,
    metrics: Arc<Metrics>,
    path: PathBuf,
    poll: Duration,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut last = stamp(&path);
        while !shutdown.load(Ordering::SeqCst) {
            sleep_interruptible(poll, &shutdown);
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let current = stamp(&path);
            if current.is_none() || current == last {
                continue;
            }
            last = current;
            // Strict load first, swap only on success: requests racing this
            // reload either hold the old Arc or pick up the new one whole.
            match Scorer::load(&path) {
                Ok(scorer) => {
                    let fresh = ctx.swap_scorer(scorer);
                    metrics.reload_ok();
                    eprintln!(
                        "pipefail-serve: reloaded snapshot {}: now serving {}",
                        path.display(),
                        fresh.describe()
                    );
                }
                Err(e) => {
                    metrics.reload_failed();
                    eprintln!(
                        "pipefail-serve: rejected snapshot {}: {e}; keeping previous scorer",
                        path.display()
                    );
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_tracks_mtime_and_len() {
        let dir = std::env::temp_dir().join(format!("pipefail_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watched");
        assert_eq!(stamp(&path), None);
        std::fs::write(&path, b"one").unwrap();
        let first = stamp(&path).expect("file exists");
        assert_eq!(first.1, 3);
        std::fs::write(&path, b"longer").unwrap();
        let second = stamp(&path).expect("file exists");
        assert_ne!(first, second);

        // The documented publish protocol: same-length replacement via
        // atomic rename is detected (fresh inode) even if mtime
        // granularity and length both collide.
        #[cfg(unix)]
        {
            let tmp = dir.join("watched.tmp");
            std::fs::write(&tmp, b"LONGER").unwrap();
            std::fs::rename(&tmp, &path).unwrap();
            let third = stamp(&path).expect("file exists");
            assert_eq!(third.1, second.1, "same byte length by construction");
            assert_ne!(second.2, third.2, "rename must change the inode");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sleep_interruptible_returns_early_on_shutdown() {
        let flag = AtomicBool::new(true);
        let start = std::time::Instant::now();
        sleep_interruptible(Duration::from_secs(30), &flag);
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
