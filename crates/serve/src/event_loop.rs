// The event-driven connection core: one loop thread multiplexes every
// connection over epoll while the existing worker pool keeps doing the
// CPU-bound scoring. Selected by `PIPEFAIL_HTTP_CORE=epoll` (the default
// on Linux); `PIPEFAIL_HTTP_CORE=threads` keeps the thread-per-connection
// core, and the two must answer byte-identically (proptest-asserted in
// tests/epoll_core.rs).
//
// Per-connection state machine (mirroring `http::handle_connection`
// decision-for-decision — same parse/drain accounting, same deadline
// arming, same metrics ordering):
//
//   accept ──▶ READING ──parse──▶ SCORING ──done──▶ WRITING ─┐
//                ▲  ▲            (worker pool)               │
//                │  └────────────── keep-alive ◀─────────────┘
//                │                                 close/cap/error ──▶ closed
//              IDLE (no request in flight; idle-timeout sweep)
//
// * READING: level-triggered `EPOLLIN`; bytes append to the connection
//   buffer and the incremental parser consumes exact byte counts, so
//   pipelined requests survive arbitrary fragmentation.
// * SCORING: the parsed request is on the worker pool; read interest is
//   dropped (natural TCP backpressure — the kernel buffer fills, the
//   client's send window closes) and the cumulative request deadline is
//   suspended, exactly like a busy worker in the threaded core.
// * WRITING: responses are queued to an output buffer drained on
//   `EPOLLOUT`, so a slow reader never blocks the loop; a write stalled
//   past the request timeout closes the connection like the threaded
//   core's write timeout.
// * Admission control: a bounded in-flight queue answers `429` +
//   `Retry-After` straight from the loop; at the connection cap the
//   longest-idle keep-alive connection is shed first, and only when no
//   connection is sheddable does a new client get `429` + close.
//
// Workers hand completed responses back through a `Mutex<Vec<Done>>`
// drained by the loop; a `UnixStream` socketpair is the wakeup pipe that
// pops the loop out of `epoll_wait` when a completion lands.

use crate::http::{json_str, RequestHandler, Response, ServerConfig};
use crate::metrics::{Metrics, Route};
use crate::parser::{self, ParseOutcome, ParsedRequest};
use crate::sys::{self, ep, EpollEvent};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;

/// Bytes one connection may read per readiness event before yielding to
/// its peers (level-triggered epoll re-arms it immediately).
const READ_BUDGET: usize = 256 * 1024;

/// A parsed request on its way to the worker pool.
struct Job {
    token: u64,
    req: ParsedRequest,
    /// Connection-close decision made at parse time (client preference or
    /// keep-alive cap), applied to the response by the worker.
    close: bool,
}

/// A serialized response on its way back from the worker pool.
struct Done {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Recycled response-frame buffers: workers pop one, render the response
/// into it, and the loop thread returns it once the frame is fully
/// written — so the steady-state request path (cache hits especially)
/// allocates no frame memory. Oversized buffers (a huge `/aggregate`
/// body) are dropped rather than pinned.
#[derive(Default)]
struct FramePool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

/// Buffers retained in the pool at most (≈ the worker+loop high-water
/// mark with headroom; beyond this, freeing beats hoarding).
const POOL_MAX_BUFS: usize = 128;
/// Largest buffer capacity worth recycling.
const POOL_MAX_BUF_BYTES: usize = 1 << 20;

impl FramePool {
    fn get(&self) -> Vec<u8> {
        self.bufs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_BUF_BYTES {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if bufs.len() < POOL_MAX_BUFS {
            bufs.push(buf);
        }
    }
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by the parser.
    buf: Vec<u8>,
    /// Serialized response bytes not yet written; drained on `EPOLLOUT`.
    out: Vec<u8>,
    out_pos: usize,
    /// Requests served on this connection (keep-alive cap accounting).
    served: usize,
    /// A request from this connection is at the workers.
    inflight: bool,
    close_after_write: bool,
    /// Cumulative per-request deadline, armed at the first byte of a
    /// request — identical accounting to the threaded core.
    request_started: Option<Instant>,
    idle_since: Instant,
    /// When the current output buffer was queued (write-stall deadline).
    write_started: Option<Instant>,
    /// Currently registered epoll interest bits.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            out: Vec::new(),
            out_pos: 0,
            served: 0,
            inflight: false,
            close_after_write: false,
            request_started: None,
            idle_since: Instant::now(),
            write_started: None,
            interest: ep::EPOLLIN,
        }
    }

    /// Truly idle: keep-alive between requests, nothing buffered either
    /// way — the only state safe to shed under connection pressure.
    fn sheddable(&self) -> bool {
        !self.inflight && self.out.is_empty() && self.buf.is_empty() && self.request_started.is_none()
    }
}

enum Flush {
    /// Output fully drained (or nothing to drain); connection still open.
    Flushed,
    /// Socket would block; `EPOLLOUT` is armed.
    Pending,
    /// Connection was closed (write error or `close_after_write`).
    Closed,
}

/// Spawn the event loop and its worker pool. Returns the loop thread (it
/// slots into `ServerHandle.accept`, and the shutdown protocol — set the
/// flag, poke the listener with a throwaway connect — wakes `epoll_wait`
/// just as it unblocks a threaded `accept`) plus the worker handles.
pub(crate) fn spawn(
    handler: Arc<dyn RequestHandler>,
    metrics: Arc<Metrics>,
    config: &ServerConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    listener.set_nonblocking(true)?;
    let epoll = sys::Epoll::new()?;
    epoll.add(listener.as_raw_fd(), ep::EPOLLIN, TOKEN_LISTENER)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    epoll.add(wake_rx.as_raw_fd(), ep::EPOLLIN, TOKEN_WAKE)?;

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let done: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    let pool = Arc::new(FramePool::default());

    let mut workers = Vec::with_capacity(config.resolved_workers());
    for _ in 0..config.resolved_workers() {
        let rx = Arc::clone(&job_rx);
        let handler = Arc::clone(&handler);
        let metrics = Arc::clone(&metrics);
        let done = Arc::clone(&done);
        let pool = Arc::clone(&pool);
        let wake = wake_tx.try_clone()?;
        workers.push(std::thread::spawn(move || {
            worker_loop(&rx, handler.as_ref(), &metrics, &done, &pool, wake)
        }));
    }
    drop(wake_tx); // workers hold the only write ends now

    let lp = EventLoop {
        epoll,
        listener,
        wake_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        job_tx,
        done,
        inflight: 0,
        metrics,
        shutdown,
        request_timeout: Duration::from_secs_f64(config.request_timeout_secs),
        idle_timeout: Duration::from_secs_f64(config.idle_timeout_secs),
        keepalive_requests: config.keepalive_requests,
        max_request_bytes: config.max_request_bytes,
        max_connections: config.max_connections,
        max_inflight: config.max_inflight,
        pool,
    };
    let loop_thread = std::thread::spawn(move || lp.run());
    Ok((loop_thread, workers))
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    handler: &dyn RequestHandler,
    metrics: &Metrics,
    done: &Mutex<Vec<Done>>,
    pool: &FramePool,
    mut wake: UnixStream,
) {
    loop {
        // Hold the lock only for the dequeue (see the threaded core).
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { break }; // loop exited, queue drained
        let started = Instant::now();
        let (route, mut response) = handler.handle(&job.req, metrics);
        response.close = job.close;
        // Observe before the response can reach the client — same ordering
        // invariant as the threaded core (a client that has read a response
        // must already see it counted in /metrics). The response is not
        // handed to the loop until after this.
        if route == Route::Healthz {
            metrics.healthz();
        } else {
            metrics.observe(route, response.status, started.elapsed());
        }
        // Render into a recycled frame buffer; the loop thread returns it
        // to the pool after the write drains.
        let mut bytes = pool.get();
        response.render_into(&mut bytes);
        {
            let mut guard = done.lock().unwrap_or_else(|p| p.into_inner());
            guard.push(Done {
                token: job.token,
                bytes,
                close: response.close,
            });
        }
        // Pop the loop out of epoll_wait. WouldBlock means the pipe is
        // already full of unread wakeups — the loop is waking regardless.
        let _ = wake.write(&[1u8]);
    }
}

struct EventLoop {
    epoll: sys::Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    job_tx: mpsc::Sender<Job>,
    done: Arc<Mutex<Vec<Done>>>,
    /// Requests currently at the worker pool (bounded by `max_inflight`).
    inflight: usize,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    request_timeout: Duration,
    idle_timeout: Duration,
    keepalive_requests: usize,
    max_request_bytes: usize,
    max_connections: usize,
    max_inflight: usize,
    /// Shared frame-buffer pool; drained output buffers go back here.
    pool: Arc<FramePool>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let timeout_ms = self.sweep_deadlines();
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in events.iter().take(n) {
                // Braced reads: fields of a packed struct must not be
                // referenced, only copied.
                let token = { ev.data };
                let bits = { ev.events };
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    _ => self.conn_ready(token, bits),
                }
            }
            self.drain_completions();
        }
        // Teardown: dropping `self` closes every connection and the
        // listener, and drops `job_tx` so workers drain the queue and exit.
    }

    /// Close expired connections (idle timeout, request deadline, stalled
    /// write) and return the `epoll_wait` timeout to the next deadline.
    fn sweep_deadlines(&mut self) -> i32 {
        let now = Instant::now();
        let mut soonest: Option<Duration> = None;
        let mut idle_expired: Vec<u64> = Vec::new();
        let mut request_expired: Vec<u64> = Vec::new();
        let mut write_expired: Vec<u64> = Vec::new();
        for (&token, conn) in &self.conns {
            // SCORING carries no deadline: the threaded core doesn't check
            // the budget while the handler runs either.
            if conn.inflight {
                continue;
            }
            let (deadline, bucket) = if !conn.out.is_empty() {
                let started = conn.write_started.unwrap_or(now);
                (started + self.request_timeout, &mut write_expired)
            } else if let Some(t0) = conn.request_started {
                (t0 + self.request_timeout, &mut request_expired)
            } else {
                (conn.idle_since + self.idle_timeout, &mut idle_expired)
            };
            if deadline <= now {
                bucket.push(token);
            } else {
                let left = deadline - now;
                soonest = Some(soonest.map_or(left, |s| s.min(left)));
            }
        }
        for token in idle_expired {
            // Idle keep-alive expiry closes quietly: nothing was asked.
            self.close_conn(token);
        }
        for token in write_expired {
            // A reader stalled past the request budget mid-response.
            self.close_conn(token);
        }
        for token in request_expired {
            self.answer_request_timeout(token);
        }
        match soonest {
            // No armed deadlines: sleep at most 1s so new deadlines from
            // freshly accepted connections are never starved of a sweep.
            None => 1000,
            Some(left) => (left.as_millis().min(999) as i32).saturating_add(1),
        }
    }

    /// `408` for a connection whose cumulative request deadline expired
    /// mid-request — byte- and metrics-identical to the threaded core's
    /// `answer_request_timeout`.
    fn answer_request_timeout(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut response = Response::json(408, "{\"error\":\"request timeout\"}");
        response.close = true;
        self.metrics.observe(Route::Other, 408, self.request_timeout);
        conn.out = response.to_bytes();
        conn.out_pos = 0;
        conn.write_started = Some(Instant::now());
        conn.close_after_write = true;
        conn.request_started = None;
        match self.flush(token) {
            Flush::Flushed | Flush::Pending | Flush::Closed => {}
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // The shutdown poke; drop it and let run() exit.
                        return;
                    }
                    self.admit(stream);
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // Same socket posture as the threaded core: latency-bound
        // request/response traffic, Nagle off.
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.max_connections > 0 && self.conns.len() >= self.max_connections {
            // Shed the longest-idle keep-alive connection first: an idle
            // client loses a socket it wasn't using, instead of a live
            // client losing service.
            let victim = self
                .conns
                .iter()
                .filter(|(_, c)| c.sheddable())
                .min_by_key(|(_, c)| c.idle_since)
                .map(|(&t, _)| t);
            match victim {
                Some(token) => {
                    self.close_conn(token);
                    self.metrics.connection_shed();
                }
                None => {
                    // Every connection is mid-request: admission control
                    // answers 429 instead of letting the accept queue starve.
                    self.metrics.admission_rejected();
                    self.metrics.observe(Route::Other, 429, Duration::ZERO);
                    let mut response = too_many_requests();
                    response.close = true;
                    let mut stream = stream;
                    let _ = stream.write_all(&response.to_bytes());
                    return; // drops (closes) the new socket
                }
            }
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), ep::EPOLLIN, token)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Conn::new(stream));
        self.metrics.conn_opened();
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => break, // all workers gone (shutdown)
                Ok(_) => continue,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn drain_completions(&mut self) {
        let completed = {
            let mut guard = self.done.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for done in completed {
            self.inflight = self.inflight.saturating_sub(1);
            let Some(conn) = self.conns.get_mut(&done.token) else {
                continue; // connection died while its request was scoring
            };
            conn.inflight = false;
            conn.close_after_write = done.close;
            conn.out = done.bytes;
            conn.out_pos = 0;
            conn.write_started = Some(Instant::now());
            self.pump(done.token);
        }
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        if bits & (ep::EPOLLHUP | ep::EPOLLERR) != 0 {
            // Peer hung up (FIN both ways, or RST): nothing this connection
            // owes can be delivered, and a graceful FIN-with-data arrives as
            // plain EPOLLIN, not HUP — safe to drop immediately.
            self.close_conn(token);
            return;
        }
        if bits & ep::EPOLLOUT != 0 {
            match self.flush(token) {
                Flush::Closed | Flush::Pending => return,
                Flush::Flushed => {
                    // Output drained: pipelined requests already buffered
                    // (or a fresh idle state) continue below.
                    if !self.pump(token) {
                        return;
                    }
                }
            }
        }
        if bits & ep::EPOLLIN != 0 {
            self.read_ready(token);
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 4096];
        let mut budget = READ_BUDGET;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // A dispatched or writing connection stops reading: interest is
            // off, the kernel buffer backs up, TCP backpressure reaches the
            // client — the same flow control a busy threaded worker exerts.
            if conn.inflight || !conn.out.is_empty() {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    if conn.request_started.is_none() {
                        conn.request_started = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if !self.pump(token) {
                        return;
                    }
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        // Yield to other connections; level-triggered epoll
                        // re-reports the remaining bytes immediately.
                        return;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Parse-and-dispatch: consume as many buffered requests as can make
    /// progress. Mirrors the threaded core's inner drain loop exactly —
    /// same `consumed`-byte accounting, deadline re-arming, keep-alive
    /// reuse counting, and cap handling. Returns `false` when the
    /// connection was closed.
    fn pump(&mut self, token: u64) -> bool {
        loop {
            match self.flush(token) {
                Flush::Closed => return false,
                Flush::Pending => return true, // EPOLLOUT armed; parsing resumes after drain
                Flush::Flushed => {}
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.inflight {
                return true; // one request at a time per connection
            }
            if conn.buf.is_empty() {
                self.update_interest(token);
                return true;
            }
            match parser::parse_request(&conn.buf, self.max_request_bytes) {
                Ok(ParseOutcome::Complete(req, consumed)) => {
                    conn.buf.drain(..consumed);
                    // Leftover bytes are the next pipelined request; its
                    // deadline starts now. An empty buffer disarms it.
                    conn.request_started = if conn.buf.is_empty() {
                        None
                    } else {
                        Some(Instant::now())
                    };
                    conn.served += 1;
                    if conn.served > 1 {
                        self.metrics.keepalive_reuse();
                    }
                    let at_cap = self.keepalive_requests > 0
                        && conn.served >= self.keepalive_requests;
                    let close = !req.wants_keep_alive() || at_cap;
                    if self.max_inflight > 0 && self.inflight >= self.max_inflight {
                        // The worker queue is at its bound: reject from the
                        // loop thread instead of queueing unbounded work.
                        self.metrics.admission_rejected();
                        self.metrics.observe(Route::Other, 429, Duration::ZERO);
                        let mut response = too_many_requests();
                        response.close = close;
                        conn.out = response.to_bytes();
                        conn.out_pos = 0;
                        conn.write_started = Some(Instant::now());
                        conn.close_after_write = close;
                        continue; // flush, then keep draining the buffer
                    }
                    self.inflight += 1;
                    conn.inflight = true;
                    let _ = self.job_tx.send(Job { token, req, close });
                    self.update_interest(token);
                    return true;
                }
                Ok(ParseOutcome::Incomplete) => {
                    self.update_interest(token);
                    return true;
                }
                Err(e) => {
                    // Broken framing: answer once, then close — the byte
                    // stream can no longer be trusted to align.
                    let mut response = Response::json(
                        e.status(),
                        format!("{{\"error\":{}}}", json_str(&e.to_string())),
                    );
                    response.close = true;
                    self.metrics.observe(Route::Other, response.status, Duration::ZERO);
                    conn.out = response.to_bytes();
                    conn.out_pos = 0;
                    conn.write_started = Some(Instant::now());
                    conn.close_after_write = true;
                    continue; // flush loop closes after the write drains
                }
            }
        }
    }

    /// Drain the output buffer as far as the socket allows.
    fn flush(&mut self, token: u64) -> Flush {
        let Some(conn) = self.conns.get_mut(&token) else {
            return Flush::Closed;
        };
        if conn.out.is_empty() {
            return Flush::Flushed;
        }
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return Flush::Closed;
                }
                Ok(n) => conn.out_pos += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.interest != ep::EPOLLOUT {
                        let _ = self.epoll.modify(
                            conn.stream.as_raw_fd(),
                            ep::EPOLLOUT,
                            token,
                        );
                        conn.interest = ep::EPOLLOUT;
                    }
                    return Flush::Pending;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return Flush::Closed;
                }
            }
        }
        // Fully written: hand the frame buffer back to the pool instead of
        // dropping it, so the next response renders allocation-free.
        let drained = std::mem::take(&mut conn.out);
        conn.out_pos = 0;
        conn.write_started = None;
        let close = conn.close_after_write;
        if !close {
            conn.idle_since = Instant::now();
        }
        self.pool.put(drained);
        if close {
            self.close_conn(token);
            return Flush::Closed;
        }
        Flush::Flushed
    }

    /// Reconcile the registered epoll interest with the connection state:
    /// `EPOLLOUT` while output is pending, `EPOLLIN` while idle or
    /// mid-parse, nothing while a request is at the workers (errors and
    /// hangups are always reported regardless).
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = if !conn.out.is_empty() {
            ep::EPOLLOUT
        } else if conn.inflight {
            0
        } else {
            ep::EPOLLIN
        };
        if desired != conn.interest {
            let _ = self
                .epoll
                .modify(conn.stream.as_raw_fd(), desired, token);
            conn.interest = desired;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.del(conn.stream.as_raw_fd());
            self.metrics.conn_closed();
            // `conn.stream` drops here, closing the socket.
        }
    }
}

/// The admission-control response: the client did nothing wrong, the
/// server is at capacity — come back shortly.
fn too_many_requests() -> Response {
    Response::json(429, "{\"error\":\"too many requests\"}").with_header("Retry-After", "1")
}
