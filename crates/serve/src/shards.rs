//! Shard-by-region serving: many per-region scorers behind one endpoint.
//!
//! The paper's method ranks pipes *per region/network* (metro water vs.
//! wastewater vs. regional bins), so a utility covering a whole metropolis
//! fits one model per region and wants all of them served from one
//! process. A [`ShardSet`] holds one [`Shard`] per region: each shard is
//! the familiar `RwLock<Arc<Scorer>>` hot-swap cell plus its own snapshot
//! path, so shards load, serve, reload, and fail independently.
//!
//! * **Loading** (`load_dir` / `load_paths`) strict-validates every
//!   snapshot **in parallel** on the caller's [`TaskPool`]; any corrupt
//!   file fails the whole startup with a typed error (a serving process
//!   never starts on bad data), reported deterministically (first failing
//!   path in input order, at any thread count).
//! * **Region-tagged queries** (`/top?region=R`, `/pipe?region=R&id=N`,
//!   `region=R`-prefixed `/batch` lines) route to one shard with zero
//!   cross-shard work — exactly the single-snapshot fast path.
//! * **Region-less `/top`** becomes a scatter-gather **global top-K**: each
//!   shard contributes its own (already sorted) top-K slice and
//!   [`merge_top_k`] k-way-merges them, so the global ranking costs
//!   O(shards · k) — the union of all shards is never materialised or
//!   re-sorted.
//! * **Hot-reload is per-shard**: one region's refresh never blocks or
//!   invalidates the others. Under [`ReloadPolicy::Degrade`] (the sharded
//!   default) a corrupt replacement marks *only that shard* unavailable
//!   (typed 503) until a valid snapshot lands, while every other region
//!   keeps serving; [`ReloadPolicy::KeepLastGood`] preserves the legacy
//!   single-snapshot behaviour of serving the previous model.
//!
//! ## Why the two reload policies differ
//!
//! A single-snapshot server has exactly one model: serving the last good
//! one through a botched publish beats serving nothing, so rejection is
//! silent-but-counted. In a sharded deployment the region's ranking is one
//! of many sibling artefacts refreshed together; a region silently pinned
//! to last week's model while its siblings move on is the *invisible*
//! failure mode, so the sharded default is to fail loudly — a typed 503
//! for that region only — until the publish is fixed. The shard heals the
//! moment a valid snapshot replaces the corrupt one.

use crate::scorer::{PipeRisk, RiskSlice, Scorer};
use crate::ServeError;
use pipefail_core::snapshot::SnapshotError;
use pipefail_par::TaskPool;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What a shard serves after its snapshot is replaced with a corrupt file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadPolicy {
    /// Keep answering from the last good scorer (legacy single-snapshot
    /// behaviour): a bad publish is rejected, counted, and retried on the
    /// next file change, invisibly to clients.
    KeepLastGood,
    /// Mark the shard unavailable: queries for that region answer a typed
    /// `503` until a valid snapshot lands, while every other shard keeps
    /// serving (the sharded default — see the module docs for why).
    Degrade,
}

/// The canonical routing key for a region name: lowercase with spaces
/// replaced by underscores — the same convention `pipefail generate` uses
/// for dataset directory names, so `"Region A"` is addressed as
/// `?region=region_a`. Keys are plain query-string/label-safe tokens; no
/// percent-decoding is needed anywhere.
pub fn region_key(region: &str) -> String {
    region.to_lowercase().replace(' ', "_")
}

/// A shard's swap cell: the active scorer plus an optional fault. The
/// scorer is always the *last good* model (so recovery and diagnostics
/// never lose it); `fault` is `Some` only under [`ReloadPolicy::Degrade`]
/// after a corrupt replacement, and makes the shard answer 503.
#[derive(Debug)]
struct ShardState {
    scorer: Arc<Scorer>,
    fault: Option<String>,
}

/// One region's independently loaded, served, and reloaded scorer.
#[derive(Debug)]
pub struct Shard {
    key: String,
    path: Option<PathBuf>,
    state: RwLock<ShardState>,
    /// Monotonic generation of this shard's observable state. Starts at 1
    /// and is bumped by every [`Shard::swap`] *and* every
    /// [`Shard::degrade`] — any transition that can change what this shard
    /// answers. The result cache keys entries by this value, so a bump
    /// makes every cached body for the old state unreachable without any
    /// TTL or explicit flush.
    epoch: AtomicU64,
}

impl Shard {
    fn new(scorer: Scorer, path: Option<PathBuf>) -> Self {
        Self {
            key: region_key(scorer.region()),
            path,
            state: RwLock::new(ShardState {
                scorer: Arc::new(scorer),
                fault: None,
            }),
            epoch: AtomicU64::new(1),
        }
    }

    /// The routing key ([`region_key`] of the snapshot's region).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The snapshot file this shard was loaded from (watched for reload),
    /// if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The active scorer if the shard is serving, or the degradation
    /// reason if a corrupt hot-swap took it out
    /// ([`ReloadPolicy::Degrade`] only).
    pub fn serving(&self) -> Result<Arc<Scorer>, String> {
        let state = self.state.read().unwrap_or_else(|p| p.into_inner());
        match &state.fault {
            None => Ok(Arc::clone(&state.scorer)),
            Some(reason) => Err(reason.clone()),
        }
    }

    /// The last successfully loaded scorer, whether or not the shard is
    /// currently degraded. Never fails: every shard is constructed from a
    /// valid scorer and swaps only keep valid ones.
    pub fn last_good(&self) -> Arc<Scorer> {
        let state = self.state.read().unwrap_or_else(|p| p.into_inner());
        Arc::clone(&state.scorer)
    }

    /// The degradation reason, if the shard is currently answering 503.
    pub fn fault(&self) -> Option<String> {
        let state = self.state.read().unwrap_or_else(|p| p.into_inner());
        state.fault.clone()
    }

    /// Atomically install a freshly validated scorer, clearing any fault
    /// (a valid publish heals a degraded shard). Returns the new handle.
    ///
    /// The epoch is bumped *after* the state write unlocks: a request that
    /// raced the swap and read the old epoch can at worst write a cache
    /// entry under a key that every post-swap lookup has already moved
    /// past (the store path additionally revalidates the epoch, see
    /// `cache.rs`). Epoch keys only ever move forward.
    pub(crate) fn swap(&self, scorer: Scorer) -> Arc<Scorer> {
        let fresh = Arc::new(scorer);
        let mut state = self.state.write().unwrap_or_else(|p| p.into_inner());
        state.scorer = Arc::clone(&fresh);
        state.fault = None;
        drop(state);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        fresh
    }

    /// Mark the shard unavailable ([`ReloadPolicy::Degrade`] after a
    /// corrupt replacement). The last good scorer is retained for
    /// diagnostics but no longer served. Bumps the epoch: cached bodies
    /// from the healthy state must not outlive the degradation.
    pub(crate) fn degrade(&self, reason: String) {
        let mut state = self.state.write().unwrap_or_else(|p| p.into_inner());
        state.fault = Some(reason);
        drop(state);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The shard's current state generation (see the `epoch` field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// One entry of a scatter-gathered global ranking: which shard the pipe
/// came from (index into [`ShardSet::shards`]) and its risk with the
/// *shard-local* rank (the global rank is the entry's position in the
/// merged output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRisk {
    /// Index of the contributing shard.
    pub shard: usize,
    /// The pipe's risk; `rank` is its rank *within its shard*.
    pub risk: PipeRisk,
}

/// An immutable set of per-region shards, sorted by routing key.
#[derive(Debug)]
pub struct ShardSet {
    /// Sorted by `key` — lookup is binary search, iteration order is
    /// deterministic, and the scatter-gather tie-break follows this order.
    shards: Vec<Shard>,
    policy: ReloadPolicy,
}

impl ShardSet {
    /// A one-shard set with legacy single-snapshot semantics
    /// ([`ReloadPolicy::KeepLastGood`]).
    pub fn single(scorer: Scorer) -> Self {
        Self {
            shards: vec![Shard::new(scorer, None)],
            policy: ReloadPolicy::KeepLastGood,
        }
    }

    /// Build a sharded set from already-loaded scorers (no watched paths).
    /// Fails on an empty list or on two scorers mapping to the same
    /// region key.
    pub fn from_scorers(scorers: Vec<Scorer>) -> Result<Self, ServeError> {
        Self::assemble(scorers.into_iter().map(|s| (s, None)).collect())
    }

    /// Load and strict-validate one snapshot per path, **in parallel** on
    /// `pool`. Any failure aborts the whole load with a typed error naming
    /// the first failing path *in input order* (deterministic at any
    /// thread count); duplicate region keys are rejected.
    pub fn load_paths(paths: &[PathBuf], pool: &TaskPool) -> Result<Self, ServeError> {
        if paths.is_empty() {
            return Err(ServeError::BadConfig("no snapshot paths to load".into()));
        }
        let loaded: Vec<Result<Scorer, SnapshotError>> =
            pool.run(paths.len(), |i| Scorer::load(&paths[i]));
        let mut shards = Vec::with_capacity(paths.len());
        for (path, result) in paths.iter().zip(loaded) {
            match result {
                Ok(scorer) => shards.push((scorer, Some(path.clone()))),
                Err(error) => {
                    return Err(ServeError::Shard {
                        path: path.display().to_string(),
                        error,
                    });
                }
            }
        }
        Self::assemble(shards)
    }

    /// Load every `*.pfsnap` file in `dir` (sorted by file name for a
    /// deterministic load order) as one shard each, in parallel on `pool`.
    pub fn load_dir(dir: &Path, pool: &TaskPool) -> Result<Self, ServeError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| ServeError::Io(format!("reading snapshot dir {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "pfsnap"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(ServeError::BadConfig(format!(
                "no *.pfsnap snapshots in {}",
                dir.display()
            )));
        }
        Self::load_paths(&paths, pool)
    }

    fn assemble(scorers: Vec<(Scorer, Option<PathBuf>)>) -> Result<Self, ServeError> {
        if scorers.is_empty() {
            return Err(ServeError::BadConfig("a shard set needs at least one shard".into()));
        }
        let mut shards: Vec<Shard> = scorers
            .into_iter()
            .map(|(scorer, path)| Shard::new(scorer, path))
            .collect();
        shards.sort_by(|a, b| a.key.cmp(&b.key));
        if let Some(w) = shards.windows(2).find(|w| w[0].key == w[1].key) {
            return Err(ServeError::BadConfig(format!(
                "two snapshots map to the same region key {:?} (regions {:?} and {:?})",
                w[0].key,
                w[0].last_good().region(),
                w[1].last_good().region(),
            )));
        }
        Ok(Self {
            shards,
            policy: ReloadPolicy::Degrade,
        })
    }

    /// Number of shards (always ≥ 1).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Never true — constructors reject empty sets — but provided for the
    /// usual container idiom.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// True when region-less `/pipe` and `/top` can route unambiguously
    /// (exactly one shard).
    pub fn is_single(&self) -> bool {
        self.shards.len() == 1
    }

    /// What a corrupt hot-swap does to a shard.
    pub fn policy(&self) -> ReloadPolicy {
        self.policy
    }

    /// The shards, sorted by routing key.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Routing keys in shard order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.shards.iter().map(|s| s.key())
    }

    /// Index of the shard serving `key` (binary search over the sorted
    /// keys), or `None` for an unknown region.
    pub fn index_of(&self, key: &str) -> Option<usize> {
        self.shards
            .binary_search_by(|s| s.key.as_str().cmp(key))
            .ok()
    }

    /// The shard serving `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Shard> {
        self.index_of(key).map(|i| &self.shards[i])
    }

    /// Sum of every shard's [`Shard::epoch`] — a fleet-wide state
    /// generation. Each shard's epoch is monotonic, so the sum is too:
    /// any swap, degrade, or heal anywhere in the set changes this value
    /// and retires every cached fleet-scope artefact (global top-K merge,
    /// `/aggregate`) keyed under the previous one.
    pub fn fleet_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch()).sum()
    }

    /// Routing keys of shards currently refusing requests (Degrade policy
    /// after a failed reload), in shard order. Empty when fully healthy —
    /// the `/healthz` answer is derived from this.
    pub fn degraded_keys(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter(|s| s.serving().is_err())
            .map(|s| s.key().to_string())
            .collect()
    }

    /// Scatter-gather global top-K: every *serving* shard contributes its
    /// own top-K slice and the slices are k-way merged. Errs with the keys
    /// of degraded shards — a global ranking computed over a partial fleet
    /// would be silently wrong, so it is refused loudly instead.
    ///
    /// The merged prefix is byte-identical to the top-K of one monolithic
    /// snapshot holding the same pipes (shard-order concatenation, stable
    /// descending sort) — ties break to the lower shard index, then the
    /// lower shard-local rank, exactly like `RiskRanking::new`'s stable
    /// sort. Property-tested in `tests/sharded_serving.rs`.
    pub fn global_top_k(&self, k: usize) -> Result<Vec<GlobalRisk>, Vec<String>> {
        let mut tops: Vec<Arc<Scorer>> = Vec::with_capacity(self.shards.len());
        let mut degraded = Vec::new();
        for shard in &self.shards {
            match shard.serving() {
                Ok(scorer) => tops.push(scorer),
                Err(_) => degraded.push(shard.key.clone()),
            }
        }
        if !degraded.is_empty() {
            return Err(degraded);
        }
        let tables: Vec<RiskSlice<'_>> = tops.iter().map(|s| s.top_k(k)).collect();
        Ok(merge_top_k(&tables, k))
    }
}

/// Bounded k-way merge of per-shard descending rankings: pick the best
/// head among the tables `k` times. Ties break to the lowest table index,
/// which makes the output identical to a stable descending sort of the
/// tables' concatenation — without ever materialising or re-sorting that
/// union. Cost is O(tables · k) comparisons; each table only ever
/// contributes its own first `k` entries.
///
/// # Examples
///
/// Two shards' descending rankings merge into one global top-3; the tie
/// at `0.5` breaks to the lower table index:
///
/// ```
/// use pipefail_network::ids::PipeId;
/// use pipefail_serve::{merge_top_k, PipeRisk};
///
/// let a = [
///     PipeRisk { pipe: PipeId(0), score: 0.9, rank: 0 },
///     PipeRisk { pipe: PipeId(1), score: 0.5, rank: 1 },
/// ];
/// let b = [PipeRisk { pipe: PipeId(7), score: 0.5, rank: 0 }];
/// let merged = merge_top_k(&[a[..].into(), b[..].into()], 3);
/// let order: Vec<(usize, u32)> =
///     merged.iter().map(|g| (g.shard, g.risk.pipe.0)).collect();
/// assert_eq!(order, vec![(0, 0), (0, 1), (1, 7)]);
/// ```
pub fn merge_top_k(tables: &[RiskSlice<'_>], k: usize) -> Vec<GlobalRisk> {
    let total: usize = tables.iter().map(|t| t.len()).sum();
    let mut heads = vec![0usize; tables.len()];
    let mut out = Vec::with_capacity(k.min(total));
    while out.len() < k {
        let mut best: Option<usize> = None;
        for (s, table) in tables.iter().enumerate() {
            let Some(candidate) = table.get(heads[s]) else { continue };
            // Strict `>` keeps the earliest table on ties — the stable-sort
            // order of the concatenated union.
            let beats = match best {
                None => true,
                Some(b) => candidate.score > tables[b].at(heads[b]).score,
            };
            if beats {
                best = Some(s);
            }
        }
        let Some(s) = best else { break };
        out.push(GlobalRisk { shard: s, risk: tables[s].at(heads[s]) });
        heads[s] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};
    use pipefail_core::snapshot::Snapshot;
    use pipefail_network::ids::PipeId;

    fn scorer(region: &str, scores: &[(u32, f64)]) -> Scorer {
        let ranking = RiskRanking::new(
            scores
                .iter()
                .map(|&(pipe, score)| RiskScore { pipe: PipeId(pipe), score })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", region, 7, &ranking))
    }

    #[test]
    fn region_key_is_lowercase_underscored() {
        assert_eq!(region_key("Region A"), "region_a");
        assert_eq!(region_key("Metro Water North"), "metro_water_north");
        assert_eq!(region_key("already_ok"), "already_ok");
    }

    #[test]
    fn shards_sort_by_key_and_route_by_binary_search() {
        let set = ShardSet::from_scorers(vec![
            scorer("Region B", &[(0, 1.0)]),
            scorer("Region A", &[(0, 2.0)]),
            scorer("Region C", &[(0, 3.0)]),
        ])
        .expect("distinct regions");
        let keys: Vec<&str> = set.keys().collect();
        assert_eq!(keys, ["region_a", "region_b", "region_c"]);
        assert_eq!(set.index_of("region_b"), Some(1));
        assert_eq!(set.index_of("region_z"), None);
        assert_eq!(set.get("region_c").unwrap().last_good().region(), "Region C");
        assert!(!set.is_single());
        assert_eq!(set.policy(), ReloadPolicy::Degrade);
    }

    #[test]
    fn duplicate_region_keys_are_rejected() {
        let err = ShardSet::from_scorers(vec![
            scorer("Region A", &[(0, 1.0)]),
            scorer("region a", &[(1, 1.0)]), // same key after sanitising
        ])
        .expect_err("duplicate key");
        assert!(matches!(err, ServeError::BadConfig(ref m) if m.contains("region_a")), "{err}");
    }

    #[test]
    fn empty_sets_are_rejected() {
        assert!(matches!(
            ShardSet::from_scorers(vec![]),
            Err(ServeError::BadConfig(_))
        ));
        assert!(matches!(
            ShardSet::load_paths(&[], &TaskPool::serial()),
            Err(ServeError::BadConfig(_))
        ));
    }

    #[test]
    fn single_uses_keep_last_good_policy() {
        let set = ShardSet::single(scorer("Region A", &[(0, 1.0)]));
        assert!(set.is_single());
        assert_eq!(set.policy(), ReloadPolicy::KeepLastGood);
        assert_eq!(set.keys().collect::<Vec<_>>(), ["region_a"]);
    }

    #[test]
    fn degrade_then_heal_round_trips() {
        let set = ShardSet::from_scorers(vec![
            scorer("A", &[(0, 1.0)]),
            scorer("B", &[(0, 2.0)]),
        ])
        .expect("set");
        let a = set.get("a").unwrap();
        assert!(a.serving().is_ok());
        a.degrade("checksum mismatch".into());
        assert_eq!(a.serving().expect_err("degraded"), "checksum mismatch");
        assert_eq!(a.fault().as_deref(), Some("checksum mismatch"));
        // The last good scorer is retained while degraded.
        assert_eq!(a.last_good().region(), "A");
        // Global top-K refuses a partial fleet, naming the degraded shard.
        assert_eq!(set.global_top_k(3).expect_err("degraded"), vec!["a".to_string()]);
        // The sibling shard is untouched.
        assert!(set.get("b").unwrap().serving().is_ok());
        // A valid swap heals the shard.
        a.swap(scorer("A", &[(5, 9.0)]));
        assert!(a.serving().is_ok());
        assert_eq!(a.fault(), None);
        assert_eq!(set.global_top_k(1).expect("healed")[0].risk.pipe, PipeId(5));
    }

    #[test]
    fn epochs_advance_on_every_swap_degrade_and_heal() {
        let set = ShardSet::from_scorers(vec![
            scorer("A", &[(0, 1.0)]),
            scorer("B", &[(0, 2.0)]),
        ])
        .expect("set");
        let a = set.get("a").unwrap();
        assert_eq!(a.epoch(), 1);
        assert_eq!(set.fleet_epoch(), 2);
        // A swap retires cached bodies for the old model…
        a.swap(scorer("A", &[(5, 9.0)]));
        assert_eq!(a.epoch(), 2);
        // …a degrade retires cached bodies for the healthy state…
        a.degrade("bad bytes".into());
        assert_eq!(a.epoch(), 3);
        // …and the heal retires any (nonexistent) degraded-state entries.
        a.swap(scorer("A", &[(6, 9.0)]));
        assert_eq!(a.epoch(), 4);
        // The sibling never moved; the fleet epoch tracked every change.
        assert_eq!(set.get("b").unwrap().epoch(), 1);
        assert_eq!(set.fleet_epoch(), 5);
    }

    #[test]
    fn merge_matches_stable_sort_of_concatenation_with_ties() {
        // Scores tie across AND within shards; the merge must reproduce the
        // stable descending sort of the shard-order concatenation.
        let a = scorer("A", &[(0, 0.5), (1, 0.5), (2, 0.1)]);
        let b = scorer("B", &[(10, 0.9), (11, 0.5), (12, 0.5)]);
        let tables = [a.top_k(10), b.top_k(10)];
        let merged = merge_top_k(&tables, 10);
        let got: Vec<(usize, u32)> = merged.iter().map(|g| (g.shard, g.risk.pipe.0)).collect();
        // 0.9 first (shard B), then the 0.5 tie block in (shard, rank)
        // order: A/0, A/1, B/11, B/12, then 0.1.
        assert_eq!(got, [(1, 10), (0, 0), (0, 1), (1, 11), (1, 12), (0, 2)]);
        // k truncates the merge, not the tables.
        assert_eq!(merge_top_k(&tables, 2).len(), 2);
        assert_eq!(merge_top_k(&tables, 0).len(), 0);
        assert_eq!(merge_top_k(&[], 5).len(), 0);
    }

    #[test]
    fn load_paths_is_parallel_deterministic_and_strict() {
        let dir = std::env::temp_dir().join(format!("pipefail_shards_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (i, region) in ["North", "South", "East", "West"].iter().enumerate() {
            let path = dir.join(format!("{region}.pfsnap"));
            let ranking = RiskRanking::new(vec![RiskScore {
                pipe: PipeId(i as u32),
                score: 1.0,
            }]);
            Snapshot::new("DPMHBP", *region, i as u64, &ranking)
                .save(&path)
                .unwrap();
            paths.push(path);
        }
        // Same shard set at any thread count.
        for threads in [1, 2, 8] {
            let set = ShardSet::load_paths(&paths, &TaskPool::new(threads)).expect("loads");
            assert_eq!(
                set.keys().collect::<Vec<_>>(),
                ["east", "north", "south", "west"]
            );
            assert_eq!(set.get("south").unwrap().path(), Some(paths[1].as_path()));
        }
        // Directory discovery finds the same files (plus ignores strays).
        std::fs::write(dir.join("README.txt"), b"not a snapshot").unwrap();
        let set = ShardSet::load_dir(&dir, &TaskPool::new(4)).expect("dir loads");
        assert_eq!(set.len(), 4);
        // One corrupt file fails the whole load with a typed error naming
        // the earliest failing path in input order.
        std::fs::write(&paths[2], b"PFSNAPgarbage").unwrap();
        let err = ShardSet::load_paths(&paths, &TaskPool::new(4)).expect_err("corrupt");
        match err {
            ServeError::Shard { path, .. } => assert_eq!(path, paths[2].display().to_string()),
            other => panic!("expected ServeError::Shard, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
