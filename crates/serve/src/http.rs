//! A minimal hand-rolled HTTP/1.1 server for the scoring engine.
//!
//! No async runtime, no HTTP crate — a `std::net::TcpListener`, an accept
//! thread, and a fixed pool of worker threads draining a channel, in the
//! same spirit as the workspace's hand-rolled CSV and SVG writers. Scope is
//! deliberately narrow: `Connection: close` per request (keep-alive and
//! pipelining are roadmap items), one-shot request/response, bounded head
//! and body sizes, and per-request read/write timeouts wired from the same
//! `PIPEFAIL_*` environment-knob idiom as the experiment runner's
//! wall-clock budgets.
//!
//! ## Routes
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /health` | liveness probe |
//! | `GET /top?k=N` | the N riskiest pipes, descending (default 10) |
//! | `GET /pipe?id=N` | one pipe's score and rank |
//! | `GET /model` | snapshot identity + posterior-summary inventory |
//! | `POST /batch` | one query per line (`top K` / `pipe ID`), fanned over the task pool |
//! | `GET /riskmap.svg` | Fig 18.9 risk map (only when a dataset is loaded) |
//! | `GET /metrics` | Prometheus text exposition |

use crate::metrics::{Metrics, Route};
use crate::scorer::{PipeRisk, Query, QueryResult, Scorer};
use crate::ServeError;
use pipefail_network::dataset::Dataset;
use pipefail_network::ids::PipeId;
use pipefail_network::split::TrainTestSplit;
use pipefail_par::TaskPool;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable: per-request socket timeout in seconds (same
/// parsing rules as `PIPEFAIL_MODEL_BUDGET_SECS` — positive float, bad
/// values fall back to the default).
pub const HTTP_TIMEOUT_ENV: &str = "PIPEFAIL_HTTP_TIMEOUT_SECS";

/// Environment variable: worker-thread count (`0`/unset = auto).
pub const HTTP_WORKERS_ENV: &str = "PIPEFAIL_HTTP_WORKERS";

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port `0` asks the OS for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads; `0` = auto (available parallelism, capped at 8).
    pub workers: usize,
    /// Per-request read/write timeout in seconds — the serving analogue of
    /// the fit engine's wall-clock budget: a stalled client is cut off, it
    /// cannot pin a worker.
    pub request_timeout_secs: f64,
    /// Maximum accepted request size (head + body) in bytes.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            request_timeout_secs: 10.0,
            max_request_bytes: 64 * 1024,
        }
    }
}

impl ServerConfig {
    /// Defaults overridden from the environment
    /// ([`HTTP_TIMEOUT_ENV`], [`HTTP_WORKERS_ENV`]), mirroring
    /// `RetryPolicy::from_env`: unset or unparsable values keep the
    /// defaults, timeouts must be positive.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(t) = std::env::var(HTTP_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|t| *t > 0.0)
        {
            cfg.request_timeout_secs = t;
        }
        if let Some(w) = std::env::var(HTTP_WORKERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.workers = w;
        }
        cfg
    }

    /// This configuration with a different bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(2, |n| n.get()).min(8)
        }
    }
}

/// Everything a worker needs to answer queries: the scorer, a task pool
/// for `/batch` fan-out, and an optional dataset for the risk-map route.
#[derive(Debug)]
pub struct ServeContext {
    scorer: Scorer,
    pool: TaskPool,
    dataset: Option<Dataset>,
}

impl ServeContext {
    /// Context serving `scorer`, batching over `PIPEFAIL_THREADS`.
    pub fn new(scorer: Scorer) -> Self {
        Self {
            scorer,
            pool: TaskPool::from_env(),
            dataset: None,
        }
    }

    /// This context with the dataset the model was fitted on, enabling
    /// `GET /riskmap.svg` (the Fig 18.9 renderer of `pipefail-eval` over
    /// the served ranking).
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// This context with an explicit batch task pool.
    pub fn with_pool(mut self, pool: TaskPool) -> Self {
        self.pool = pool;
        self
    }

    /// The scoring engine being served.
    pub fn scorer(&self) -> &Scorer {
        &self.scorer
    }
}

/// Handle to a running server: its bound address, shared metrics, and the
/// shutdown switch.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live request metrics (also served at `/metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish, join all threads. Idempotent via `Drop` (calling this
    /// consumes the handle).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind, spawn the accept thread and worker pool, and return immediately.
pub fn serve(ctx: Arc<ServeContext>, config: &ServerConfig) -> Result<ServerHandle, ServeError> {
    if config.request_timeout_secs <= 0.0 {
        return Err(ServeError::BadConfig(
            "request_timeout_secs must be positive".into(),
        ));
    }
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(Metrics::new());

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(config.resolved_workers());
    for _ in 0..config.resolved_workers() {
        let rx = Arc::clone(&rx);
        let ctx = Arc::clone(&ctx);
        let metrics = Arc::clone(&metrics);
        let config = config.clone();
        workers.push(std::thread::spawn(move || loop {
            // Hold the lock only for the dequeue; recover from a poisoned
            // lock (a panicking sibling) rather than dying with it.
            let stream = {
                let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                guard.recv()
            };
            match stream {
                Ok(stream) => handle_connection(stream, &ctx, &metrics, &config),
                Err(_) => break, // sender dropped: accept loop has exited
            }
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // A send can only fail if every worker died; stop accepting.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // `tx` drops here; workers drain the queue and exit.
    });

    Ok(ServerHandle {
        addr,
        shutdown,
        metrics,
        accept: Some(accept),
        workers,
    })
}

/// A parsed request: method, path, raw query string, body.
struct Request {
    method: String,
    path: String,
    query: String,
    body: String,
}

fn handle_connection(
    mut stream: TcpStream,
    ctx: &ServeContext,
    metrics: &Metrics,
    config: &ServerConfig,
) {
    let started = Instant::now();
    let timeout = Duration::from_secs_f64(config.request_timeout_secs);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let (route, response) = match read_request(&mut stream, config.max_request_bytes) {
        Ok(req) => route_request(&req, ctx, metrics),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock
            || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            (Route::Other, Response::json(408, "{\"error\":\"request timeout\"}"))
        }
        Err(_) => (Route::Other, Response::json(400, "{\"error\":\"malformed request\"}")),
    };
    let _ = response.write_to(&mut stream);
    metrics.observe(route, response.status, started.elapsed());
}

/// Read head (+ body per `Content-Length`) with a hard size cap.
fn read_request(stream: &mut TcpStream, max_bytes: usize) -> std::io::Result<Request> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_bytes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad request line",
        ));
    }
    let content_length: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if content_length > max_bytes {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }

    let mut body_bytes = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body_bytes).into_owned(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type,
            body: body.into(),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            _ => "Error",
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn route_request(req: &Request, ctx: &ServeContext, metrics: &Metrics) -> (Route, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (Route::Health, Response::json(200, "{\"status\":\"ok\"}")),
        ("GET", "/top") => (Route::Top, top_response(req, ctx)),
        ("GET", "/pipe") => (Route::Pipe, pipe_response(req, ctx)),
        ("GET", "/model") => (Route::Model, Response::json(200, render_model(ctx.scorer()))),
        ("POST", "/batch") => (Route::Batch, batch_response(req, ctx)),
        ("GET", "/metrics") => (
            Route::Metrics,
            Response::text(200, "text/plain; version=0.0.4", metrics.render()),
        ),
        ("GET", "/riskmap.svg") => (Route::Riskmap, riskmap_response(ctx)),
        (m, "/health" | "/top" | "/pipe" | "/model" | "/metrics" | "/riskmap.svg") if m != "GET" => {
            (Route::Other, Response::json(405, "{\"error\":\"method not allowed\"}"))
        }
        _ => (Route::Other, Response::json(404, "{\"error\":\"no such route\"}")),
    }
}

/// Value of query-string parameter `key` (no percent-decoding — the API
/// only takes integers).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn top_response(req: &Request, ctx: &ServeContext) -> Response {
    let k = match query_param(&req.query, "k") {
        None => 10,
        Some(v) => match v.parse::<usize>() {
            Ok(k) => k,
            Err(_) => {
                return Response::json(400, format!("{{\"error\":\"bad k: {v:?}\"}}"));
            }
        },
    };
    Response::json(200, render_top_k(ctx.scorer(), k))
}

fn pipe_response(req: &Request, ctx: &ServeContext) -> Response {
    let Some(raw) = query_param(&req.query, "id") else {
        return Response::json(400, "{\"error\":\"missing id parameter\"}");
    };
    let Ok(id) = raw.parse::<u32>() else {
        return Response::json(400, format!("{{\"error\":\"bad id: {raw:?}\"}}"));
    };
    match ctx.scorer().risk_of(PipeId(id)) {
        Some(risk) => Response::json(200, render_pipe_risk(&risk)),
        None => Response::json(404, format!("{{\"error\":\"pipe {id} not ranked\"}}")),
    }
}

fn batch_response(req: &Request, ctx: &ServeContext) -> Response {
    let mut queries = Vec::new();
    for (lineno, line) in req.body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = match line.split_once(' ') {
            Some(("top", k)) => k.parse::<usize>().ok().map(Query::TopK),
            Some(("pipe", id)) => id.parse::<u32>().ok().map(|i| Query::Pipe(PipeId(i))),
            _ => None,
        };
        match parsed {
            Some(q) => queries.push(q),
            None => {
                return Response::json(
                    400,
                    format!("{{\"error\":\"bad query on line {}: {line:?}\"}}", lineno + 1),
                );
            }
        }
    }
    let results = ctx.scorer().answer_batch(&queries, &ctx.pool);
    let rendered: Vec<String> = results.iter().map(render_query_result).collect();
    Response::json(200, format!("{{\"results\":[{}]}}", rendered.join(",")))
}

fn riskmap_response(ctx: &ServeContext) -> Response {
    match &ctx.dataset {
        Some(dataset) => {
            let ranking = ctx.scorer().ranking();
            let svg = pipefail_eval::riskmap::risk_map(
                dataset,
                &ranking,
                TrainTestSplit::paper_protocol().test,
                800.0,
                800.0,
            );
            Response::text(200, "image/svg+xml", svg)
        }
        None => Response::json(
            404,
            "{\"error\":\"no dataset loaded; start the server with --data to enable risk maps\"}",
        ),
    }
}

/// JSON for one [`PipeRisk`]. Scores use Rust's shortest-round-trip `f64`
/// formatting, so the serialized score parses back to the exact bits that
/// were served — the HTTP answer carries the same information as the
/// in-process one.
pub fn render_pipe_risk(risk: &PipeRisk) -> String {
    format!(
        "{{\"pipe\":{},\"score\":{},\"rank\":{}}}",
        risk.pipe.0, risk.score, risk.rank
    )
}

/// JSON for a top-K answer; the exact body served by `GET /top`.
pub fn render_top_k(scorer: &Scorer, k: usize) -> String {
    let top = scorer.top_k(k);
    let items: Vec<String> = top.iter().map(render_pipe_risk).collect();
    format!(
        "{{\"model\":{},\"region\":{},\"k\":{},\"results\":[{}]}}",
        json_str(scorer.model()),
        json_str(scorer.region()),
        top.len(),
        items.join(",")
    )
}

/// JSON for the snapshot identity and posterior-summary inventory; the
/// exact body served by `GET /model`.
pub fn render_model(scorer: &Scorer) -> String {
    let sections: Vec<String> = scorer
        .sections()
        .iter()
        .map(|s| {
            let fields: Vec<String> = s
                .fields
                .iter()
                .map(|f| format!("{{\"name\":{},\"len\":{}}}", json_str(&f.name), f.values.len()))
                .collect();
            format!(
                "{{\"name\":{},\"fields\":[{}]}}",
                json_str(&s.name),
                fields.join(",")
            )
        })
        .collect();
    format!(
        "{{\"model\":{},\"region\":{},\"seed\":{},\"pipes\":{},\"sections\":[{}]}}",
        json_str(scorer.model()),
        json_str(scorer.region()),
        scorer.seed(),
        scorer.len(),
        sections.join(",")
    )
}

fn render_query_result(result: &QueryResult) -> String {
    match result {
        QueryResult::TopK(items) => {
            let rendered: Vec<String> = items.iter().map(render_pipe_risk).collect();
            format!("{{\"top\":[{}]}}", rendered.join(","))
        }
        QueryResult::Pipe(Some(risk)) => format!("{{\"pipe_risk\":{}}}", render_pipe_risk(risk)),
        QueryResult::Pipe(None) => "{\"pipe_risk\":null}".to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};
    use pipefail_core::snapshot::Snapshot;

    fn test_scorer() -> Scorer {
        let ranking = RiskRanking::new(
            (0..20u32)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: f64::from(20 - i) / 20.0,
                })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", "Region \"A\"", 7, &ranking))
    }

    #[test]
    fn query_param_parses() {
        assert_eq!(query_param("k=5", "k"), Some("5"));
        assert_eq!(query_param("a=1&k=9&b=2", "k"), Some("9"));
        assert_eq!(query_param("", "k"), None);
        assert_eq!(query_param("kk=5", "k"), None);
    }

    #[test]
    fn render_top_k_is_valid_shape_and_escapes() {
        let s = test_scorer();
        let body = render_top_k(&s, 2);
        assert!(body.starts_with("{\"model\":\"DPMHBP\""));
        assert!(body.contains("\\\"A\\\""), "region quotes escaped: {body}");
        assert!(body.contains("\"k\":2"));
        assert!(body.contains("\"pipe\":0"));
        // Scores round-trip through the shortest f64 formatting.
        assert!(body.contains(&format!("\"score\":{}", 20.0 / 20.0)));
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn find_head_end_locates_crlfcrlf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn render_model_lists_sections() {
        use pipefail_core::snapshot::SummarySection;
        let ranking = RiskRanking::new(vec![RiskScore { pipe: PipeId(1), score: 1.0 }]);
        let mut snap = Snapshot::new("Cox", "R", 3, &ranking);
        snap.push_section(SummarySection::new("coefficients").with_field("beta", vec![0.1, 0.2]));
        let body = render_model(&Scorer::new(snap));
        assert!(body.contains("\"model\":\"Cox\""));
        assert!(body.contains("\"pipes\":1"));
        assert!(body.contains("\"name\":\"coefficients\""));
        assert!(body.contains("\"len\":2"));
    }
}
