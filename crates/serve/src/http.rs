//! A minimal hand-rolled HTTP/1.1 server for the scoring engine.
//!
//! No async runtime, no HTTP crate — a `std::net::TcpListener`, an accept
//! thread, and a fixed pool of worker threads draining a channel, in the
//! same spirit as the workspace's hand-rolled CSV and SVG writers. Each
//! connection is served by a keep-alive loop: requests are parsed
//! incrementally off one buffer (pipelined requests included) by
//! [`crate::parser`], responses carry exact `Content-Length` framing so the
//! socket can be reused, and the `Connection: close` / `keep-alive` headers
//! are honored with HTTP/1.0-vs-1.1 defaulting. A per-connection request
//! cap and an idle timeout (the `PIPEFAIL_HTTP_KEEPALIVE_REQS` /
//! `PIPEFAIL_HTTP_IDLE_SECS` knobs) bound how long one client can hold a
//! worker, following the same `PIPEFAIL_*` environment-knob idiom as the
//! experiment runner's wall-clock budgets.
//!
//! When watched snapshot paths are configured, a watcher thread
//! ([`crate::reload`]) polls them and hot-swaps each shard's scorer on
//! change — see [`ServerConfig::reload_poll_secs`].
//!
//! ## Routes
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /health` | liveness probe |
//! | `GET /healthz` | readiness probe: `200` when every shard serves, `503` + `Retry-After` while any shard is degraded; excluded from the request metrics so federation health checks don't pollute them |
//! | `GET /top?k=N` | the N riskiest pipes, descending (default 10); sharded servers scatter-gather a **global** top-K across every region |
//! | `GET /top?region=R&k=N` | one region's top-K (routed to that shard; unknown region → typed 404, degraded shard → typed 503) |
//! | `GET /pipe?region=R&id=N` | one pipe's score and rank (`region` required when serving more than one shard) |
//! | `GET /model` | snapshot identity + posterior-summary inventory (sharded: the full shard inventory) |
//! | `POST /batch` | one query per line (`[region=R ]top K` / `region=R pipe ID`), fanned over the task pool |
//! | `POST /aggregate` | declarative group-by/aggregate pipeline (body = JSON spec, see `docs/AGGREGATE.md`) computed per-shard on the task pool and merged deterministically; `?partial=1` answers the merge-ready partial state (the federation scatter leg) |
//! | `GET /riskmap.svg` | Fig 18.9 risk map (single-snapshot mode with a dataset only) |
//! | `GET /metrics` | Prometheus text exposition (sharded: per-shard `shard="R"` series) |

use crate::aggregate::{self, AggregateSpec};
use crate::metrics::{Metrics, Route};
use crate::parser::{self, ParseOutcome, ParsedRequest};
use crate::reload;
use crate::scorer::{PipeRisk, Query, QueryResult, RiskSlice, Scorer};
use crate::shards::{GlobalRisk, ShardSet};
use crate::ServeError;
use pipefail_network::dataset::Dataset;
use pipefail_network::ids::PipeId;
use pipefail_network::split::TrainTestSplit;
use pipefail_par::TaskPool;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable: per-request socket timeout in seconds (same
/// parsing rules as `PIPEFAIL_MODEL_BUDGET_SECS` — positive float, bad
/// values fall back to the default).
pub const HTTP_TIMEOUT_ENV: &str = "PIPEFAIL_HTTP_TIMEOUT_SECS";

/// Environment variable: worker-thread count (`0`/unset = auto).
pub const HTTP_WORKERS_ENV: &str = "PIPEFAIL_HTTP_WORKERS";

/// Environment variable: maximum requests served per connection before the
/// server closes it (`0` = unlimited).
pub const HTTP_KEEPALIVE_REQS_ENV: &str = "PIPEFAIL_HTTP_KEEPALIVE_REQS";

/// Environment variable: idle timeout in seconds for a keep-alive
/// connection waiting between requests (positive float).
pub const HTTP_IDLE_ENV: &str = "PIPEFAIL_HTTP_IDLE_SECS";

/// Environment variable: snapshot hot-reload poll interval in seconds
/// (`0`/unset = reloading off).
pub const HTTP_RELOAD_ENV: &str = "PIPEFAIL_HTTP_RELOAD_SECS";

/// Environment variable: connection-core selection — `epoll` (the default
/// on Linux: one event-loop thread multiplexes every connection, workers
/// only score) or `threads` (thread-per-connection over the worker pool;
/// the only core on non-Linux platforms). Unknown values keep the
/// platform default.
pub const HTTP_CORE_ENV: &str = "PIPEFAIL_HTTP_CORE";

/// Environment variable: maximum concurrently open connections under the
/// epoll core (`0` = unlimited). At the cap the longest-idle keep-alive
/// connection is shed; when nothing is sheddable, new connections get
/// `429` + `Retry-After`.
pub const HTTP_MAX_CONNS_ENV: &str = "PIPEFAIL_HTTP_MAX_CONNS";

/// Environment variable: maximum requests simultaneously in flight at the
/// worker pool under the epoll core (`0` = unbounded); excess parsed
/// requests are answered `429` + `Retry-After` without queueing.
pub const HTTP_INFLIGHT_ENV: &str = "PIPEFAIL_HTTP_INFLIGHT";

/// Environment variable: result-cache switch — `off`/`0`/`false` disables
/// the rendered-response cache (every request recomputes). `ETag`/`304`
/// revalidation and `HEAD` synthesis stay on either way, so observable
/// behaviour never depends on this knob — only latency does.
pub const CACHE_ENV: &str = "PIPEFAIL_CACHE";

/// Environment variable: result-cache byte budget (total across lock
/// shards; default 64 MiB). Bodies, keys, and fixed per-entry overhead
/// all count; least-recently-used entries are evicted past the budget.
pub const CACHE_BYTES_ENV: &str = "PIPEFAIL_CACHE_BYTES";

/// Which connection core drives the accept/read/write path. Both cores
/// share the parser, router, worker pool, metrics, and response framing,
/// and answer byte-identically (proptest-asserted in
/// `tests/epoll_core.rs`); they differ only in how sockets are
/// multiplexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpCore {
    /// Event-driven core: a single epoll loop owns every socket,
    /// dispatching parsed requests to the worker pool and draining
    /// response buffers on writability. Scales to thousands of idle
    /// keep-alive connections; Linux only.
    Epoll,
    /// Thread-per-connection core: each accepted socket pins one worker
    /// for its keep-alive lifetime.
    Threads,
}

impl Default for HttpCore {
    /// Epoll on Linux, threads elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            HttpCore::Epoll
        } else {
            HttpCore::Threads
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port `0` asks the OS for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads; `0` = auto (available parallelism, capped at 8).
    pub workers: usize,
    /// Cumulative per-request deadline in seconds, counted from the first
    /// byte of a request — the serving analogue of the fit engine's
    /// wall-clock budget: a client stalled (or dribbling bytes)
    /// *mid-request* is cut off with `408` once the total elapsed time
    /// exceeds this, it cannot pin a worker by trickling traffic.
    pub request_timeout_secs: f64,
    /// Idle timeout in seconds for a keep-alive connection with no request
    /// in flight; expiry closes the socket quietly.
    pub idle_timeout_secs: f64,
    /// Maximum requests served on one connection before the server answers
    /// `Connection: close` (`0` = unlimited).
    pub keepalive_requests: usize,
    /// Maximum accepted request size (head + body) in bytes.
    pub max_request_bytes: usize,
    /// Snapshot hot-reload poll interval in seconds; `0` disables the
    /// watcher. Requires [`ServerConfig::snapshot_path`].
    pub reload_poll_secs: f64,
    /// Snapshot file watched for hot-reload (usually the file the scorer
    /// was loaded from).
    pub snapshot_path: Option<PathBuf>,
    /// Connection core ([`HttpCore`]); non-Linux platforms always resolve
    /// to [`HttpCore::Threads`].
    pub core: HttpCore,
    /// Maximum open connections (epoll core; `0` = unlimited). See
    /// [`HTTP_MAX_CONNS_ENV`].
    pub max_connections: usize,
    /// Maximum in-flight requests at the workers (epoll core; `0` =
    /// unbounded). See [`HTTP_INFLIGHT_ENV`].
    pub max_inflight: usize,
    /// Whether the epoch-keyed result cache stores rendered responses
    /// (see [`CACHE_ENV`]). Off still answers `ETag`/`304`/`HEAD`
    /// identically — the knob trades only latency, never behaviour.
    pub cache: bool,
    /// Result-cache byte budget (see [`CACHE_BYTES_ENV`]).
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            request_timeout_secs: 10.0,
            idle_timeout_secs: 5.0,
            keepalive_requests: 100,
            max_request_bytes: 64 * 1024,
            reload_poll_secs: 0.0,
            snapshot_path: None,
            core: HttpCore::default(),
            max_connections: 8192,
            max_inflight: 4096,
            cache: true,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// Defaults overridden from the environment ([`HTTP_TIMEOUT_ENV`],
    /// [`HTTP_WORKERS_ENV`], [`HTTP_KEEPALIVE_REQS_ENV`], [`HTTP_IDLE_ENV`],
    /// [`HTTP_RELOAD_ENV`]), mirroring `RetryPolicy::from_env`: unset or
    /// unparsable values keep the defaults, timeouts must be positive.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(t) = positive_f64_env(HTTP_TIMEOUT_ENV) {
            cfg.request_timeout_secs = t;
        }
        if let Some(t) = positive_f64_env(HTTP_IDLE_ENV) {
            cfg.idle_timeout_secs = t;
        }
        if let Some(w) = std::env::var(HTTP_WORKERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.workers = w;
        }
        if let Some(n) = std::env::var(HTTP_KEEPALIVE_REQS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.keepalive_requests = n;
        }
        if let Some(t) = std::env::var(HTTP_RELOAD_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|t| *t >= 0.0)
        {
            cfg.reload_poll_secs = t;
        }
        if let Ok(v) = std::env::var(HTTP_CORE_ENV) {
            match v.to_ascii_lowercase().as_str() {
                "epoll" => cfg.core = HttpCore::Epoll,
                "threads" => cfg.core = HttpCore::Threads,
                _ => {} // unknown value keeps the platform default
            }
        }
        if let Some(n) = std::env::var(HTTP_MAX_CONNS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.max_connections = n;
        }
        if let Some(n) = std::env::var(HTTP_INFLIGHT_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.max_inflight = n;
        }
        if let Ok(v) = std::env::var(CACHE_ENV) {
            match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => cfg.cache = false,
                "on" | "1" | "true" => cfg.cache = true,
                _ => {} // unknown value keeps the default (on)
            }
        }
        if let Some(n) = std::env::var(CACHE_BYTES_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
        {
            cfg.cache_bytes = n;
        }
        cfg
    }

    /// This configuration with a different bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// This configuration watching `path` for snapshot hot-reload.
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// The connection core actually used: the configured one, except that
    /// epoll only exists on Linux — everywhere else resolves to threads.
    pub fn resolved_core(&self) -> HttpCore {
        if cfg!(target_os = "linux") {
            self.core
        } else {
            HttpCore::Threads
        }
    }

    pub(crate) fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            // Floor of 2 even on a single-core box: with one worker, a
            // single idle keep-alive client pins the whole server and
            // every new connection starves until the idle timeout.
            std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .clamp(2, 8)
        }
    }
}

fn positive_f64_env(key: &str) -> Option<f64> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t > 0.0)
}

/// Everything a worker needs to answer queries: the (hot-swappable)
/// per-region shards, a task pool for `/batch` fan-out, and an optional
/// dataset for the risk-map route.
#[derive(Debug)]
pub struct ServeContext {
    /// The served shards (a single-snapshot server is a one-shard set).
    /// Requests clone a shard's `Arc<Scorer>` once and answer from that
    /// consistent view; the reload watcher replaces each shard's `Arc`
    /// whole, so in-flight requests finish on the scorer they started
    /// with.
    shards: ShardSet,
    pool: TaskPool,
    dataset: Option<Dataset>,
}

impl ServeContext {
    /// Context serving one `scorer` (legacy single-snapshot mode),
    /// batching over `PIPEFAIL_THREADS`.
    pub fn new(scorer: Scorer) -> Self {
        Self::sharded(ShardSet::single(scorer))
    }

    /// Context serving a whole shard set behind one endpoint, batching
    /// over `PIPEFAIL_THREADS`.
    pub fn sharded(shards: ShardSet) -> Self {
        Self {
            shards,
            pool: TaskPool::from_env(),
            dataset: None,
        }
    }

    /// This context with the dataset the model was fitted on, enabling
    /// `GET /riskmap.svg` (the Fig 18.9 renderer of `pipefail-eval` over
    /// the served ranking; single-snapshot mode only).
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// This context with an explicit batch task pool.
    pub fn with_pool(mut self, pool: TaskPool) -> Self {
        self.pool = pool;
        self
    }

    /// The served shards.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// The currently active scoring engine of the *first* shard — the
    /// single-snapshot accessor (a one-shard set is exactly the legacy
    /// server). The returned `Arc` is a stable view: it keeps answering
    /// consistently even if a hot-reload swaps the shard's scorer
    /// mid-request.
    pub fn scorer(&self) -> Arc<Scorer> {
        self.shards.shards()[0].last_good()
    }

    /// Atomically replace the first shard's active scorer (the
    /// single-snapshot hot-reload swap), returning the new shared handle.
    /// Never blocks readers for longer than one pointer store.
    pub fn swap_scorer(&self, scorer: Scorer) -> Arc<Scorer> {
        self.shards.shards()[0].swap(scorer)
    }
}

/// Handle to a running server: its bound address, shared metrics, and the
/// shutdown switch.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept: Option<JoinHandle<()>>,
    /// Auxiliary shutdown-aware threads joined on stop: the reload watcher
    /// (local serving) or the backend health prober (federation).
    background: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live request metrics (also served at `/metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish, join all threads. Idempotent via `Drop` (calling this
    /// consumes the handle).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.background.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What a worker pool serves: anything that turns a parsed request into a
/// routed response. The local snapshot router ([`LocalRouter`]) and the
/// federation front-end (`crate::federation`) both plug in here, sharing
/// the whole connection layer — keep-alive loop, pipelining, timeouts,
/// framing — unchanged.
pub(crate) trait RequestHandler: Send + Sync + 'static {
    /// Answer one request. `Route::Healthz` responses are counted in
    /// [`Metrics::healthz_total`] instead of the request metrics.
    fn handle(&self, req: &ParsedRequest, metrics: &Metrics) -> (Route, Response);
}

/// The in-process router: answers every route from the local
/// [`ServeContext`] shards.
pub(crate) struct LocalRouter {
    ctx: Arc<ServeContext>,
    /// Seconds advertised in `Retry-After` on degrade `503`s — derived
    /// from the reload poll interval, since that is when a degraded shard
    /// can next heal.
    retry_after_secs: u64,
}

impl RequestHandler for LocalRouter {
    fn handle(&self, req: &ParsedRequest, metrics: &Metrics) -> (Route, Response) {
        route_request(req, &self.ctx, metrics, self.retry_after_secs)
    }
}

/// `Retry-After` seconds for degrade responses: the next reload poll is
/// the soonest a degraded shard can recover, so advertise that (minimum
/// 1s); without a watcher there is no self-heal schedule, so advertise a
/// nominal 1s.
pub(crate) fn retry_after_secs(reload_poll_secs: f64) -> u64 {
    if reload_poll_secs > 0.0 {
        (reload_poll_secs.ceil() as u64).max(1)
    } else {
        1
    }
}

/// Bind, spawn the accept thread, worker pool, and (when configured) the
/// snapshot-reload watcher, and return immediately.
pub fn serve(ctx: Arc<ServeContext>, config: &ServerConfig) -> Result<ServerHandle, ServeError> {
    let any_shard_path = ctx.shards().shards().iter().any(|s| s.path().is_some());
    if config.reload_poll_secs > 0.0 && config.snapshot_path.is_none() && !any_shard_path {
        return Err(ServeError::BadConfig(
            "reload_poll_secs set but no snapshot_path to watch".into(),
        ));
    }
    let metrics = Arc::new(Metrics::with_shards(
        ctx.shards().keys().map(String::from).collect(),
    ));
    let router: Arc<dyn RequestHandler> = Arc::new(LocalRouter {
        ctx: Arc::clone(&ctx),
        retry_after_secs: retry_after_secs(config.reload_poll_secs),
    });
    // The result cache fronts the router on both connection cores; it is
    // always installed so ETag/304/HEAD behaviour never depends on the
    // PIPEFAIL_CACHE knob.
    let handler = Arc::new(crate::cache::CachingHandler::new(
        router,
        crate::cache::CacheTopology::Local(Arc::clone(&ctx)),
        config,
    ));
    let watcher_metrics = Arc::clone(&metrics);
    let poll = config.reload_poll_secs;
    let snapshot_path = config.snapshot_path.clone();
    serve_handler(handler, metrics, config, move |shutdown| {
        if poll > 0.0 {
            vec![reload::spawn_watcher(
                ctx,
                watcher_metrics,
                snapshot_path,
                Duration::from_secs_f64(poll),
                Arc::clone(shutdown),
            )]
        } else {
            vec![]
        }
    })
}

/// The handler-generic server core: bind, spawn the accept thread and
/// worker pool around `handler`, start any `background` threads (reload
/// watcher, health prober) wired to the shutdown switch, and return
/// immediately.
pub(crate) fn serve_handler(
    handler: Arc<dyn RequestHandler>,
    metrics: Arc<Metrics>,
    config: &ServerConfig,
    background: impl FnOnce(&Arc<AtomicBool>) -> Vec<JoinHandle<()>>,
) -> Result<ServerHandle, ServeError> {
    if config.request_timeout_secs <= 0.0 {
        return Err(ServeError::BadConfig(
            "request_timeout_secs must be positive".into(),
        ));
    }
    if config.idle_timeout_secs <= 0.0 {
        return Err(ServeError::BadConfig(
            "idle_timeout_secs must be positive".into(),
        ));
    }
    // SO_REUSEADDR-before-bind: a restarted server (or a test re-binding a
    // just-freed port) never flakes on EADDRINUSE from TIME_WAIT.
    let listener = crate::sys::bind_reuseaddr(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    #[cfg(target_os = "linux")]
    if config.resolved_core() == HttpCore::Epoll {
        let background = background(&shutdown);
        let (loop_thread, workers) = crate::event_loop::spawn(
            Arc::clone(&handler),
            Arc::clone(&metrics),
            config,
            listener,
            Arc::clone(&shutdown),
        )
        .map_err(|e| ServeError::Io(format!("event loop: {e}")))?;
        return Ok(ServerHandle {
            addr,
            shutdown,
            metrics,
            // The loop thread owns the listener and exits on the same
            // shutdown poke as a threaded accept loop.
            accept: Some(loop_thread),
            background,
            workers,
        });
    }

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(config.resolved_workers());
    for _ in 0..config.resolved_workers() {
        let rx = Arc::clone(&rx);
        let handler = Arc::clone(&handler);
        let metrics = Arc::clone(&metrics);
        let config = config.clone();
        workers.push(std::thread::spawn(move || loop {
            // Hold the lock only for the dequeue; recover from a poisoned
            // lock (a panicking sibling) rather than dying with it.
            let stream = {
                let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                guard.recv()
            };
            match stream {
                Ok(stream) => handle_connection(stream, handler.as_ref(), &metrics, &config),
                Err(_) => break, // sender dropped: accept loop has exited
            }
        }));
    }

    let background = background(&shutdown);

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // Request/response on one socket is latency-bound, not
                // throughput-bound: disable Nagle so small frames leave
                // immediately instead of waiting out a delayed ACK.
                stream.set_nodelay(true).ok();
                // A send can only fail if every worker died; stop accepting.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // `tx` drops here; workers drain the queue and exit.
    });

    Ok(ServerHandle {
        addr,
        shutdown,
        metrics,
        accept: Some(accept),
        background,
        workers,
    })
}

/// The keep-alive connection loop: parse as many requests as the buffer
/// holds (pipelining), answer each with exact `Content-Length` framing,
/// and keep reading until the client closes, asks for `Connection: close`,
/// hits the per-connection request cap, idles past the idle timeout, or
/// breaks framing.
fn handle_connection(
    mut stream: TcpStream,
    handler: &dyn RequestHandler,
    metrics: &Metrics,
    config: &ServerConfig,
) {
    let request_timeout = Duration::from_secs_f64(config.request_timeout_secs);
    let idle_timeout = Duration::from_secs_f64(config.idle_timeout_secs);
    let _ = stream.set_write_timeout(Some(request_timeout));
    metrics.conn_opened();

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    // One response-frame buffer for the connection's whole keep-alive
    // lifetime: every response renders into it and is written with one
    // syscall, so the steady state (cache hits especially) allocates no
    // frame memory per request.
    let mut frame: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut served: usize = 0;
    // Cumulative per-request deadline: armed at the first byte of a
    // request and *not* extended by later reads, so a client dribbling one
    // byte at a time cannot hold a worker past the request timeout
    // (slow-loris); the per-read socket timeout below is always the
    // *remaining* budget, never a fresh one.
    let mut request_started: Option<Instant> = None;

    'conn: loop {
        // Drain every complete request already buffered before reading
        // again — pipelined requests are answered back-to-back.
        loop {
            match parser::parse_request(&buf, config.max_request_bytes) {
                Ok(ParseOutcome::Complete(req, consumed)) => {
                    buf.drain(..consumed);
                    // Leftover bytes are the next pipelined request; its
                    // deadline starts now. An empty buffer disarms it.
                    request_started = if buf.is_empty() { None } else { Some(Instant::now()) };
                    served += 1;
                    if served > 1 {
                        metrics.keepalive_reuse();
                    }
                    let started = Instant::now();
                    let (route, mut response) = handler.handle(&req, metrics);
                    let at_cap =
                        config.keepalive_requests > 0 && served >= config.keepalive_requests;
                    response.close = !req.wants_keep_alive() || at_cap;
                    // Observe before writing: a client that has read this
                    // response must already see it counted in `/metrics`.
                    // Health probes count in their own side counter so a
                    // federation front-end polling `/healthz` every second
                    // doesn't drown the request series.
                    if route == Route::Healthz {
                        metrics.healthz();
                    } else {
                        metrics.observe(route, response.status, started.elapsed());
                    }
                    let wrote = response.write_with(&mut frame, &mut stream);
                    if response.close || wrote.is_err() {
                        break 'conn;
                    }
                }
                Ok(ParseOutcome::Incomplete) => break,
                Err(e) => {
                    // Broken framing: the rest of the byte stream cannot be
                    // trusted to align with another request. Answer once,
                    // then drop the connection.
                    let mut response =
                        Response::json(e.status(), format!("{{\"error\":{}}}", json_str(&e.to_string())));
                    response.close = true;
                    metrics.observe(Route::Other, response.status, Duration::ZERO);
                    let _ = response.write_to(&mut stream);
                    break 'conn;
                }
            }
        }

        // Need more bytes. Between requests the idle-timeout budget
        // applies; mid-request, whatever is left of the cumulative
        // request budget does.
        let timeout = match request_started {
            None => idle_timeout,
            Some(t0) => match request_timeout.checked_sub(t0.elapsed()) {
                Some(left) if !left.is_zero() => left,
                _ => {
                    // Budget already exhausted by dribbled reads.
                    answer_request_timeout(&mut stream, metrics, request_timeout);
                    break;
                }
            },
        };
        let _ = stream.set_read_timeout(Some(timeout));
        // EINTR-retrying read: a signal landing mid-read must not tear
        // down a healthy connection.
        match crate::sys::read_retry(&mut stream, &mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => {
                if request_started.is_none() {
                    request_started = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if request_started.is_some() {
                    // Stalled mid-request: tell the client before hanging up.
                    answer_request_timeout(&mut stream, metrics, request_timeout);
                }
                // Idle keep-alive expiry closes quietly: nothing was asked.
                break;
            }
            Err(_) => break,
        }
    }
    metrics.conn_closed();
}

/// Answer a request whose cumulative deadline expired with `408`; the
/// caller closes the connection.
fn answer_request_timeout(stream: &mut TcpStream, metrics: &Metrics, elapsed: Duration) {
    let mut response = Response::json(408, "{\"error\":\"request timeout\"}");
    response.close = true;
    metrics.observe(Route::Other, 408, elapsed);
    let _ = response.write_to(stream);
}

/// A response body: freshly rendered (`Owned`) or shared out of the
/// result cache (`Shared`). Derefs to `str` so every reader treats it
/// like the `String` it used to be; a cache hit clones an `Arc` refcount
/// instead of copying the rendered bytes.
#[derive(Debug, Clone)]
pub(crate) enum Body {
    /// A body rendered for this request.
    Owned(String),
    /// A body shared with the result cache (and other in-flight hits).
    Shared(Arc<str>),
}

impl std::ops::Deref for Body {
    type Target = str;
    fn deref(&self) -> &str {
        match self {
            Body::Owned(s) => s,
            Body::Shared(s) => s,
        }
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body::Owned(s)
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Self {
        Body::Owned(s.to_string())
    }
}

impl std::fmt::Display for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self)
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl PartialEq<str> for Body {
    fn eq(&self, other: &str) -> bool {
        **self == *other
    }
}

impl PartialEq<&str> for Body {
    fn eq(&self, other: &&str) -> bool {
        **self == **other
    }
}

impl PartialEq<String> for Body {
    fn eq(&self, other: &String) -> bool {
        **self == **other
    }
}

impl PartialEq<Body> for String {
    fn eq(&self, other: &Body) -> bool {
        *self == **other
    }
}

impl PartialEq<Body> for &str {
    fn eq(&self, other: &Body) -> bool {
        **self == **other
    }
}

/// A response ready to serialize.
pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: Body,
    /// Extra headers beyond the always-present framing set
    /// (`Retry-After`, `X-Pipefail-Partial`, …).
    pub(crate) headers: Vec<(&'static str, String)>,
    /// Epoch-derived entity tag, rendered as an `ETag` header (cacheable
    /// GET routes only). `Arc` so cache hits attach it without allocating.
    pub(crate) etag: Option<Arc<str>>,
    /// Fleet-epoch token rendered as `X-Pipefail-Epoch` — how a
    /// federation front end notices a backend snapshot reload between
    /// health probes. Attached by the caching layer, one shared rendering
    /// per epoch.
    pub(crate) epoch_token: Option<Arc<str>>,
    /// `HEAD` answer: frame the headers (with the body's true
    /// `Content-Length`) but send no body bytes.
    pub(crate) head_only: bool,
    /// Whether the server closes the connection after this response; also
    /// decides the advertised `Connection` header.
    pub(crate) close: bool,
}

impl Response {
    pub(crate) fn json(status: u16, body: impl Into<Body>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
            etag: None,
            epoch_token: None,
            head_only: false,
            close: false,
        }
    }

    pub(crate) fn text(status: u16, content_type: &'static str, body: impl Into<Body>) -> Self {
        Self {
            status,
            content_type,
            body: body.into(),
            headers: Vec::new(),
            etag: None,
            epoch_token: None,
            head_only: false,
            close: false,
        }
    }

    /// Convert the body to its shared form in place (one copy if it was
    /// owned, free if already shared) and return another handle to it —
    /// how the result cache takes a reference to a rendered body.
    pub(crate) fn share_body(&mut self) -> Arc<str> {
        let shared: Arc<str> = match std::mem::replace(&mut self.body, Body::Owned(String::new()))
        {
            Body::Owned(s) => Arc::from(s),
            Body::Shared(s) => s,
        };
        self.body = Body::Shared(Arc::clone(&shared));
        shared
    }

    /// This response with one extra header appended.
    pub(crate) fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First extra-header value with the given name, if set.
    #[cfg(test)]
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serialize the full response frame — status line, framing headers,
    /// extras, body — into a caller-owned buffer (cleared first). Shared
    /// by both connection cores so their wire output is byte-identical by
    /// construction; both pass pooled buffers, so the steady-state request
    /// path (cache hits especially) allocates nothing here.
    pub(crate) fn render_into(&self, frame: &mut Vec<u8>) {
        frame.clear();
        let reason = match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            501 => "Not Implemented",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Error",
        };
        // `Content-Length` is the body's length even for `head_only`
        // frames: HEAD advertises what the matching GET would carry.
        let _ = write!(
            frame,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" }
        );
        if let Some(etag) = &self.etag {
            let _ = write!(frame, "ETag: {etag}\r\n");
        }
        if let Some(epoch) = &self.epoch_token {
            let _ = write!(frame, "X-Pipefail-Epoch: {epoch}\r\n");
        }
        for (name, value) in &self.headers {
            let _ = write!(frame, "{name}: {value}\r\n");
        }
        frame.extend_from_slice(b"\r\n");
        if !self.head_only {
            frame.extend_from_slice(self.body.as_bytes());
        }
    }

    /// [`Response::render_into`] into a fresh buffer (cold paths and
    /// tests; the connection cores reuse pooled buffers instead).
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(128 + self.body.len());
        self.render_into(&mut frame);
        frame
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        self.write_with(&mut Vec::new(), stream)
    }

    /// Render into the reusable `frame` and write it in one syscall: two
    /// writes would let Nagle hold the body back until the client ACKs
    /// the head — a ~40ms delayed-ACK stall on every kept-alive response.
    fn write_with(&self, frame: &mut Vec<u8>, stream: &mut TcpStream) -> std::io::Result<()> {
        self.render_into(frame);
        stream.write_all(frame)?;
        stream.flush()
    }
}

fn route_request(
    req: &ParsedRequest,
    ctx: &ServeContext,
    metrics: &Metrics,
    retry_after_secs: u64,
) -> (Route, Response) {
    let (route, mut response) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (Route::Health, Response::json(200, "{\"status\":\"ok\"}")),
        ("GET", "/healthz") => (Route::Healthz, healthz_response(ctx)),
        ("GET", "/top") => (Route::Top, top_response(req, ctx, metrics)),
        ("GET", "/pipe") => (Route::Pipe, pipe_response(req, ctx, metrics)),
        ("GET", "/model") => (Route::Model, model_response(ctx)),
        ("POST", "/batch") => (Route::Batch, batch_response(req, ctx, metrics)),
        ("POST", "/aggregate") => (Route::Aggregate, aggregate_response(req, ctx, metrics)),
        ("GET", "/metrics") => (
            Route::Metrics,
            Response::text(200, "text/plain; version=0.0.4", metrics.render()),
        ),
        ("GET", "/riskmap.svg") => (Route::Riskmap, riskmap_response(ctx)),
        (m, "/health" | "/healthz" | "/top" | "/pipe" | "/model" | "/metrics" | "/riskmap.svg")
            if m != "GET" =>
        {
            (Route::Other, Response::json(405, "{\"error\":\"method not allowed\"}"))
        }
        (m, "/batch" | "/aggregate") if m != "POST" => {
            (Route::Other, Response::json(405, "{\"error\":\"method not allowed\"}"))
        }
        _ => (Route::Other, Response::json(404, "{\"error\":\"no such route\"}")),
    };
    // Every local 503 is a degraded shard that can heal at the next reload
    // poll: tell the client when to come back. (One place, so no degrade
    // path — region-routed, global merge, batch, healthz — can forget it.)
    if response.status == 503 {
        response = response.with_header("Retry-After", retry_after_secs.to_string());
    }
    (route, response)
}

/// The readiness answer: `200` when every shard serves, `503` naming the
/// degraded shards otherwise. Cheap — no scoring, no per-route counter
/// (see [`Route::Healthz`]).
fn healthz_response(ctx: &ServeContext) -> Response {
    let degraded = ctx.shards().degraded_keys();
    if degraded.is_empty() {
        return Response::json(200, "{\"status\":\"ok\"}");
    }
    let keys: Vec<String> = degraded.iter().map(|k| json_str(k)).collect();
    Response::json(
        503,
        format!(
            "{{\"status\":\"degraded\",\"shards\":[{}]}}",
            keys.join(",")
        ),
    )
}

/// Value of query-string parameter `key` — the shared reader in
/// [`crate::query`], re-exported under the name the router and the
/// federation front-end have always used.
pub(crate) use crate::query::param as query_param;

/// The typed 404 body for a region key naming no loaded shard: the error
/// plus the full list of known regions, so a caller can self-correct
/// without a second round trip.
fn unknown_region_body(shards: &ShardSet, key: &str) -> String {
    unknown_region_body_keys(shards.keys(), key)
}

/// [`unknown_region_body`] over raw routing keys — shared with the
/// federation front-end, whose regions live behind remote backends.
pub(crate) fn unknown_region_body_keys<'a>(
    keys: impl Iterator<Item = &'a str>,
    key: &str,
) -> String {
    let regions: Vec<String> = keys.map(json_str).collect();
    format!(
        "{{\"error\":{},\"regions\":[{}]}}",
        json_str(&format!("unknown region {key:?}")),
        regions.join(",")
    )
}

/// The typed 503 body for a degraded shard (corrupt hot-swap under
/// [`crate::shards::ReloadPolicy::Degrade`]); names the shard so the
/// client knows every *other* region is still serving.
fn degraded_shard_body(key: &str, reason: &str) -> String {
    format!(
        "{{\"error\":{},\"shard\":{}}}",
        json_str(&format!("shard {key:?} degraded: {reason}")),
        json_str(key)
    )
}

/// Resolve a `?region=` key to a serving shard: `Err` carries the ready
/// typed 404 (unknown region) or 503 (degraded shard) response. The `Ok`
/// scorer is a stable `Arc` view for the rest of the request.
fn resolve_region(
    ctx: &ServeContext,
    metrics: &Metrics,
    key: &str,
) -> Result<(usize, Arc<Scorer>), Response> {
    let shards = ctx.shards();
    let Some(idx) = shards.index_of(key) else {
        return Err(Response::json(404, unknown_region_body(shards, key)));
    };
    match shards.shards()[idx].serving() {
        Ok(scorer) => Ok((idx, scorer)),
        Err(reason) => {
            metrics.shard_unavailable(idx);
            Err(Response::json(503, degraded_shard_body(key, &reason)))
        }
    }
}

fn top_response(req: &ParsedRequest, ctx: &ServeContext, metrics: &Metrics) -> Response {
    let k = match crate::query::top_k(&req.query) {
        Ok(k) => k,
        Err(e) => return e.response(),
    };
    match query_param(&req.query, "region") {
        // Region-tagged: route straight to one shard, zero cross-shard
        // work — the single-snapshot fast path with a binary search in
        // front.
        Some(key) => match resolve_region(ctx, metrics, key) {
            Ok((idx, scorer)) => {
                metrics.shard_request(idx);
                Response::json(200, render_top_k(&scorer, k))
            }
            Err(response) => response,
        },
        // One shard: region-less /top is exactly the legacy endpoint.
        None if ctx.shards().is_single() => {
            metrics.shard_request(0);
            Response::json(200, render_top_k(&ctx.scorer(), k))
        }
        // Scatter-gather global top-K across every region.
        None => match ctx.shards().global_top_k(k) {
            Ok(merged) => {
                metrics.global_topk();
                Response::json(200, render_global_top_k(ctx.shards(), &merged, k))
            }
            Err(degraded) => {
                for key in &degraded {
                    if let Some(idx) = ctx.shards().index_of(key) {
                        metrics.shard_unavailable(idx);
                    }
                }
                let keys: Vec<String> = degraded.iter().map(|k| json_str(k)).collect();
                Response::json(
                    503,
                    format!(
                        "{{\"error\":\"global top-k unavailable: degraded shards\",\"shards\":[{}]}}",
                        keys.join(",")
                    ),
                )
            }
        },
    }
}

fn pipe_response(req: &ParsedRequest, ctx: &ServeContext, metrics: &Metrics) -> Response {
    let id = match crate::query::pipe_id(&req.query) {
        Ok(id) => id,
        Err(e) => return e.response(),
    };
    let (idx, scorer) = match query_param(&req.query, "region") {
        Some(key) => match resolve_region(ctx, metrics, key) {
            Ok(found) => found,
            Err(response) => return response,
        },
        None if ctx.shards().is_single() => (0, ctx.scorer()),
        // Pipe ids are only unique within a region's snapshot; answering
        // from an arbitrary shard would be silently wrong.
        None => {
            let regions: Vec<String> = ctx.shards().keys().map(json_str).collect();
            return Response::json(
                400,
                format!(
                    "{{\"error\":\"pipe ids are per-region; pass ?region=<key>\",\"regions\":[{}]}}",
                    regions.join(",")
                ),
            );
        }
    };
    metrics.shard_request(idx);
    match scorer.risk_of(PipeId(id)) {
        Some(risk) => Response::json(200, render_pipe_risk(&risk)),
        None => Response::json(404, format!("{{\"error\":\"pipe {id} not ranked\"}}")),
    }
}

fn model_response(ctx: &ServeContext) -> Response {
    // One shard: the legacy body, byte-identical to the single-snapshot
    // server (pinned by the end-to-end tests).
    if ctx.shards().is_single() {
        return Response::json(200, render_model(&ctx.scorer()));
    }
    Response::json(200, render_shard_inventory(ctx.shards()))
}

/// One parsed, shard-resolved `/batch` line.
enum BatchOp {
    /// A query answered by one shard (index into the shard set).
    Shard(usize, Query),
    /// A region-less `top K` on a sharded server: the scatter-gather
    /// global top-K.
    GlobalTop(usize),
}

fn batch_response(req: &ParsedRequest, ctx: &ServeContext, metrics: &Metrics) -> Response {
    let shards = ctx.shards();
    let mut ops = Vec::new();
    let mut wants_global = false;
    for (lineno, raw_line) in req.body.lines().enumerate() {
        let mut line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        // Optional routing prefix: `region=<key> ` in front of the query.
        let mut region: Option<&str> = None;
        if let Some(rest) = line.strip_prefix("region=") {
            let Some((key, query)) = rest.split_once(' ') else {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":\"bad query on line {}: {raw_line:?}\"}}",
                        lineno + 1
                    ),
                );
            };
            region = Some(key);
            line = query.trim();
        }
        let parsed = match line.split_once(' ') {
            Some(("top", k)) => k.parse::<usize>().ok().map(Query::TopK),
            Some(("pipe", id)) => id.parse::<u32>().ok().map(|i| Query::Pipe(PipeId(i))),
            _ => None,
        };
        let Some(query) = parsed else {
            return Response::json(
                400,
                format!("{{\"error\":\"bad query on line {}: {raw_line:?}\"}}", lineno + 1),
            );
        };
        // Resolve the shard up front: a batch with an unaddressable line
        // fails whole, before any scoring work.
        let op = match (region, query) {
            (Some(key), query) => {
                let Some(idx) = shards.index_of(key) else {
                    return Response::json(404, unknown_region_body(shards, key));
                };
                BatchOp::Shard(idx, query)
            }
            (None, query) if shards.is_single() => BatchOp::Shard(0, query),
            (None, Query::TopK(k)) => {
                wants_global = true;
                BatchOp::GlobalTop(k)
            }
            (None, Query::Pipe(_)) => {
                let regions: Vec<String> = shards.keys().map(json_str).collect();
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":\"pipe ids are per-region; prefix line {} with region=<key>\",\"regions\":[{}]}}",
                        lineno + 1,
                        regions.join(",")
                    ),
                );
            }
        };
        ops.push(op);
    }

    // One Arc clone per shard for the whole batch: every line answers from
    // the same set of snapshots even if a reload lands mid-batch. A
    // referenced degraded shard fails the batch with the same typed 503 a
    // single request would get; a global line needs the whole fleet.
    let mut views: Vec<Option<Arc<Scorer>>> = vec![None; shards.len()];
    for (idx, shard) in shards.shards().iter().enumerate() {
        let referenced = wants_global
            || ops
                .iter()
                .any(|op| matches!(op, BatchOp::Shard(i, _) if *i == idx));
        if !referenced {
            continue;
        }
        match shard.serving() {
            Ok(scorer) => views[idx] = Some(scorer),
            Err(reason) => {
                metrics.shard_unavailable(idx);
                return Response::json(503, degraded_shard_body(shard.key(), &reason));
            }
        }
    }
    for op in &ops {
        match op {
            BatchOp::Shard(idx, _) => metrics.shard_request(*idx),
            BatchOp::GlobalTop(_) => metrics.global_topk(),
        }
    }

    // Fan out over the pool; every answer is a pure function of its line
    // and the frozen views, so results are in line order at any thread
    // count.
    let rendered = ctx.pool.run(ops.len(), |i| match &ops[i] {
        BatchOp::Shard(idx, query) => {
            let scorer = views[*idx].as_ref().expect("resolved above");
            render_query_result(&scorer.answer(*query))
        }
        BatchOp::GlobalTop(k) => {
            let tables: Vec<RiskSlice<'_>> = views
                .iter()
                .map(|v| v.as_ref().expect("resolved above").top_k(*k))
                .collect();
            let merged = crate::shards::merge_top_k(&tables, *k);
            let keys: Vec<String> = shards.shards().iter().map(|s| json_str(s.key())).collect();
            let mut out = String::with_capacity(16 + merged.len() * 80);
            out.push_str("{\"top\":[");
            for (rank, g) in merged.iter().enumerate() {
                if rank > 0 {
                    out.push(',');
                }
                write_global_risk(&mut out, &keys, g, rank);
            }
            out.push_str("]}");
            out
        }
    });
    Response::json(200, format!("{{\"results\":[{}]}}", rendered.join(",")))
}

/// `POST /aggregate`: parse the declarative pipeline spec, compute one
/// partial aggregate state per shard on the task pool, and merge the
/// partials fold-left in routing-key order — the canonical computation
/// every topology shares, so monolithic, in-process sharded, and
/// federated servers answer byte-identically (`docs/AGGREGATE.md`).
/// `?partial=1` returns the merge-ready partial state instead of the
/// final body: the scatter leg a federation front-end drives.
fn aggregate_response(req: &ParsedRequest, ctx: &ServeContext, metrics: &Metrics) -> Response {
    let spec = match AggregateSpec::parse(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            return Response::json(400, format!("{{\"error\":{}}}", json_str(&e.to_string())));
        }
    };
    let shards = ctx.shards();
    // Aggregation needs every region (a roll-up over a partial fleet would
    // be silently wrong): refuse with the degraded list, like the global
    // top-K. The central 503 hook appends Retry-After.
    let mut views: Vec<Arc<Scorer>> = Vec::with_capacity(shards.len());
    let mut degraded: Vec<&str> = Vec::new();
    for (idx, shard) in shards.shards().iter().enumerate() {
        match shard.serving() {
            Ok(scorer) => views.push(scorer),
            Err(_) => {
                metrics.shard_unavailable(idx);
                degraded.push(shard.key());
            }
        }
    }
    if !degraded.is_empty() {
        let keys: Vec<String> = degraded.iter().map(|k| json_str(k)).collect();
        return Response::json(
            503,
            format!(
                "{{\"error\":\"aggregate unavailable: degraded shards\",\"shards\":[{}]}}",
                keys.join(",")
            ),
        );
    }
    // Length/material/decade queries need the snapshot attribute section;
    // refuse typed (naming the bare shards) instead of aggregating zeros.
    if spec.needs_attributes() {
        let missing: Vec<String> = views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.attributes().is_none())
            .map(|(i, _)| json_str(shards.shards()[i].key()))
            .collect();
        if !missing.is_empty() {
            return Response::json(
                400,
                format!(
                    "{{\"error\":{},\"shards\":[{}]}}",
                    json_str(&aggregate::AggregateError::NoAttributes.to_string()),
                    missing.join(",")
                ),
            );
        }
    }
    for idx in 0..views.len() {
        metrics.shard_request(idx);
    }
    let partials = ctx.pool.run(views.len(), |i| {
        aggregate::shard_partial(&spec, &views[i]).expect("attributes checked above")
    });
    if crate::query::wants_partial(&req.query) {
        let merged = aggregate::merge_to_partial(&spec, &partials);
        return Response::json(200, aggregate::render_partial(&merged));
    }
    let (groups, budget) = aggregate::merge_partials(&spec, &partials);
    Response::json(200, aggregate::render_aggregate(&spec, groups, budget))
}

fn riskmap_response(ctx: &ServeContext) -> Response {
    if !ctx.shards().is_single() {
        return Response::json(
            404,
            "{\"error\":\"risk maps are single-region; serve one snapshot with --data to enable them\"}",
        );
    }
    match &ctx.dataset {
        Some(dataset) => {
            let ranking = ctx.scorer().ranking();
            let svg = pipefail_eval::riskmap::risk_map(
                dataset,
                &ranking,
                TrainTestSplit::paper_protocol().test,
                800.0,
                800.0,
            );
            Response::text(200, "image/svg+xml", svg)
        }
        None => Response::json(
            404,
            "{\"error\":\"no dataset loaded; start the server with --data to enable risk maps\"}",
        ),
    }
}

/// JSON for one [`PipeRisk`]. Scores use Rust's shortest-round-trip `f64`
/// formatting, so the serialized score parses back to the exact bits that
/// were served — the HTTP answer carries the same information as the
/// in-process one.
pub fn render_pipe_risk(risk: &PipeRisk) -> String {
    format!(
        "{{\"pipe\":{},\"score\":{},\"rank\":{}}}",
        risk.pipe.0, risk.score, risk.rank
    )
}

/// JSON for a top-K answer; the exact body served by `GET /top`.
///
/// Streams into one preallocated buffer instead of allocating a `String`
/// per entry — at `k=100` this is the hot path of the `serve/sharded/*`
/// benches, and per-entry allocation dominated the merge itself.
pub fn render_top_k(scorer: &Scorer, k: usize) -> String {
    use std::fmt::Write as _;
    let top = scorer.top_k(k);
    let mut out = String::with_capacity(64 + top.len() * 48);
    let _ = write!(
        out,
        "{{\"model\":{},\"region\":{},\"k\":{},\"results\":[",
        json_str(scorer.model()),
        json_str(scorer.region()),
        top.len(),
    );
    for (i, r) in top.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"pipe\":{},\"score\":{},\"rank\":{}}}", r.pipe.0, r.score, r.rank);
    }
    out.push_str("]}");
    out
}

/// JSON for the snapshot identity and posterior-summary inventory; the
/// exact body served by `GET /model`.
pub fn render_model(scorer: &Scorer) -> String {
    let sections: Vec<String> = scorer
        .sections_info()
        .iter()
        .map(|s| {
            let fields: Vec<String> = s
                .fields
                .iter()
                .map(|(name, len)| format!("{{\"name\":{},\"len\":{len}}}", json_str(name)))
                .collect();
            format!(
                "{{\"name\":{},\"fields\":[{}]}}",
                json_str(&s.name),
                fields.join(",")
            )
        })
        .collect();
    format!(
        "{{\"model\":{},\"region\":{},\"seed\":{},\"pipes\":{},\"format\":\"{}\",\"loader\":\"{}\",\"sections\":[{}]}}",
        json_str(scorer.model()),
        json_str(scorer.region()),
        scorer.seed(),
        scorer.len(),
        scorer.format(),
        scorer.loader(),
        sections.join(",")
    )
}

/// JSON for one merged [`GlobalRisk`] entry: the pipe's risk, its
/// *global* rank (position in the merged ranking), the region key it came
/// from, and its rank within that shard.
/// JSON for the scatter-gathered global top-K; the exact body served by a
/// region-less `GET /top` on a sharded server. Entries carry the global
/// rank, the owning region, and the entry's rank *within* that region.
///
/// Streamed into one buffer with the shard keys escaped once up front —
/// per-entry allocation here was the bulk of the scatter-gather overhead
/// over monolithic serving (see `serve/sharded/*` in `BENCH_perf.json`).
pub fn render_global_top_k(shards: &ShardSet, merged: &[GlobalRisk], k: usize) -> String {
    let keys: Vec<String> = shards.shards().iter().map(|s| json_str(s.key())).collect();
    render_global_top_k_keys(&keys, merged, k)
}

/// [`render_global_top_k`] over pre-escaped shard keys instead of a local
/// [`ShardSet`] — the federation front-end renders the same body from
/// remote backends, so the two paths share one serializer (byte-identity
/// by construction).
pub(crate) fn render_global_top_k_keys(
    keys_escaped: &[String],
    merged: &[GlobalRisk],
    k: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(48 + merged.len() * 80);
    let _ = write!(
        out,
        "{{\"k\":{},\"shards\":{},\"results\":[",
        k,
        keys_escaped.len()
    );
    for (rank, g) in merged.iter().enumerate() {
        if rank > 0 {
            out.push(',');
        }
        write_global_risk(&mut out, keys_escaped, g, rank);
    }
    out.push_str("]}");
    out
}

/// Append one merged entry to `out`; `keys` holds the pre-escaped shard
/// keys so per-entry rendering never re-escapes.
fn write_global_risk(out: &mut String, keys: &[String], g: &GlobalRisk, global_rank: usize) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"pipe\":{},\"score\":{},\"rank\":{},\"region\":{},\"shard_rank\":{}}}",
        g.risk.pipe.0, g.risk.score, global_rank, keys[g.shard], g.risk.rank
    );
}

/// JSON for the whole shard inventory; the exact body served by
/// `GET /model` on a sharded server. Degraded shards are listed with
/// their fault (identity fields come from the last good scorer) so the
/// inventory stays complete while a region is down.
pub fn render_shard_inventory(shards: &ShardSet) -> String {
    let entries: Vec<String> = shards
        .shards()
        .iter()
        .map(|shard| {
            let scorer = shard.last_good();
            let status = match shard.fault() {
                None => "\"serving\"".to_string(),
                Some(reason) => format!("\"degraded\",\"fault\":{}", json_str(&reason)),
            };
            format!(
                "{{\"shard\":{},\"model\":{},\"region\":{},\"seed\":{},\"pipes\":{},\"format\":\"{}\",\"loader\":\"{}\",\"status\":{}}}",
                json_str(shard.key()),
                json_str(scorer.model()),
                json_str(scorer.region()),
                scorer.seed(),
                scorer.len(),
                scorer.format(),
                scorer.loader(),
                status
            )
        })
        .collect();
    format!(
        "{{\"shards\":{},\"models\":[{}]}}",
        shards.len(),
        entries.join(",")
    )
}

fn render_query_result(result: &QueryResult) -> String {
    match result {
        QueryResult::TopK(items) => {
            let rendered: Vec<String> = items.iter().map(render_pipe_risk).collect();
            format!("{{\"top\":[{}]}}", rendered.join(","))
        }
        QueryResult::Pipe(Some(risk)) => format!("{{\"pipe_risk\":{}}}", render_pipe_risk(risk)),
        QueryResult::Pipe(None) => "{\"pipe_risk\":null}".to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefail_core::model::{RiskRanking, RiskScore};
    use pipefail_core::snapshot::Snapshot;

    fn test_scorer() -> Scorer {
        let ranking = RiskRanking::new(
            (0..20u32)
                .map(|i| RiskScore {
                    pipe: PipeId(i),
                    score: f64::from(20 - i) / 20.0,
                })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", "Region \"A\"", 7, &ranking))
    }

    #[test]
    fn query_param_parses() {
        assert_eq!(query_param("k=5", "k"), Some("5"));
        assert_eq!(query_param("a=1&k=9&b=2", "k"), Some("9"));
        assert_eq!(query_param("", "k"), None);
        assert_eq!(query_param("kk=5", "k"), None);
    }

    #[test]
    fn render_top_k_is_valid_shape_and_escapes() {
        let s = test_scorer();
        let body = render_top_k(&s, 2);
        assert!(body.starts_with("{\"model\":\"DPMHBP\""));
        assert!(body.contains("\\\"A\\\""), "region quotes escaped: {body}");
        assert!(body.contains("\"k\":2"));
        assert!(body.contains("\"pipe\":0"));
        // Scores round-trip through the shortest f64 formatting.
        assert!(body.contains(&format!("\"score\":{}", 20.0 / 20.0)));
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn render_model_lists_sections() {
        use pipefail_core::snapshot::SummarySection;
        let ranking = RiskRanking::new(vec![RiskScore { pipe: PipeId(1), score: 1.0 }]);
        let mut snap = Snapshot::new("Cox", "R", 3, &ranking);
        snap.push_section(SummarySection::new("coefficients").with_field("beta", vec![0.1, 0.2]));
        let body = render_model(&Scorer::new(snap));
        assert!(body.contains("\"model\":\"Cox\""));
        assert!(body.contains("\"pipes\":1"));
        assert!(body.contains("\"name\":\"coefficients\""));
        assert!(body.contains("\"len\":2"));
    }

    #[test]
    fn swap_scorer_changes_answers_and_keeps_old_arcs_valid() {
        let ctx = ServeContext::new(test_scorer());
        let before = ctx.scorer();
        let replacement = Scorer::new(Snapshot::new(
            "HBP",
            "Region B",
            9,
            &RiskRanking::new(vec![RiskScore { pipe: PipeId(99), score: 0.5 }]),
        ));
        let after = ctx.swap_scorer(replacement);
        // The old handle still answers from the old table (in-flight
        // requests are undisturbed)…
        assert_eq!(before.model(), "DPMHBP");
        assert_eq!(before.len(), 20);
        // …while new requests see the new scorer.
        assert_eq!(after.model(), "HBP");
        assert_eq!(ctx.scorer().model(), "HBP");
        assert_eq!(ctx.scorer().len(), 1);
    }

    fn region_scorer(region: &str, scores: &[(u32, f64)]) -> Scorer {
        let ranking = RiskRanking::new(
            scores
                .iter()
                .map(|&(pipe, score)| RiskScore { pipe: PipeId(pipe), score })
                .collect(),
        );
        Scorer::new(Snapshot::new("DPMHBP", region, 7, &ranking))
    }

    fn sharded_ctx() -> ServeContext {
        ServeContext::sharded(
            ShardSet::from_scorers(vec![
                region_scorer("Region A", &[(1, 0.9), (2, 0.4)]),
                region_scorer("Region B", &[(1, 0.7), (9, 0.5)]),
            ])
            .expect("distinct regions"),
        )
    }

    fn get(path_and_query: &str) -> ParsedRequest {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path_and_query.to_string(), String::new()),
        };
        ParsedRequest {
            method: "GET".into(),
            path,
            query,
            http11: true,
            connection: crate::parser::ConnectionDirective::Unspecified,
            if_none_match: None,
            body: String::new(),
        }
    }

    #[test]
    fn unknown_region_is_a_typed_404_listing_known_regions() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let (route, resp) = route_request(&get("/top?region=region_z&k=3"), &ctx, &metrics, 1);
        assert_eq!(route, Route::Top);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("unknown region \\\"region_z\\\""), "{}", resp.body);
        assert!(resp.body.contains("\"regions\":[\"region_a\",\"region_b\"]"), "{}", resp.body);
        // Same typed body on /pipe.
        let (_, resp) = route_request(&get("/pipe?region=nope&id=1"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("\"regions\":["));
    }

    #[test]
    fn region_tagged_queries_route_to_one_shard() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let (_, resp) = route_request(&get("/top?region=region_b&k=1"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"region\":\"Region B\""), "{}", resp.body);
        assert!(resp.body.contains("\"pipe\":1"));
        // Pipe 9 exists only in Region B.
        let (_, resp) = route_request(&get("/pipe?region=region_b&id=9"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 200);
        let (_, resp) = route_request(&get("/pipe?region=region_a&id=9"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 404);
        assert_eq!(metrics.shard_requests(1), 2);
        assert_eq!(metrics.shard_requests(0), 1);
    }

    #[test]
    fn regionless_top_scatter_gathers_and_regionless_pipe_is_rejected() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let (_, resp) = route_request(&get("/top?k=3"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 200);
        // Global order: 0.9 (A), 0.7 (B), 0.5 (B) — ranks are global,
        // shard_rank is the within-region rank.
        assert!(resp.body.starts_with("{\"k\":3,\"shards\":2,"), "{}", resp.body);
        assert!(resp.body.contains(
            "{\"pipe\":1,\"score\":0.9,\"rank\":0,\"region\":\"region_a\",\"shard_rank\":0}"
        ), "{}", resp.body);
        assert!(resp.body.contains(
            "{\"pipe\":9,\"score\":0.5,\"rank\":2,\"region\":\"region_b\",\"shard_rank\":1}"
        ), "{}", resp.body);
        assert_eq!(metrics.global_topk_total(), 1);
        // Region-less /pipe cannot route: pipe ids are per-region.
        let (_, resp) = route_request(&get("/pipe?id=1"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("per-region"), "{}", resp.body);
    }

    #[test]
    fn degraded_shard_answers_503_and_siblings_keep_serving() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        ctx.shards().get("region_a").unwrap().degrade("checksum mismatch".into());
        let (_, resp) = route_request(&get("/top?region=region_a"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("degraded: checksum mismatch"), "{}", resp.body);
        assert!(resp.body.contains("\"shard\":\"region_a\""), "{}", resp.body);
        // The sibling still answers…
        let (_, resp) = route_request(&get("/top?region=region_b"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 200);
        // …but the global merge refuses a partial fleet.
        let (_, resp) = route_request(&get("/top"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("\"shards\":[\"region_a\"]"), "{}", resp.body);
        assert_eq!(metrics.shard_unavailable_total(0), 2);
    }

    #[test]
    fn healthz_reports_readiness_and_degrade_503s_carry_retry_after() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let (route, resp) = route_request(&get("/healthz"), &ctx, &metrics, 5);
        assert_eq!(route, Route::Healthz);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"status\":\"ok\"}");
        assert!(resp.header("Retry-After").is_none());
        ctx.shards().get("region_a").unwrap().degrade("bad bytes".into());
        // Readiness flips to 503 naming the degraded shard…
        let (_, resp) = route_request(&get("/healthz"), &ctx, &metrics, 5);
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("\"shards\":[\"region_a\"]"), "{}", resp.body);
        assert_eq!(resp.header("Retry-After"), Some("5"));
        // …and every other degrade path advertises the same Retry-After:
        // region-routed, global merge, and batch.
        let (_, resp) = route_request(&get("/top?region=region_a"), &ctx, &metrics, 5);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("Retry-After"), Some("5"));
        let (_, resp) = route_request(&get("/top"), &ctx, &metrics, 5);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("Retry-After"), Some("5"));
        let mut req = get("/batch");
        req.method = "POST".into();
        req.body = "region=region_a top 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 5);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("Retry-After"), Some("5"));
        // Healthy responses never carry it.
        let (_, resp) = route_request(&get("/top?region=region_b"), &ctx, &metrics, 5);
        assert_eq!(resp.status, 200);
        assert!(resp.header("Retry-After").is_none());
    }

    #[test]
    fn retry_after_derives_from_poll_interval() {
        assert_eq!(retry_after_secs(0.0), 1);
        assert_eq!(retry_after_secs(0.25), 1);
        assert_eq!(retry_after_secs(2.0), 2);
        assert_eq!(retry_after_secs(2.5), 3);
    }

    #[test]
    fn sharded_model_inventories_every_shard_and_riskmap_is_refused() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let (_, resp) = route_request(&get("/model"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 200);
        assert!(resp.body.starts_with("{\"shards\":2,"), "{}", resp.body);
        assert!(resp.body.contains("\"shard\":\"region_a\""));
        assert!(resp.body.contains("\"status\":\"serving\""));
        ctx.shards().get("region_b").unwrap().degrade("boom".into());
        let (_, resp) = route_request(&get("/model"), &ctx, &metrics, 1);
        assert!(resp.body.contains("\"status\":\"degraded\",\"fault\":\"boom\""), "{}", resp.body);
        let (_, resp) = route_request(&get("/riskmap.svg"), &ctx, &metrics, 1);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("single-region"), "{}", resp.body);
    }

    #[test]
    fn batch_routes_region_prefixed_lines_and_global_top() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let mut req = get("/batch");
        req.method = "POST".into();
        req.body = "region=region_b pipe 9\ntop 2\nregion=region_a top 1\n".into();
        let (route, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(route, Route::Batch);
        assert_eq!(resp.status, 200, "{}", resp.body);
        // Line 1: shard-routed pipe lookup; line 2: global top with region
        // tags; line 3: shard-routed top.
        assert!(resp.body.contains("\"pipe_risk\":{\"pipe\":9"), "{}", resp.body);
        assert!(resp.body.contains("\"region\":\"region_a\""), "{}", resp.body);
        assert_eq!(metrics.shard_requests(1), 1);
        assert_eq!(metrics.shard_requests(0), 1);
        assert_eq!(metrics.global_topk_total(), 1);
        // Unknown region in a batch line fails the whole batch, typed.
        req.body = "region=region_z top 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("\"regions\":["));
        // Region-less pipe line on a sharded server is a typed 400.
        req.body = "pipe 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("region=<key>"), "{}", resp.body);
        // A degraded shard fails batches that reference it, including via
        // a global line.
        ctx.shards().get("region_a").unwrap().degrade("bad".into());
        req.body = "region=region_a top 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(resp.status, 503);
        req.body = "top 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(resp.status, 503);
        // …but a batch touching only healthy shards still works.
        req.body = "region=region_b top 1\n".into();
        let (_, resp) = route_request(&req, &ctx, &metrics, 1);
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    fn post(path: &str, body: &str) -> ParsedRequest {
        let mut req = get(path);
        req.method = "POST".into();
        req.body = body.into();
        req
    }

    fn attr_scorer(region: &str, scores: &[(u32, f64)]) -> Scorer {
        use pipefail_core::snapshot::attributes_section;
        let ranking = RiskRanking::new(
            scores
                .iter()
                .map(|&(pipe, score)| RiskScore { pipe: PipeId(pipe), score })
                .collect(),
        );
        let mut snap = Snapshot::new("DPMHBP", region, 7, &ranking);
        let n = scores.len();
        snap.push_section(attributes_section(
            (0..n).map(|i| 100.0 + i as f64).collect(),
            (0..n).map(|i| (i % 9) as f64).collect(),
            (0..n).map(|i| (1940 + (i % 4) * 10) as f64).collect(),
        ));
        Scorer::new(snap)
    }

    #[test]
    fn aggregate_routes_with_405_and_typed_400() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        // Wrong method.
        let (route, resp) = route_request(&get("/aggregate"), &ctx, &metrics, 1);
        assert_eq!(route, Route::Other);
        assert_eq!(resp.status, 405);
        // Malformed spec: typed 400 naming the problem.
        let (route, resp) =
            route_request(&post("/aggregate", "{\"group_by\":[]}"), &ctx, &metrics, 1);
        assert_eq!(route, Route::Aggregate);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("group_by"), "{}", resp.body);
        // Attribute query against attribute-less snapshots: typed 400
        // naming the bare shards, not zeros.
        let spec = r#"{"group_by":["material"],"aggregates":[{"op":"count"}]}"#;
        let (_, resp) = route_request(&post("/aggregate", spec), &ctx, &metrics, 1);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("pipe_attributes"), "{}", resp.body);
        assert!(resp.body.contains("\"shards\":[\"region_a\",\"region_b\"]"), "{}", resp.body);
    }

    #[test]
    fn aggregate_groups_across_shards_and_degrade_503s_with_retry_after() {
        let ctx = sharded_ctx();
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let spec = r#"{"group_by":["region"],"aggregates":[{"op":"count"},{"op":"max","field":"risk"}]}"#;
        let (route, resp) = route_request(&post("/aggregate", spec), &ctx, &metrics, 2);
        assert_eq!(route, Route::Aggregate);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            resp.body,
            "{\"groups\":[\
             {\"key\":{\"region\":\"region_a\"},\"count\":2,\"max_risk\":0.9},\
             {\"key\":{\"region\":\"region_b\"},\"count\":2,\"max_risk\":0.7}]}"
        );
        assert_eq!(metrics.shard_requests(0), 1);
        assert_eq!(metrics.shard_requests(1), 1);
        // A degraded shard refuses the whole aggregate, with Retry-After.
        ctx.shards().get("region_b").unwrap().degrade("bad bytes".into());
        let (_, resp) = route_request(&post("/aggregate", spec), &ctx, &metrics, 2);
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("\"shards\":[\"region_b\"]"), "{}", resp.body);
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(metrics.shard_unavailable_total(1), 1);
    }

    #[test]
    fn aggregate_partial_mode_round_trips_to_the_same_final_body() {
        use crate::aggregate;
        let ctx = ServeContext::sharded(
            ShardSet::from_scorers(vec![
                attr_scorer("Region A", &[(1, 0.9), (2, 0.4), (3, 0.3)]),
                attr_scorer("Region B", &[(1, 0.7), (9, 0.5)]),
            ])
            .expect("distinct regions"),
        );
        let metrics = Metrics::with_shards(vec!["region_a".into(), "region_b".into()]);
        let spec_body = r#"{"group_by":["material","decade"],"aggregates":[{"op":"count"},{"op":"sum","field":"length_m"},{"op":"avg","field":"risk"}]}"#;
        let (_, full) = route_request(&post("/aggregate", spec_body), &ctx, &metrics, 1);
        assert_eq!(full.status, 200, "{}", full.body);
        // The ?partial=1 answer re-parses and re-merges to the same body —
        // what a federation front end does with backend replies.
        let (_, partial) = route_request(&post("/aggregate?partial=1", spec_body), &ctx, &metrics, 1);
        assert_eq!(partial.status, 200, "{}", partial.body);
        let spec = AggregateSpec::parse(spec_body).unwrap();
        let wire = aggregate::parse_partial(&spec, &partial.body).expect("valid partial");
        let (groups, budget) = aggregate::merge_partials(&spec, &[wire]);
        assert_eq!(full.body, aggregate::render_aggregate(&spec, groups, budget));
        // Budget mode over the wire too.
        let budget_body = r#"{"group_by":["region"],"aggregates":[{"op":"count"},{"op":"sum","field":"length_m"}],"budget":{"length_m":250}}"#;
        let (_, full) = route_request(&post("/aggregate", budget_body), &ctx, &metrics, 1);
        assert_eq!(full.status, 200, "{}", full.body);
        assert!(full.body.contains("\"budget\":{\"length_m\":250,"), "{}", full.body);
        let (_, partial) =
            route_request(&post("/aggregate?partial=1", budget_body), &ctx, &metrics, 1);
        let spec = AggregateSpec::parse(budget_body).unwrap();
        let wire = aggregate::parse_partial(&spec, &partial.body).expect("valid partial");
        let (groups, b) = aggregate::merge_partials(&spec, &[wire]);
        assert_eq!(full.body, aggregate::render_aggregate(&spec, groups, b));
    }

    #[test]
    fn config_rejects_reload_without_path() {
        let ctx = Arc::new(ServeContext::new(test_scorer()));
        let bad = ServerConfig { reload_poll_secs: 0.5, ..ServerConfig::default() };
        assert!(matches!(serve(Arc::clone(&ctx), &bad), Err(ServeError::BadConfig(_))));
        let bad_idle = ServerConfig { idle_timeout_secs: 0.0, ..ServerConfig::default() };
        assert!(matches!(serve(ctx, &bad_idle), Err(ServeError::BadConfig(_))));
    }
}
